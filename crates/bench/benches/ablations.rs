//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the same streaming session with one mechanism
//! changed and reports (a) the wall time of the simulation via Criterion
//! and (b) the resulting video-quality metrics, printed once before the
//! timing loop, so the bench output doubles as the ablation's results
//! table:
//!
//! * SureStream ladder vs. single-rate encoding (design decision 4);
//! * FEC parity on vs. off (the paper's error-correction packets);
//! * prebuffer depth sweep (design decision 5, Figure 1 / Figure 20);
//! * TFRC rate control vs. an unresponsive constant-rate sender
//!   (design decision 3, the Figure 18 mechanism).

use criterion::{criterion_group, criterion_main, Criterion};

use rv_bench::session_world;
use rv_media::{Clip, ContentKind, SureStream};
use rv_net::{CongestionParams, LinkParams};
use rv_server::TfrcConfig;
use rv_sim::{SimDuration, SimTime};
use rv_tracer::SessionMetrics;

fn congested_path() -> LinkParams {
    LinkParams::lan()
        .rate(350_000.0)
        .delay(SimDuration::from_millis(60))
        .queue(48 * 1024)
        .loss(0.005)
        .cross_traffic(CongestionParams::moderate(), 0.04)
}

fn report(tag: &str, m: &SessionMetrics) {
    println!(
        "[ablation] {tag}: fps={:.1} jitter={}ms bw={:.0}kbps lost={} rebuffers={}",
        m.frame_rate,
        m.jitter_ms.map_or("-".into(), |j| format!("{j:.0}")),
        m.bandwidth_kbps,
        m.packets_lost,
        m.rebuffer_events,
    );
}

fn bench_surestream_vs_single(c: &mut Criterion) {
    let adaptive = Clip::new("a.rm", SimDuration::from_secs(300), ContentKind::News);
    let single = Clip::with_ladder(
        "s.rm",
        SimDuration::from_secs(300),
        ContentKind::News,
        SureStream::single(300_000),
    );
    let run = |clip: &Clip| {
        session_world(congested_path(), clip.clone(), 0xAB1, |cl, _| {
            cl.max_bandwidth_bps = 384_000;
        })
        .run(SimTime::from_secs(200))
    };
    report("surestream", &run(&adaptive));
    report("single-rate", &run(&single));

    let mut g = c.benchmark_group("ablation_ladder");
    g.sample_size(10);
    g.bench_function("surestream", |b| {
        b.iter(|| std::hint::black_box(run(&adaptive)))
    });
    g.bench_function("single_rate", |b| {
        b.iter(|| std::hint::black_box(run(&single)))
    });
    g.finish();
}

fn bench_fec(c: &mut Criterion) {
    let lossy = LinkParams::lan()
        .rate(400_000.0)
        .delay(SimDuration::from_millis(40))
        .loss(0.02)
        .queue(64 * 1024);
    let clip = Clip::new("f.rm", SimDuration::from_secs(300), ContentKind::News);
    let run = |group: usize| {
        session_world(lossy, clip.clone(), 0xAB2, |_, s| {
            s.fec_group = group;
        })
        .run(SimTime::from_secs(200))
    };
    report("fec_on(group=8)", &run(8));
    report("fec_off", &run(0));

    let mut g = c.benchmark_group("ablation_fec");
    g.sample_size(10);
    g.bench_function("on", |b| b.iter(|| std::hint::black_box(run(8))));
    g.bench_function("off", |b| b.iter(|| std::hint::black_box(run(0))));
    g.finish();
}

fn bench_prebuffer_sweep(c: &mut Criterion) {
    let path = LinkParams::lan()
        .rate(500_000.0)
        .delay(SimDuration::from_millis(60))
        .queue(256 * 1024)
        .cross_traffic(CongestionParams::heavy(), 0.0);
    let clip = Clip::new("p.rm", SimDuration::from_secs(300), ContentKind::News);
    let run = |prebuffer_s: u64| {
        session_world(path, clip.clone(), 0xAB3, |cl, s| {
            cl.playout.prebuffer = SimDuration::from_secs(prebuffer_s);
            s.buffer_lead = SimDuration::from_secs(prebuffer_s + 5);
            cl.max_bandwidth_bps = 300_000;
        })
        .run(SimTime::from_secs(200))
    };
    let mut g = c.benchmark_group("ablation_prebuffer");
    g.sample_size(10);
    for secs in [1u64, 4, 8, 16] {
        report(&format!("prebuffer_{secs}s"), &run(secs));
        g.bench_function(format!("{secs}s"), |b| {
            b.iter(|| std::hint::black_box(run(secs)))
        });
    }
    g.finish();
}

fn bench_rate_control(c: &mut Criterion) {
    let clip = Clip::new("r.rm", SimDuration::from_secs(300), ContentKind::News);
    // Responsive: defaults. Unresponsive: the controller is pinned to
    // 350 kbps regardless of feedback — what the paper's Section I worries
    // streaming video might do to the Internet.
    let responsive = |()| {
        session_world(congested_path(), clip.clone(), 0xAB4, |cl, _| {
            cl.max_bandwidth_bps = 384_000;
        })
        .run(SimTime::from_secs(200))
    };
    let unresponsive = |()| {
        session_world(congested_path(), clip.clone(), 0xAB4, |cl, s| {
            cl.max_bandwidth_bps = 384_000;
            s.tfrc = TfrcConfig {
                min_rate_bps: 350_000.0,
                max_rate_bps: 350_000.0,
                ..TfrcConfig::default()
            };
        })
        .run(SimTime::from_secs(200))
    };
    report("tfrc_responsive", &responsive(()));
    report("unresponsive_350k", &unresponsive(()));

    let mut g = c.benchmark_group("ablation_ratecontrol");
    g.sample_size(10);
    g.bench_function("tfrc", |b| b.iter(|| std::hint::black_box(responsive(()))));
    g.bench_function("unresponsive", |b| {
        b.iter(|| std::hint::black_box(unresponsive(())))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_surestream_vs_single,
    bench_fec,
    bench_prebuffer_sweep,
    bench_rate_control
);
criterion_main!(benches);
