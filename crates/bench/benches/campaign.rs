//! Executor benchmarks for the plan/execute split: the serial executor
//! against the threaded executor on the same plan. The acceptance target
//! is ≥ 2× wall-clock speedup with 4 workers on a 4-core runner at scale
//! 0.2; each bench also prints the sessions/sec summary line so the
//! numbers are visible in plain bench output.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use rv_study::{
    plan_campaign, run_campaign, CampaignExecutor, SerialExecutor, StudyParams, ThreadedExecutor,
};

const SCALE: f64 = 0.2;

fn params(jobs: usize) -> StudyParams {
    StudyParams {
        scale: SCALE,
        jobs,
        ..StudyParams::default()
    }
}

/// Serial vs. threaded execution of one shared plan.
fn bench_campaign_parallel(c: &mut Criterion) {
    let plan = plan_campaign(params(1));
    let sessions = plan.total_jobs() as u64;

    let mut g = c.benchmark_group("campaign_parallel");
    g.sample_size(10);
    g.throughput(Throughput::Elements(sessions));
    g.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(SerialExecutor.execute(&plan)))
    });
    for workers in [2, 4, 8] {
        g.bench_function(format!("threaded_{workers}"), |b| {
            b.iter(|| std::hint::black_box(ThreadedExecutor::new(workers).execute(&plan)))
        });
    }
    g.finish();

    // One end-to-end run per executor, printing the summary line the
    // binaries emit — this is where sessions/sec shows up in bench logs.
    // Skipped when cargo runs this target in test mode.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    for jobs in [1, 4] {
        let data = run_campaign(params(jobs)).expect("campaign runs");
        println!("campaign_parallel summary (jobs={jobs}): {}", data.summary);
    }
}

/// Plan-phase cost alone: must stay negligible next to execution.
fn bench_plan_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_plan");
    g.bench_function("plan_full_scale", |b| {
        b.iter(|| std::hint::black_box(plan_campaign(StudyParams::default())))
    });
    g.finish();
}

criterion_group!(benches, bench_campaign_parallel, bench_plan_phase);
criterion_main!(benches);
