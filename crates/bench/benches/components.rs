//! Component micro-benchmarks: the building blocks every session exercises
//! thousands of times — protocol codecs, packetization, frame-schedule
//! generation, the statistics kernel, TCP bulk transfer, and packet
//! forwarding through the simulated network.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use rv_media::{packetize_frame, Clip, ContentKind, Frame, FrameSchedule, StreamDepacketizer};
use rv_net::{Addr, HostId, LinkParams, NetBuilder, Packet};
use rv_rtsp::{Decoder, Message, Method};
use rv_sim::{EventQueue, SimDuration, SimRng, SimTime, TimerWheel};
use rv_stats::Cdf;
use rv_transport::{Segment, Stack, TcpConfig};

fn bench_rtsp_codec(c: &mut Criterion) {
    let msg = Message::request(Method::Setup, "rtsp://server/clip.rm")
        .with_header("CSeq", "2")
        .with_header("Transport", "x-real-rdt/udp;client_port=5002")
        .with_header("Bandwidth", "384000");
    let wire = msg.encode();
    let mut g = c.benchmark_group("rtsp");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode", |b| b.iter(|| std::hint::black_box(msg.encode())));
    g.bench_function("decode", |b| {
        b.iter(|| {
            let mut dec = Decoder::new();
            dec.feed(&wire);
            std::hint::black_box(dec.next_message().unwrap().unwrap())
        })
    });
    g.finish();
}

fn bench_media_pipeline(c: &mut Criterion) {
    let frame = Frame {
        index: 42,
        pts: SimDuration::from_millis(2_800),
        size: 4_200,
        key: false,
    };
    let pkts = packetize_frame(&frame, 3, 7);
    let wire: Vec<u8> = pkts.iter().flat_map(|p| p.encode()).collect();

    let mut g = c.benchmark_group("media");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("packetize_frame", |b| {
        b.iter(|| std::hint::black_box(packetize_frame(&frame, 3, 7)))
    });
    g.bench_function("depacketize_stream", |b| {
        b.iter(|| {
            let mut d = StreamDepacketizer::new();
            d.feed(&wire);
            let mut n = 0;
            while d.next_packet().is_some() {
                n += 1;
            }
            std::hint::black_box(n)
        })
    });
    g.finish();

    c.bench_function("frame_schedule_60s", |b| {
        let clip = Clip::new("x.rm", SimDuration::from_secs(60), ContentKind::Sports);
        let enc = &clip.ladder.rungs()[4];
        b.iter(|| {
            std::hint::black_box(FrameSchedule::generate(
                enc,
                ContentKind::Sports,
                SimDuration::from_secs(60),
                99,
            ))
        })
    });

    c.bench_function("clip_describe_roundtrip", |b| {
        let clip = Clip::new("x.rm", SimDuration::from_secs(300), ContentKind::News);
        b.iter(|| {
            let body = clip.describe();
            std::hint::black_box(Clip::parse_description("x.rm", &body).unwrap())
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(1);
    let samples: Vec<f64> = (0..10_000).map(|_| rng.range(0.0..30.0)).collect();
    c.bench_function("cdf_build_10k", |b| {
        b.iter(|| std::hint::black_box(Cdf::from_samples(&samples).unwrap()))
    });
    let cdf = Cdf::from_samples(&samples).unwrap();
    c.bench_function("cdf_series_on_grid", |b| {
        b.iter(|| std::hint::black_box(cdf.series_on_grid(0.0, 30.0, 56)))
    });
}

/// Bulk TCP transfer between two stacks over a 10 Mbps link: measures the
/// whole transport + network stack in motion.
fn bench_tcp_bulk(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_bulk_256KiB");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(256 * 1024));
    g.bench_function("clean_10mbps", |b| {
        b.iter(|| {
            let mut bld = NetBuilder::new();
            let cn = bld.host();
            let sn = bld.host();
            bld.duplex(
                cn,
                sn,
                LinkParams::lan()
                    .rate(10_000_000.0)
                    .delay(SimDuration::from_millis(10)),
            );
            let mut rng = SimRng::seed_from_u64(5);
            let mut net = bld.build_with_payload::<Segment>(&mut rng);
            let mut cs = Stack::new(HostId(0));
            let mut ss = Stack::new(HostId(1));
            let ch = cs.tcp_socket(1000, TcpConfig::default());
            let sh = ss.tcp_socket(80, TcpConfig::default());
            ss.tcp(sh).listen();
            cs.tcp(ch).connect(Addr::new(HostId(1), 80), SimTime::ZERO);
            let payload = vec![7u8; 256 * 1024];
            let mut sent = 0;
            let mut received = 0usize;
            let mut now = SimTime::ZERO;
            while received < payload.len() && now < SimTime::from_secs(30) {
                sent += cs.tcp(ch).send(&payload[sent..]);
                net.poll(now);
                cs.poll(now, &mut net);
                ss.poll(now, &mut net);
                received += ss.tcp(sh).recv(usize::MAX).len();
                now = rv_sim::earliest([net.next_wake(), cs.next_wake(), ss.next_wake()])
                    .unwrap_or(now + SimDuration::from_millis(1))
                    .max(now + SimDuration::from_micros(100));
            }
            assert_eq!(received, payload.len());
            std::hint::black_box(received)
        })
    });
    g.finish();
}

/// Raw packet forwarding through a three-hop route.
fn bench_network_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("forward_1k_packets_3hops", |b| {
        b.iter(|| {
            let mut bld = NetBuilder::new();
            let a = bld.host();
            let z = bld.host();
            let r1 = bld.router();
            let r2 = bld.router();
            let fast = LinkParams::lan()
                .rate(1e9)
                .delay(SimDuration::from_millis(1));
            bld.duplex(a, r1, fast);
            bld.duplex(r1, r2, fast);
            bld.duplex(r2, z, fast);
            let mut rng = SimRng::seed_from_u64(3);
            let mut net = bld.build_with_payload::<u32>(&mut rng);
            for i in 0..1_000u32 {
                net.send(
                    SimTime::from_micros(u64::from(i)),
                    Packet::new(Addr::new(HostId(0), 1), Addr::new(HostId(1), 1), 1000, i),
                );
                net.poll(SimTime::from_micros(u64::from(i)));
            }
            net.poll(SimTime::from_secs(10));
            let mut delivered = 0;
            while net.recv(HostId(1)).is_some() {
                delivered += 1;
            }
            std::hint::black_box(delivered)
        })
    });
    g.finish();
}

/// The network hot path in isolation: the wake-scheduled poll loop, link
/// drains, and route-interned forwarding, with no transport stack on top.
///
/// Two shapes, matching how sessions actually load the network:
/// `bottleneck_bidir` saturates one duplex link with traffic both ways
/// (data down, reports and ACKs up — every poll has queue work);
/// `route_3hop_paced` trickles paced packets down a three-hop route so
/// most polls find only one link due, which is exactly the case the
/// due-time index over links exists to make cheap.
fn bench_net_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_hotpath");
    g.throughput(Throughput::Elements(2_000));
    g.bench_function("bottleneck_bidir", |b| {
        b.iter(|| {
            let mut bld = NetBuilder::new();
            let a = bld.host();
            let z = bld.host();
            // A 2 Mbps bottleneck: the queue stays busy the whole run.
            bld.duplex(
                a,
                z,
                LinkParams::lan()
                    .rate(2e6)
                    .delay(SimDuration::from_millis(5))
                    .queue(256 * 1024),
            );
            let mut rng = SimRng::seed_from_u64(11);
            let mut net = bld.build_with_payload::<u32>(&mut rng);
            let (down, up) = (
                (Addr::new(HostId(1), 1), Addr::new(HostId(0), 1)),
                (Addr::new(HostId(0), 1), Addr::new(HostId(1), 1)),
            );
            for i in 0..1_000u32 {
                let t = SimTime::from_micros(u64::from(i) * 50);
                net.send(t, Packet::new(down.0, down.1, 1_200, i));
                net.send(t, Packet::new(up.0, up.1, 80, i));
                net.poll(t);
            }
            net.poll(SimTime::from_secs(30));
            let mut delivered = 0;
            while net.recv(HostId(0)).is_some() {
                delivered += 1;
            }
            while net.recv(HostId(1)).is_some() {
                delivered += 1;
            }
            std::hint::black_box(delivered)
        })
    });
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("route_3hop_paced", |b| {
        b.iter(|| {
            let mut bld = NetBuilder::new();
            let a = bld.host();
            let z = bld.host();
            let r1 = bld.router();
            let r2 = bld.router();
            let fast = LinkParams::lan()
                .rate(1e8)
                .delay(SimDuration::from_millis(2));
            bld.duplex(a, r1, fast);
            bld.duplex(r1, r2, fast);
            bld.duplex(r2, z, fast);
            let mut rng = SimRng::seed_from_u64(12);
            let mut net = bld.build_with_payload::<u32>(&mut rng);
            // Paced far apart relative to service time: each poll visits
            // only the link with work, never the other five.
            for i in 0..1_000u32 {
                let t = SimTime::from_micros(u64::from(i) * 400);
                net.send(
                    t,
                    Packet::new(Addr::new(HostId(0), 1), Addr::new(HostId(1), 1), 1_000, i),
                );
                net.poll(t);
            }
            net.poll(SimTime::from_secs(10));
            let mut delivered = 0;
            while net.recv(HostId(1)).is_some() {
                delivered += 1;
            }
            std::hint::black_box(delivered)
        })
    });
    g.finish();
}

/// The scheduler in isolation: the steady-state pattern a session world
/// drives — a small working set (~8 pending events) with mixed
/// microsecond-to-tens-of-milliseconds deltas, one push per pop. Runs the
/// identical workload through the `BinaryHeap` [`EventQueue`] and the
/// [`TimerWheel`] that replaced it on the hot path.
fn bench_scheduler(c: &mut Criterion) {
    // Deltas shaped like the session mix: link serialization times
    // (µs–ms), propagation delays (2–60 ms), and pacing gaps.
    const DELTAS: [u64; 8] = [120, 430, 1_000, 2_800, 5_000, 12_000, 28_000, 60_000];
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("heap_steady_state_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut now = SimTime::ZERO;
            for i in 0..8u64 {
                q.push(now + SimDuration::from_micros(DELTAS[i as usize]), i);
            }
            for i in 0..10_000u64 {
                let ev = q.pop().expect("queue never empties");
                now = ev.at;
                let d = DELTAS[(ev.event.wrapping_mul(2_654_435_761) % 8) as usize];
                q.push(now + SimDuration::from_micros(d), i);
            }
            std::hint::black_box(now)
        })
    });
    g.bench_function("wheel_steady_state_10k", |b| {
        b.iter(|| {
            let mut q = TimerWheel::new();
            let mut now = SimTime::ZERO;
            for i in 0..8u64 {
                q.push(now + SimDuration::from_micros(DELTAS[i as usize]), i);
            }
            for i in 0..10_000u64 {
                let ev = q.pop().expect("queue never empties");
                now = ev.at;
                let d = DELTAS[(ev.event.wrapping_mul(2_654_435_761) % 8) as usize];
                q.push(now + SimDuration::from_micros(d), i);
            }
            std::hint::black_box(now)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_rtsp_codec,
    bench_media_pipeline,
    bench_stats,
    bench_tcp_bulk,
    bench_network_forwarding,
    bench_net_hotpath
);
criterion_main!(benches);
