//! Figure-regeneration benchmarks: one Criterion benchmark per paper
//! figure (the generator running over a prebuilt campaign), plus the
//! campaign itself at reduced scale. These are the timings behind
//! "how long does it take to reproduce Figure N".

use criterion::{criterion_group, criterion_main, Criterion};

use realvideo_core::{figure, FIGURE_IDS};
use rv_study::{run_campaign, StudyParams};

fn campaign_params(scale: f64) -> StudyParams {
    StudyParams {
        scale,
        ..StudyParams::default()
    }
}

/// The campaign itself: the expensive part of any figure.
fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("scale_0.01", |b| {
        b.iter(|| std::hint::black_box(run_campaign(campaign_params(0.01))))
    });
    g.bench_function("scale_0.03", |b| {
        b.iter(|| std::hint::black_box(run_campaign(campaign_params(0.03))))
    });
    g.finish();
}

/// Every figure generator over one shared campaign. Figure 1 re-simulates
/// its own session and dominates; the analysis-only figures are cheap.
fn bench_figures(c: &mut Criterion) {
    let data = run_campaign(campaign_params(0.03)).expect("campaign runs");
    let mut g = c.benchmark_group("figure");
    g.sample_size(10);
    for id in FIGURE_IDS {
        g.bench_function(id, |b| {
            b.iter(|| std::hint::black_box(figure(id, &data).expect("known id")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_campaign, bench_figures);
criterion_main!(benches);
