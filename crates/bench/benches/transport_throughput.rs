//! Transport throughput micro-benchmarks for the zero-copy payload
//! pipeline: bulk 1 MiB TCP transfers over a clean and a lossy link.
//!
//! The lossless case measures the segmentize path (rope sub-slices per
//! segment, one shared backing buffer); the lossy case adds the
//! retransmit path, which re-slices the same backing instead of
//! re-copying the unacked bytes. With `--features alloc-stats` the
//! per-transfer allocation counts are printed alongside the timings.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

#[cfg(feature = "alloc-stats")]
#[global_allocator]
static ALLOC: rv_sim::alloc_stats::CountingAlloc = rv_sim::alloc_stats::CountingAlloc;

use rv_net::{Addr, HostId, LinkParams, NetBuilder};
use rv_sim::{SimDuration, SimRng, SimTime};
use rv_transport::{Segment, Stack, TcpConfig};

const TRANSFER: usize = 1024 * 1024;

/// Moves `TRANSFER` bytes client→server over one duplex link and returns
/// the bytes delivered (asserted complete).
fn bulk_transfer(loss: f64, seed: u64) -> usize {
    let mut bld = NetBuilder::new();
    let cn = bld.host();
    let sn = bld.host();
    let mut params = LinkParams::lan()
        .rate(20_000_000.0)
        .delay(SimDuration::from_millis(10));
    if loss > 0.0 {
        params = params.loss(loss);
    }
    bld.duplex(cn, sn, params);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut net = bld.build_with_payload::<Segment>(&mut rng);
    let mut cs = Stack::new(HostId(0));
    let mut ss = Stack::new(HostId(1));
    let ch = cs.tcp_socket(1000, TcpConfig::default());
    let sh = ss.tcp_socket(80, TcpConfig::default());
    ss.tcp(sh).listen();
    cs.tcp(ch).connect(Addr::new(HostId(1), 80), SimTime::ZERO);

    let payload = vec![7u8; TRANSFER];
    let mut sent = 0;
    let mut received = 0usize;
    let mut now = SimTime::ZERO;
    while received < TRANSFER && now < SimTime::from_secs(120) {
        sent += cs.tcp(ch).send(&payload[sent..]);
        net.poll(now);
        cs.poll(now, &mut net);
        ss.poll(now, &mut net);
        received += ss.tcp(sh).recv_with(usize::MAX, &mut |chunk: &[u8]| {
            std::hint::black_box(chunk.len());
        });
        now = rv_sim::earliest([net.next_wake(), cs.next_wake(), ss.next_wake()])
            .unwrap_or(now + SimDuration::from_millis(1))
            .max(now + SimDuration::from_micros(100));
    }
    assert_eq!(received, TRANSFER, "transfer must complete (loss={loss})");
    received
}

fn bench_transport_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport_throughput_1MiB");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(TRANSFER as u64));
    for (name, loss) in [("lossless_20mbps", 0.0), ("lossy2pct_20mbps", 0.02)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                #[cfg(feature = "alloc-stats")]
                let before = rv_sim::alloc_stats::snapshot();
                let got = std::hint::black_box(bulk_transfer(loss, 5));
                #[cfg(feature = "alloc-stats")]
                {
                    let after = rv_sim::alloc_stats::snapshot();
                    eprintln!(
                        "{name}: {} allocs, {} bytes allocated per transfer",
                        after.0 - before.0,
                        after.1 - before.1
                    );
                }
                got
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transport_throughput);
criterion_main!(benches);
