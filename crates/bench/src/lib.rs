//! # rv-bench — benchmark harness support
//!
//! Re-exports the canonical two-host world builder used by the Criterion
//! benches (`benches/figures.rs`, `benches/components.rs`,
//! `benches/ablations.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rv_tracer::two_host_world as session_world;
