//! RealData-style analysis over campaign records.
//!
//! The paper's Notes section promises "an accompanying analysis tool called
//! RealData"; this module is its equivalent: group-by summaries and filters
//! over [`SessionRecord`]s, exposed through the `realdata` binary. This is
//! deliberately a record-level tool — it needs campaigns run through
//! [`run_campaign_with_records`](rv_study::run_campaign_with_records), the
//! opt-in O(sessions)-memory path; the figures pipeline itself runs on
//! streaming aggregates and never touches records.

use rv_stats::{table, Summary};
use rv_study::{SessionRecord, StudyData};

/// The dimensions a summary can group by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// End-host connection class (Figures 12, 13, 21, 27).
    Connection,
    /// Data transport (Figures 16–18, 24).
    Protocol,
    /// Server site (Figure 10).
    Server,
    /// Server figure region (Figures 14, 22).
    ServerRegion,
    /// User figure region (Figures 15, 23).
    UserRegion,
    /// User country (Figure 7).
    Country,
    /// PC class (Figure 19).
    Pc,
}

impl GroupBy {
    /// All dimensions, for CLI listings.
    pub const ALL: [GroupBy; 7] = [
        GroupBy::Connection,
        GroupBy::Protocol,
        GroupBy::Server,
        GroupBy::ServerRegion,
        GroupBy::UserRegion,
        GroupBy::Country,
        GroupBy::Pc,
    ];

    /// The CLI name of this dimension.
    pub fn name(self) -> &'static str {
        match self {
            GroupBy::Connection => "connection",
            GroupBy::Protocol => "protocol",
            GroupBy::Server => "server",
            GroupBy::ServerRegion => "server-region",
            GroupBy::UserRegion => "user-region",
            GroupBy::Country => "country",
            GroupBy::Pc => "pc",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<GroupBy> {
        GroupBy::ALL.iter().copied().find(|g| g.name() == s)
    }

    /// The group label of one record.
    pub fn key(self, r: &SessionRecord) -> String {
        match self {
            GroupBy::Connection => r.connection.name().to_string(),
            GroupBy::Protocol => r.metrics.protocol.to_string(),
            GroupBy::Server => r.server_name.to_string(),
            GroupBy::ServerRegion => r.server_region.name().to_string(),
            GroupBy::UserRegion => r.user_region.name().to_string(),
            GroupBy::Country => r.user_country.name().to_string(),
            GroupBy::Pc => r.pc.name().to_string(),
        }
    }
}

/// Aggregate statistics of one group of played sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// The group label.
    pub key: String,
    /// Played sessions in the group.
    pub sessions: usize,
    /// Mean measured frame rate.
    pub mean_fps: f64,
    /// Median measured frame rate.
    pub median_fps: f64,
    /// Fraction of sessions below 3 fps.
    pub below_3fps: f64,
    /// Median jitter in ms over sessions that have one.
    pub median_jitter_ms: Option<f64>,
    /// Mean bandwidth, kbps.
    pub mean_kbps: f64,
    /// Mean rating over rated sessions in the group, if any.
    pub mean_rating: Option<f64>,
}

/// Groups the played records by `dim` and summarizes each group,
/// sorted by group label.
pub fn summarize_by(data: &StudyData, dim: GroupBy) -> Vec<GroupSummary> {
    let mut groups: std::collections::BTreeMap<String, Vec<&SessionRecord>> = Default::default();
    for r in data.played() {
        groups.entry(dim.key(r)).or_default().push(r);
    }
    groups
        .into_iter()
        .map(|(key, recs)| {
            let fps: Vec<f64> = recs.iter().map(|r| r.metrics.frame_rate).collect();
            let fps_summary = Summary::from_samples(&fps).expect("group is nonempty");
            let jitter: Vec<f64> = recs.iter().filter_map(|r| r.metrics.jitter_ms).collect();
            let kbps: Vec<f64> = recs.iter().map(|r| r.metrics.bandwidth_kbps).collect();
            let ratings: Vec<f64> = recs
                .iter()
                .filter_map(|r| r.rating.map(f64::from))
                .collect();
            GroupSummary {
                key,
                sessions: recs.len(),
                mean_fps: fps_summary.mean(),
                median_fps: fps_summary.median(),
                below_3fps: fps_summary.fraction_below(3.0),
                median_jitter_ms: Summary::from_samples(&jitter).map(|s| s.median()),
                mean_kbps: kbps.iter().sum::<f64>() / kbps.len() as f64,
                mean_rating: if ratings.is_empty() {
                    None
                } else {
                    Some(ratings.iter().sum::<f64>() / ratings.len() as f64)
                },
            }
        })
        .collect()
}

/// Renders group summaries as an aligned table.
pub fn render_summaries(dim: GroupBy, summaries: &[GroupSummary]) -> String {
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.key.clone(),
                s.sessions.to_string(),
                format!("{:.1}", s.mean_fps),
                format!("{:.1}", s.median_fps),
                format!("{:.0}%", s.below_3fps * 100.0),
                s.median_jitter_ms.map_or("-".into(), |j| format!("{j:.0}")),
                format!("{:.0}", s.mean_kbps),
                s.mean_rating.map_or("-".into(), |r| format!("{r:.1}")),
            ]
        })
        .collect();
    table(
        &[
            dim.name(),
            "n",
            "mean fps",
            "med fps",
            "<3fps",
            "med jit(ms)",
            "kbps",
            "rating",
        ],
        &rows,
    )
}

/// One line of the per-session CSV export (RealTracer uploaded records to
/// WPI as flat rows; this is the equivalent schema).
pub fn csv_header() -> &'static str {
    "user,country,state,region,connection,pc,server,server_region,clip,available,outcome,\
     protocol,encoded_kbps,encoded_fps,fps,jitter_ms,kbps,frames_played,frames_dropped,\
     packets_lost,rebuffer_events,rating"
}

/// Formats one record as a CSV row matching [`csv_header`].
pub fn csv_row(r: &SessionRecord) -> String {
    let m = &r.metrics;
    format!(
        "{},{},{},{},{},{},{},{},{},{},{:?},{},{},{},{:.2},{},{:.1},{},{},{},{},{}",
        r.user_id,
        r.user_country.name(),
        r.user_state.unwrap_or(""),
        r.user_region.name(),
        r.connection.name(),
        r.pc.name(),
        r.server_name,
        r.server_region.name(),
        r.clip_name,
        r.available,
        m.outcome,
        m.protocol,
        m.encoded_bps / 1000,
        m.encoded_fps,
        m.frame_rate,
        m.jitter_ms.map_or(String::new(), |j| format!("{j:.1}")),
        m.bandwidth_kbps,
        m.frames_played,
        m.frames_dropped,
        m.packets_lost,
        m.rebuffer_events,
        r.rating.map_or(String::new(), |v| v.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_study::{run_campaign_with_records, StudyParams};

    fn data() -> StudyData {
        run_campaign_with_records(StudyParams {
            scale: 0.03,
            ..StudyParams::default()
        })
        .unwrap()
    }

    #[test]
    fn groupby_names_roundtrip() {
        for g in GroupBy::ALL {
            assert_eq!(GroupBy::parse(g.name()), Some(g));
        }
        assert_eq!(GroupBy::parse("nonsense"), None);
    }

    #[test]
    fn summaries_cover_all_played_sessions() {
        let d = data();
        let summaries = summarize_by(&d, GroupBy::Connection);
        let total: usize = summaries.iter().map(|s| s.sessions).sum();
        assert_eq!(total, d.played().count());
        for s in &summaries {
            assert!(s.mean_fps >= 0.0);
            assert!((0.0..=1.0).contains(&s.below_3fps));
        }
    }

    #[test]
    fn protocol_grouping_has_two_groups() {
        let d = data();
        let summaries = summarize_by(&d, GroupBy::Protocol);
        let keys: Vec<&str> = summaries.iter().map(|s| s.key.as_str()).collect();
        assert!(keys.contains(&"UDP") && keys.contains(&"TCP"));
    }

    #[test]
    fn render_produces_header_and_rows() {
        let d = data();
        let out = render_summaries(GroupBy::Connection, &summarize_by(&d, GroupBy::Connection));
        assert!(out.contains("connection"));
        assert!(out.contains("mean fps"));
        assert!(out.lines().count() >= 3);
    }

    #[test]
    fn csv_rows_have_fixed_width() {
        let d = data();
        let cols = csv_header().split(',').count();
        for r in d.records().iter().take(50) {
            assert_eq!(csv_row(r).split(',').count(), cols, "row: {}", csv_row(r));
        }
    }
}
