//! RealData: explore campaign records — the analysis companion the paper's
//! Notes section describes.
//!
//! ```text
//! realdata summary [--scale S] [--seed N] [--jobs J]   # campaign-wide statistics
//! realdata by <dimension> [--scale S]                  # group summary table
//! realdata csv [--scale S]                             # per-session CSV export
//! realdata dimensions                                  # list group-by dimensions
//! ```
//!
//! `--jobs J` fans session simulation across J worker threads; every
//! table and CSV row is bit-identical for every J.

use realvideo_core::analysis::{csv_header, csv_row, render_summaries, summarize_by, GroupBy};
use rv_study::{run_campaign_with_records, StudyParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = StudyParams {
        scale: 0.2,
        ..StudyParams::default()
    };
    let mut command: Option<String> = None;
    let mut dimension: Option<GroupBy> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                params.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|s: &f64| *s > 0.0 && s.is_finite())
                    .unwrap_or_else(|| die("--scale wants a positive number"));
            }
            "--seed" => {
                i += 1;
                params.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed wants an integer"));
            }
            "--jobs" => {
                i += 1;
                params.jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|j| *j >= 1)
                    .unwrap_or_else(|| die("--jobs wants a positive integer"));
            }
            "dimensions" => {
                for g in GroupBy::ALL {
                    println!("{}", g.name());
                }
                return;
            }
            cmd @ ("summary" | "by" | "csv") if command.is_none() => {
                command = Some(cmd.to_string());
                if cmd == "by" {
                    i += 1;
                    let name = args.get(i).unwrap_or_else(|| {
                        die("`by` wants a dimension; see `realdata dimensions`")
                    });
                    dimension = Some(
                        GroupBy::parse(name)
                            .unwrap_or_else(|| die(&format!("unknown dimension {name:?}"))),
                    );
                }
            }
            other => die(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let Some(command) = command else {
        die("usage: realdata <summary|by <dim>|csv|dimensions> [--scale S] [--seed N] [--jobs J]");
    };

    eprintln!(
        "running campaign: seed={} scale={} jobs={}...",
        params.seed, params.scale, params.jobs
    );
    // RealData is deliberately a record-level explorer, so it opts into
    // record retention; memory is O(sessions) here, unlike `repro`.
    let data = run_campaign_with_records(params).unwrap_or_else(|e| {
        eprintln!("realdata: campaign failed: {e}");
        std::process::exit(1);
    });
    eprintln!("{}\n", data.summary);

    match command.as_str() {
        "summary" => {
            for dim in [GroupBy::Connection, GroupBy::Protocol, GroupBy::UserRegion] {
                println!("{}", render_summaries(dim, &summarize_by(&data, dim)));
                println!();
            }
        }
        "by" => {
            let dim = dimension.expect("parsed with `by`");
            println!("{}", render_summaries(dim, &summarize_by(&data, dim)));
        }
        "csv" => {
            println!("{}", csv_header());
            for r in data.records() {
                println!("{}", csv_row(r));
            }
        }
        _ => unreachable!("validated above"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("realdata: {msg}");
    std::process::exit(2);
}
