//! Regenerates the paper's figures from a freshly simulated campaign.
//!
//! Usage:
//! ```text
//! repro all [--scale S] [--seed N] [--jobs J]   # every figure
//! repro fig11 fig16 [--scale S]                 # specific figures
//! repro failures --faults [--scale S]           # failure taxonomy
//! repro list                                    # figure index
//! ```
//!
//! `--jobs J` fans session simulation across J worker threads. The
//! figures are bit-identical for every J; only the wall time changes.
//!
//! `--scale S` scales the study population: fractions (0, 1] subsample
//! the 63-participant roster; integers above 1 replicate it with
//! identical strata proportions (`--scale 100` ≈ 290k sessions). The
//! campaign streams into constant-memory aggregates, so large scales
//! run with flat memory.
//!
//! `--faults` turns on the default fault-injection scenario (link
//! outages, loss bursts, server crashes, UDP black holes). Without it
//! campaigns are fault-free and bit-identical to builds that predate the
//! fault subsystem. The `failures` subcommand prints the campaign's
//! failure-taxonomy report (counts and rates per outcome, server,
//! country, and transport).
//!
//! `--dump-records PATH` opts back into record retention and writes every
//! session as a CSV row to PATH (`-` for stdout). The `dump` subcommand
//! likewise retains records and prints the played-session table. Both are
//! O(sessions) in memory — everything else streams.
//!
//! `--bench-out PATH` additionally writes the run's throughput accounting
//! (wall time, sessions/sec, simulated-seconds/sec, worker split, peak
//! memory, phase walls, per-worker profile, and the campaign counter
//! totals) as a JSON object, so CI and benchmarking scripts can track
//! campaign performance without scraping the human-readable summary line.
//!
//! `--profile` prints the phase walls (plan/execute/figures) and the
//! per-worker busy/idle split to stderr after the run.
//!
//! `repro trace --user U --clip C [--faults] [--trace-out PREFIX]` replays
//! one planned session with the flight recorder armed and writes the
//! timeline as `PREFIX.jsonl` (one event per line) and `PREFIX.chrome.json`
//! (Chrome `trace_event` format, loadable in Perfetto). Unknown user/clip
//! keys exit non-zero listing nearby valid keys instead of writing an
//! empty trace.

use realvideo_core::analysis::{csv_header, csv_row};
use realvideo_core::{figure, gateway_figures, FigureOutput, FIGURE_IDS};
use rv_study::{run_campaign, run_campaign_with_records, GatewayPolicy, StudyParams};

// With `--features alloc-stats` every allocation in the process is
// counted, and `--bench-out` reports bytes/allocations per session.
#[cfg(feature = "alloc-stats")]
#[global_allocator]
static ALLOC: rv_sim::alloc_stats::CountingAlloc = rv_sim::alloc_stats::CountingAlloc;

/// Formats a per-session allocation figure, or `null` when the counting
/// allocator is not compiled in.
fn alloc_json(total: Option<u64>, sessions: usize) -> String {
    match total {
        Some(t) if sessions > 0 => format!("{:.1}", t as f64 / sessions as f64),
        Some(t) => t.to_string(),
        None => "null".to_string(),
    }
}

/// Peak resident set size of this process in MiB (Linux `VmHWM`), or
/// `None` where /proc is unavailable.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut params = StudyParams::default();
    let mut bench_out: Option<String> = None;
    let mut dump_records: Option<String> = None;
    let mut trace_mode = false;
    let mut gateway_mode = false;
    let mut gateway_flag = false;
    let mut trace_user: Option<u32> = None;
    let mut trace_clip: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut profile = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                params.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|s: &f64| *s > 0.0 && s.is_finite())
                    .unwrap_or_else(|| die("--scale wants a positive number"));
            }
            "--seed" => {
                i += 1;
                params.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed wants an integer"));
            }
            "--jobs" => {
                i += 1;
                params.jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|j| *j >= 1)
                    .unwrap_or_else(|| die("--jobs wants a positive integer"));
            }
            "--bench-out" => {
                i += 1;
                bench_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--bench-out wants a file path")),
                );
            }
            "--dump-records" => {
                i += 1;
                dump_records = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--dump-records wants a file path (or -)")),
                );
            }
            "--faults" => params.faults = rv_sim::FaultScenario::default_on(),
            "--replicas" => {
                i += 1;
                params.replicas = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|r| *r >= 1)
                    .unwrap_or_else(|| die("--replicas wants a positive integer"));
            }
            "--gateway" => {
                i += 1;
                params.gateway = args
                    .get(i)
                    .and_then(|s| GatewayPolicy::parse(s))
                    .unwrap_or_else(|| die("--gateway wants sticky, nearest, or least-loaded"));
                gateway_flag = true;
            }
            "--capacity" => {
                i += 1;
                params.capacity = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--capacity wants an integer"));
            }
            "--profile" => profile = true,
            "trace" => trace_mode = true,
            "gateway" => gateway_mode = true,
            "--user" => {
                i += 1;
                trace_user = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--user wants a participant id")),
                );
            }
            "--clip" => {
                i += 1;
                trace_clip = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--clip wants a clip name")),
                );
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--trace-out wants a path prefix")),
                );
            }
            "list" => {
                println!("available figures:");
                for id in FIGURE_IDS {
                    println!("  {id}");
                }
                return;
            }
            "all" => ids.extend(FIGURE_IDS.iter().map(|s| s.to_string())),
            "dump" => ids.push("dump".to_string()),
            "failures" => ids.push("failures".to_string()),
            other if FIGURE_IDS.contains(&other) => ids.push(other.to_string()),
            other => die(&format!("unknown argument {other:?}; try `repro list`")),
        }
        i += 1;
    }
    if trace_mode {
        run_trace(params, trace_user, trace_clip, trace_out);
        return;
    }
    if gateway_mode {
        run_gateway_sweep(params, gateway_flag);
        return;
    }
    if ids.is_empty() && bench_out.is_none() && dump_records.is_none() {
        die("nothing to do; try `repro all` or `repro list`");
    }
    // Only the record dumps need O(sessions) memory; everything else
    // streams into constant-size aggregates.
    let need_records = dump_records.is_some() || ids.iter().any(|id| id == "dump");

    eprintln!(
        "running campaign: seed={} scale={} ({} the paper's ~2,900 sessions)...",
        params.seed,
        params.scale,
        if params.scale > 1.0 {
            "a multiple of"
        } else if params.scale >= 1.0 {
            "all of"
        } else {
            "a fraction of"
        }
    );
    #[cfg(feature = "alloc-stats")]
    rv_sim::alloc_stats::reset();
    let data = if need_records {
        run_campaign_with_records(params)
    } else {
        run_campaign(params)
    }
    .unwrap_or_else(|e| die(&format!("campaign failed: {e}")));
    #[cfg(feature = "alloc-stats")]
    let alloc_snapshot = rv_sim::alloc_stats::snapshot();
    #[cfg(not(feature = "alloc-stats"))]
    let alloc_snapshot: Option<(u64, u64)> = None;
    #[cfg(feature = "alloc-stats")]
    let alloc_snapshot = Some(alloc_snapshot);
    #[cfg(feature = "alloc-stats")]
    let alloc_peak: Option<u64> = Some(rv_sim::alloc_stats::peak_bytes());
    #[cfg(not(feature = "alloc-stats"))]
    let alloc_peak: Option<u64> = None;
    eprintln!("{}", data.summary);
    eprintln!("counters: {}", counters_line(&data.summary.counters));
    eprintln!("campaign done: {} rated\n", data.aggregates.rated);

    if let Some(path) = dump_records {
        let mut out = String::with_capacity(64 * (data.records().len() + 1));
        out.push_str(csv_header());
        out.push('\n');
        for r in data.records() {
            out.push_str(&csv_row(r));
            out.push('\n');
        }
        if path == "-" {
            print!("{out}");
        } else {
            if let Err(e) = std::fs::write(&path, out) {
                die(&format!("cannot write --dump-records {path:?}: {e}"));
            }
            eprintln!("wrote {} session records to {path}", data.records().len());
        }
    }

    let figures_start = std::time::Instant::now();
    for id in ids {
        if id == "failures" {
            println!("{}", data.failure_report());
            continue;
        }
        if id == "dump" {
            println!("user conn pc server proto enc_kbps fps jitter bw_kbps lost rebuf dropped startup recov");
            for r in data.records().iter().filter(|r| r.played()) {
                let m = &r.metrics;
                println!(
                    "{} {:?} {:.2} {} {} {} {:.1} {} {:.0} {} {} {} {:.1} {}",
                    r.user_id,
                    r.connection,
                    r.pc.cpu_power(),
                    r.server_name,
                    match m.protocol {
                        rv_rtsp::TransportKind::Udp => "udp",
                        _ => "tcp",
                    },
                    m.encoded_bps / 1000,
                    m.frame_rate,
                    m.jitter_ms.map(|j| format!("{j:.0}")).unwrap_or("-".into()),
                    m.bandwidth_kbps,
                    m.packets_lost,
                    m.rebuffer_events,
                    m.frames_dropped,
                    m.startup_delay.map(|d| d.as_secs_f64()).unwrap_or(-1.0),
                    m.frames_recovered,
                );
            }
            continue;
        }
        let FigureOutput { id, title, body } = figure(&id, &data).expect("validated id");
        println!("==================================================================");
        println!("{id}: {title}");
        println!("==================================================================");
        println!("{body}");
    }
    let figures_wall = figures_start.elapsed();

    if profile {
        let s = &data.summary;
        eprintln!(
            "phase profile: plan {:.3}s | execute {:.3}s | figures {:.3}s",
            s.plan_wall.as_secs_f64(),
            s.wall.as_secs_f64(),
            figures_wall.as_secs_f64(),
        );
        for (w, p) in s.profiles.iter().enumerate() {
            eprintln!(
                "  worker {w}: {} sessions over {} claims, busy {:.3}s, idle {:.3}s",
                p.sessions,
                p.claims,
                p.busy.as_secs_f64(),
                p.idle().as_secs_f64(),
            );
        }
    }

    if let Some(path) = bench_out {
        let s = &data.summary;
        let per_worker: Vec<String> = s.per_worker.iter().map(|n| n.to_string()).collect();
        let counters: Vec<String> = s
            .counters
            .iter()
            .map(|(c, v)| format!("\"{}\": {v}", c.name()))
            .collect();
        let workers: Vec<String> = s
            .profiles
            .iter()
            .map(|p| {
                format!(
                    "{{\"sessions\": {}, \"claims\": {}, \"busy_secs\": {:.6}, \"idle_secs\": {:.6}}}",
                    p.sessions,
                    p.claims,
                    p.busy.as_secs_f64(),
                    p.idle().as_secs_f64(),
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n",
                "  \"seed\": {},\n",
                "  \"scale\": {},\n",
                "  \"jobs\": {},\n",
                "  \"jobs_planned\": {},\n",
                "  \"played\": {},\n",
                "  \"unavailable\": {},\n",
                "  \"wall_secs\": {:.6},\n",
                "  \"sessions_per_sec\": {:.3},\n",
                "  \"sim_seconds\": {:.3},\n",
                "  \"sim_seconds_per_sec\": {:.3},\n",
                "  \"allocs_per_session\": {},\n",
                "  \"bytes_allocated_per_session\": {},\n",
                "  \"peak_alloc_bytes\": {},\n",
                "  \"peak_rss_mb\": {},\n",
                "  \"per_worker\": [{}],\n",
                "  \"phases\": {{\"plan_secs\": {:.6}, \"execute_secs\": {:.6}, \"figures_secs\": {:.6}}},\n",
                "  \"workers\": [{}],\n",
                "  \"counters\": {{{}}}\n",
                "}}\n"
            ),
            params.seed,
            params.scale,
            s.workers,
            s.jobs_planned,
            s.played,
            s.unavailable,
            s.wall.as_secs_f64(),
            s.sessions_per_sec(),
            s.sim_seconds,
            s.sim_seconds_per_sec(),
            alloc_json(alloc_snapshot.map(|(allocs, _)| allocs), s.jobs_planned),
            alloc_json(alloc_snapshot.map(|(_, bytes)| bytes), s.jobs_planned),
            alloc_peak.map_or("null".to_string(), |p| p.to_string()),
            peak_rss_mb().map_or("null".to_string(), |mb| format!("{mb:.1}")),
            per_worker.join(", "),
            s.plan_wall.as_secs_f64(),
            s.wall.as_secs_f64(),
            figures_wall.as_secs_f64(),
            workers.join(", "),
            counters.join(", "),
        );
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write --bench-out {path:?}: {e}"));
        }
        eprintln!("wrote campaign bench record to {path}");
    }
}

/// `name=value` pairs for every campaign counter, in registry order.
fn counters_line(counters: &rv_sim::CounterSet) -> String {
    use std::fmt::Write as _;
    let mut line = String::new();
    for (c, v) in counters.iter() {
        if !line.is_empty() {
            line.push(' ');
        }
        let _ = write!(line, "{}={v}", c.name());
    }
    line
}

/// The `repro gateway` subcommand: a faulted replica sweep. Runs the
/// campaign at replicas {1, 2, 4} with faults on and prints the three
/// gateway figures (quality vs replica count, replica load skew,
/// failover recovery). `--gateway` picks the policy for the multi-replica
/// runs; without it the sweep uses `nearest`, the geo-aware default.
fn run_gateway_sweep(mut params: StudyParams, policy_chosen: bool) {
    params.faults = rv_sim::FaultScenario::default_on();
    if !policy_chosen {
        params.gateway = GatewayPolicy::NearestHealthy;
    }
    let mut sweep = Vec::new();
    for replicas in [1u8, 2, 4] {
        let mut p = params;
        p.replicas = replicas;
        eprintln!(
            "gateway sweep: replicas={replicas} policy={} capacity={} scale={} (faulted)...",
            p.gateway.name(),
            p.capacity,
            p.scale,
        );
        let data = run_campaign(p).unwrap_or_else(|e| die(&format!("campaign failed: {e}")));
        eprintln!("{}", data.summary);
        sweep.push((replicas, data));
    }
    for FigureOutput { id, title, body } in gateway_figures(&sweep) {
        println!("==================================================================");
        println!("{id}: {title}");
        println!("==================================================================");
        println!("{body}");
    }
}

/// The `repro trace` subcommand: replay one planned session with the
/// flight recorder armed and write the timeline next to the caller.
fn run_trace(params: StudyParams, user: Option<u32>, clip: Option<String>, out: Option<String>) {
    let user = user.unwrap_or_else(|| die("trace wants --user <participant id>"));
    let clip = clip.unwrap_or_else(|| die("trace wants --clip <clip name>"));
    let trace = rv_study::trace_session(params, user, &clip)
        .unwrap_or_else(|e| die(&format!("trace: {e}")));
    let prefix = out.unwrap_or_else(|| format!("trace_u{user}"));
    let jsonl_path = format!("{prefix}.jsonl");
    let chrome_path = format!("{prefix}.chrome.json");
    if let Err(e) = std::fs::write(&jsonl_path, trace.to_jsonl()) {
        die(&format!("cannot write {jsonl_path:?}: {e}"));
    }
    if let Err(e) = std::fs::write(&chrome_path, trace.to_chrome_trace()) {
        die(&format!("cannot write {chrome_path:?}: {e}"));
    }
    eprintln!(
        "traced user {user} clip {clip}: {} events, outcome {}, faults {}",
        trace.records.len(),
        trace.metrics.outcome.label(),
        if trace.faulted { "on" } else { "off" },
    );
    eprintln!("counters: {}", counters_line(&trace.counters));
    eprintln!("wrote {jsonl_path} and {chrome_path}");
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
