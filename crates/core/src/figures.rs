//! Regenerates every figure of the paper from campaign data.
//!
//! One generator per figure (1, 5–28) plus the Section IV aggregate table.
//! Each returns a [`FigureOutput`]: a text rendering (CDF plot + data
//! series, bar chart, or scatter summary) and the headline statistics the
//! paper reports for that figure, so EXPERIMENTS.md can compare
//! paper-vs-measured directly.
//!
//! Every figure is computed from the streaming [`CampaignAggregates`] —
//! never from retained records — so figure generation works on the
//! constant-memory campaign path at any scale. Composition figures
//! (5–10, 16, agg) read exact counts; distribution figures (11–27) read
//! [`QuantileSketch`]es (~1 % relative quantile accuracy, exact
//! count/mean/extrema); the scatter figure (28) reads exact co-moments.

use rv_media::{Clip, ContentKind};
use rv_sim::{SimDuration, SimTime};
use rv_stats::{bar_chart, cdf_plot, table, Cdf, QuantileSketch};
use rv_study::{
    build_population, server_roster, CampaignAggregates, ConnectionClass, PcClass, ServerRegion,
    StudyData, UserRegion, BANDWIDTH_BINS,
};

/// A regenerated figure: identifier, caption, and text body.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Stable id, e.g. `fig11`.
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub title: &'static str,
    /// Printable body: headline stats, plot, and data series.
    pub body: String,
}

/// All figure ids, in paper order.
pub const FIGURE_IDS: [&str; 26] = [
    "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
    "fig25", "fig26", "fig27", "fig28", "agg",
];

/// Generates one figure by id. `None` for an unknown id.
pub fn figure(id: &str, data: &StudyData) -> Option<FigureOutput> {
    let agg = &data.aggregates;
    Some(match id {
        "fig1" => fig1(),
        "fig5" => fig5(agg),
        "fig6" => fig6(agg),
        "fig7" => bar_figure(
            "fig7",
            "Video clips played by users from each country",
            &agg.user_countries,
        ),
        "fig8" => bar_figure(
            "fig8",
            "Video clips served by RealServers from each country",
            &agg.server_countries,
        ),
        "fig9" => bar_figure(
            "fig9",
            "Video clips played by U.S. users from each state",
            &agg.us_states,
        ),
        "fig10" => fig10(agg),
        "fig11" => fig11(agg),
        "fig12" => sketch_figure(
            "fig12",
            "CDF of frame rate for different end-host network configurations",
            keyed_series(&ConnectionClass::ALL, |c| c.name(), &agg.fps_by_connection),
            " fps",
            &[3.0, 15.0],
        ),
        "fig13" => sketch_figure(
            "fig13",
            "CDF of bandwidth for different end-host network configurations",
            keyed_series(&ConnectionClass::ALL, |c| c.name(), &agg.bw_by_connection),
            " kbps",
            &[50.0, 250.0],
        ),
        "fig14" => sketch_figure(
            "fig14",
            "CDF of frame rate for RealServers in different geographic regions",
            keyed_series(&ServerRegion::ALL, |c| c.name(), &agg.fps_by_server_region),
            " fps",
            &[3.0, 15.0],
        ),
        "fig15" => sketch_figure(
            "fig15",
            "CDF of frame rate for users in different geographic regions",
            keyed_series(&UserRegion::ALL, |c| c.name(), &agg.fps_by_user_region),
            " fps",
            &[3.0, 15.0],
        ),
        "fig16" => fig16(agg),
        "fig17" => sketch_figure(
            "fig17",
            "CDF of frame rate for transport protocols",
            protocol_series(&agg.fps_by_protocol),
            " fps",
            &[3.0, 15.0],
        ),
        "fig18" => sketch_figure(
            "fig18",
            "CDF of bandwidth for transport protocols",
            protocol_series(&agg.bw_by_protocol),
            " kbps",
            &[50.0, 250.0],
        ),
        "fig19" => sketch_figure(
            "fig19",
            "CDF of frame rate for classes of user PCs",
            keyed_series(&PcClass::ALL, |c| c.name(), &agg.fps_by_pc),
            " fps",
            &[3.0, 15.0],
        ),
        "fig20" => fig20(agg),
        "fig21" => sketch_figure(
            "fig21",
            "CDF of jitter for different network configurations",
            keyed_series(
                &ConnectionClass::ALL,
                |c| c.name(),
                &agg.jitter_by_connection,
            ),
            " ms",
            &[50.0, 300.0],
        ),
        "fig22" => sketch_figure(
            "fig22",
            "CDF of jitter for RealServers in different geographic regions",
            keyed_series(
                &ServerRegion::ALL,
                |c| c.name(),
                &agg.jitter_by_server_region,
            ),
            " ms",
            &[50.0, 300.0],
        ),
        "fig23" => sketch_figure(
            "fig23",
            "CDF of jitter for users in different geographic regions",
            keyed_series(&UserRegion::ALL, |c| c.name(), &agg.jitter_by_user_region),
            " ms",
            &[50.0, 300.0],
        ),
        "fig24" => sketch_figure(
            "fig24",
            "CDF of jitter for transport protocols",
            protocol_series(&agg.jitter_by_protocol),
            " ms",
            &[50.0, 300.0],
        ),
        "fig25" => fig25(agg),
        "fig26" => fig26(agg),
        "fig27" => sketch_figure(
            "fig27",
            "CDF of quality for different end-host network configurations",
            keyed_series(
                &ConnectionClass::ALL,
                |c| c.name(),
                &agg.ratings_by_connection,
            ),
            "",
            &[3.0, 7.0],
        ),
        "fig28" => fig28(agg),
        "agg" => aggregate(data),
        _ => return None,
    })
}

/// Generates every figure.
pub fn all_figures(data: &StudyData) -> Vec<FigureOutput> {
    FIGURE_IDS
        .iter()
        .map(|id| figure(id, data).expect("known id"))
        .collect()
}

// ---------- sketch rendering helpers ----------

/// Pulls one sketch per stratum in figure order, empty sketches for
/// strata the campaign never observed.
fn keyed_series<K: Ord + Copy>(
    keys: &[K],
    name: impl Fn(K) -> &'static str,
    map: &std::collections::BTreeMap<K, QuantileSketch>,
) -> Vec<(String, QuantileSketch)> {
    keys.iter()
        .map(|k| {
            (
                name(*k).to_string(),
                map.get(k).cloned().unwrap_or_default(),
            )
        })
        .collect()
}

/// Transport series, TCP first (the paper's ordering).
fn protocol_series(
    map: &std::collections::BTreeMap<&'static str, QuantileSketch>,
) -> Vec<(String, QuantileSketch)> {
    ["TCP", "UDP"]
        .iter()
        .map(|p| (p.to_string(), map.get(p).cloned().unwrap_or_default()))
        .collect()
}

/// Renders a multi-series CDF figure from sketches: plot + per-series
/// headline stats. The sketch counterpart of the old record-path
/// `cdf_figure`, with the same layout.
fn sketch_figure(
    id: &'static str,
    title: &'static str,
    series: Vec<(String, QuantileSketch)>,
    unit: &str,
    thresholds: &[f64],
) -> FigureOutput {
    let mut body = String::new();
    let mut plots: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let lo = 0.0;
    let hi = series
        .iter()
        .filter_map(|(_, s)| s.max())
        .fold(1.0f64, f64::max);
    let mut stats_rows: Vec<Vec<String>> = Vec::new();
    for (name, sketch) in &series {
        if sketch.is_empty() {
            let mut row = vec![name.clone(), "0".into(), "-".into(), "-".into()];
            row.extend(thresholds.iter().map(|_| "-".to_string()));
            stats_rows.push(row);
            continue;
        }
        let mut row = vec![
            name.clone(),
            sketch.count().to_string(),
            format!("{:.2}", sketch.mean().expect("nonempty")),
            format!("{:.2}", sketch.quantile(0.5).expect("nonempty")),
        ];
        for t in thresholds {
            row.push(format!("{:.1}%", sketch.at(*t) * 100.0));
        }
        stats_rows.push(row);
        plots.push((name.clone(), sketch.series_on_grid(lo, hi, 56)));
    }
    let mut header = vec!["series", "n", "mean", "median"];
    let thr_labels: Vec<String> = thresholds.iter().map(|t| format!("F({t}{unit})")).collect();
    header.extend(thr_labels.iter().map(String::as_str));
    body.push_str(&table(&header, &stats_rows));
    body.push('\n');
    let plot_refs: Vec<(&str, &[(f64, f64)])> = plots
        .iter()
        .map(|(n, p)| (n.as_str(), p.as_slice()))
        .collect();
    if !plot_refs.is_empty() {
        body.push_str(&cdf_plot(&plot_refs, 64, 16));
    }
    FigureOutput { id, title, body }
}

// ---------- Figure 1: buffering & playout timeline ----------

fn fig1() -> FigureOutput {
    // A single broadband session, sampled once a second: coded vs. current
    // bandwidth and frame rate, showing the prebuffer burst and smooth
    // playout (the paper's Figure 1).
    let mut rng = rv_sim::SimRng::seed_from_u64(0xF161);
    let pop = build_population(&mut rng, 1.0);
    let user = pop
        .participants
        .iter()
        .find(|u| {
            u.connection == ConnectionClass::DslCable
                && u.firewall == rv_rtsp::FirewallPolicy::Open
                && u.pc.cpu_power() > 0.9
        })
        .expect("population has healthy DSL users");
    let roster = server_roster();
    let site = roster.iter().find(|s| s.name == "US/CNN").expect("CNN");
    let clip = Clip::new(
        "fig1-clip.rm",
        SimDuration::from_secs(300),
        ContentKind::News,
    );
    let mut world = rv_study::build_session_world(
        user,
        site,
        &clip,
        SimDuration::from_secs(70),
        0xF161_0001,
        &rv_sim::FaultPlan::none(),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut prev_bytes = 0u64;
    let mut prev_frames = 0usize;
    for sec in 1..=70u64 {
        world.run(SimTime::from_secs(sec));
        let stats = world.client.events();
        let played: Vec<_> = stats.iter().filter(|e| e.played_at.is_some()).collect();
        let frames_now = played.len();
        // Server-sent bytes proxy for delivered bytes (loss-free broadband
        // path); used consistently so per-second deltas never go negative.
        let bytes = world.server.stats().bytes_sent;
        let bw_kbps = (bytes.saturating_sub(prev_bytes)) as f64 * 8.0 / 1e3;
        let fps = (frames_now - prev_frames) as f64;
        // Coded values of the rung currently being streamed.
        let (coded_bw, coded_fps) = world
            .server
            .debug_stream()
            .map(|(rung, _, _, _)| {
                let enc = &clip.ladder.rungs()[rung];
                (enc.total_bps / 1000, enc.frame_rate)
            })
            .unwrap_or((0, 0.0));
        rows.push(vec![
            sec.to_string(),
            coded_bw.to_string(),
            format!("{bw_kbps:.0}"),
            format!("{coded_fps:.1}"),
            format!("{fps:.0}"),
        ]);
        prev_bytes = bytes;
        prev_frames = frames_now;
        if world.client.is_done() {
            break;
        }
    }
    let playback_start = world
        .client
        .metrics()
        .and_then(|m| m.startup_delay)
        .map(|d| format!("{:.1}", d.as_secs_f64()))
        .unwrap_or_else(|| "?".into());
    let mut body = format!(
        "Buffering and playout of one DSL RealVideo session.\n\
         Playout begins after {playback_start} s of buffering (paper: ~13 s).\n\n"
    );
    body.push_str(&table(
        &[
            "t(s)",
            "coded bw (kbps)",
            "current bw (kbps)",
            "coded fps",
            "current fps",
        ],
        &rows,
    ));
    FigureOutput {
        id: "fig1",
        title: "Buffering and playout of a RealVideo clip",
        body,
    }
}

// ---------- Figures 5–9: campaign composition ----------

fn fig5(agg: &CampaignAggregates) -> FigureOutput {
    // Per-user attempt counts are exact integers in the aggregates, so
    // this CDF is exact, not sketched.
    let counts: Vec<f64> = agg.plays_per_user.values().map(|c| *c as f64).collect();
    let cdf = Cdf::from_samples(&counts).expect("users exist");
    let mut body = format!(
        "Users: {}   median clips/user: {:.0}   max: {:.0} (playlist holds 98)\n\n",
        cdf.count(),
        cdf.quantile(0.5),
        cdf.max()
    );
    let series = cdf.series_on_grid(0.0, 100.0, 51);
    body.push_str(&cdf_plot(&[("clips/user", &series)], 64, 16));
    FigureOutput {
        id: "fig5",
        title: "CDF of video clips played per user",
        body,
    }
}

fn fig6(agg: &CampaignAggregates) -> FigureOutput {
    // Every participant appears (users who rated nothing count as zero).
    let counts: Vec<f64> = agg
        .plays_per_user
        .keys()
        .map(|user| agg.rated_by(*user) as f64)
        .collect();
    let cdf = Cdf::from_samples(&counts).expect("users exist");
    let mut body = format!(
        "Users: {}   median rated clips/user: {:.0}   max: {:.0}\n\n",
        cdf.count(),
        cdf.quantile(0.5),
        cdf.max()
    );
    let series = cdf.series_on_grid(0.0, 35.0, 36);
    body.push_str(&cdf_plot(&[("rated/user", &series)], 64, 16));
    FigureOutput {
        id: "fig6",
        title: "CDF of video clips rated per user",
        body,
    }
}

fn bar_figure(
    id: &'static str,
    title: &'static str,
    counts: &rv_stats::CategoryCount,
) -> FigureOutput {
    let items: Vec<(&str, f64)> = counts
        .by_count_ascending()
        .into_iter()
        .map(|(k, v)| (k, v as f64))
        .collect();
    FigureOutput {
        id,
        title,
        body: bar_chart(&items, 48),
    }
}

fn fig10(agg: &CampaignAggregates) -> FigureOutput {
    let mut items: Vec<(&str, f64)> = agg
        .attempts_by_server
        .by_name()
        .into_iter()
        .map(|(name, total)| {
            (
                name,
                agg.unavailable_by_server.get(name) as f64 / total as f64,
            )
        })
        .collect();
    items.sort_by(|a, b| a.0.cmp(b.0));
    let overall = agg.unavailable as f64 / agg.total_attempts as f64;
    let mut body = format!("Overall unavailable fraction: {overall:.3} (paper: ~0.10)\n\n");
    body.push_str(&bar_chart(&items, 48));
    FigureOutput {
        id: "fig10",
        title: "Fraction of unavailable clips per server",
        body,
    }
}

// ---------- Figures 11–19: frame rate & bandwidth ----------

fn fig11(agg: &CampaignAggregates) -> FigureOutput {
    let fps = &agg.fps;
    let mut out = sketch_figure(
        "fig11",
        "CDF of frame rate for all video clips",
        vec![("all clips".to_string(), fps.clone())],
        " fps",
        &[3.0, 15.0, 24.0],
    );
    out.body = format!(
        "mean {:.1} fps (paper: 10)   <3 fps: {:.0}% (paper: ~25%)   \
         >=15 fps: {:.0}% (paper: ~25%)   >=24 fps: {:.1}% (paper: <1%)\n\n{}",
        fps.mean().unwrap_or(0.0),
        fps.at(3.0) * 100.0,
        (1.0 - fps.at(15.0 - 1e-9)) * 100.0,
        (1.0 - fps.at(24.0 - 1e-9)) * 100.0,
        out.body
    );
    out
}

fn fig16(agg: &CampaignAggregates) -> FigureOutput {
    let counts = &agg.protocol_played;
    let udp = counts.fraction("UDP");
    let body = format!(
        "UDP: {:.1}% (paper: ~56%)   TCP: {:.1}% (paper: ~44%)\n\n{}",
        udp * 100.0,
        (1.0 - udp) * 100.0,
        bar_chart(
            &[
                ("UDP", counts.get("UDP") as f64),
                ("TCP", counts.get("TCP") as f64)
            ],
            48
        )
    );
    FigureOutput {
        id: "fig16",
        title: "Fraction of transport protocols observed",
        body,
    }
}

// ---------- Figures 20–25: jitter ----------

fn fig20(agg: &CampaignAggregates) -> FigureOutput {
    let jitter = &agg.jitter;
    let mut out = sketch_figure(
        "fig20",
        "CDF of overall jitter",
        vec![("all clips".to_string(), jitter.clone())],
        " ms",
        &[50.0, 300.0],
    );
    out.body = format!(
        "jitter <=50 ms: {:.0}% (paper: ~50%)   >=300 ms: {:.0}% (paper: ~15%)\n\n{}",
        jitter.at(50.0) * 100.0,
        (1.0 - jitter.at(300.0)) * 100.0,
        out.body
    );
    out
}

fn fig25(agg: &CampaignAggregates) -> FigureOutput {
    let names = ["< 10K", "10K - 100K", "> 100K"];
    let series = (0u8..3)
        .map(|b| {
            (
                names[usize::from(b)].to_string(),
                agg.jitter_by_bw_bucket.get(&b).cloned().unwrap_or_default(),
            )
        })
        .collect();
    sketch_figure(
        "fig25",
        "CDF of jitter for observed bandwidth",
        series,
        " ms",
        &[50.0, 300.0],
    )
}

// ---------- Figures 26–28: perceptual quality ----------

fn fig26(agg: &CampaignAggregates) -> FigureOutput {
    let ratings = &agg.ratings;
    let mut out = sketch_figure(
        "fig26",
        "CDF of overall quality",
        vec![("ratings".to_string(), ratings.clone())],
        "",
        &[2.0, 5.0, 8.0],
    );
    out.body = format!(
        "rated clips: {}   mean rating: {:.2} (paper: ~5, near-uniform CDF)\n\n{}",
        ratings.count(),
        ratings.mean().unwrap_or(0.0),
        out.body
    );
    out
}

fn fig28(agg: &CampaignAggregates) -> FigureOutput {
    let q = &agg.quality;
    let mut body = format!(
        "points: {}   pearson r: {}   slope: {} rating/kbps\n\
         low ratings (<=2) at high bandwidth (>250 kbps): {} of {}\n\
         (paper: weak correlation, slight upward trend, no low ratings at high bandwidth)\n\n",
        q.moments.n,
        q.moments
            .pearson()
            .map_or("-".to_string(), |v| format!("{v:.3}")),
        q.moments
            .slope()
            .map_or("-".to_string(), |s| format!("{s:+.4}")),
        q.high_bw_low_rating,
        q.high_bw,
    );
    // Scatter summary: mean rating per bandwidth bin.
    let mut rows = Vec::new();
    for ((lo, hi), (n, rating_sum)) in BANDWIDTH_BINS.iter().zip(&q.bins) {
        let mean = rating_sum
            .mean(*n)
            .map_or("-".to_string(), |m| format!("{m:.2}"));
        rows.push(vec![format!("{lo:.0}-{hi:.0}"), n.to_string(), mean]);
    }
    body.push_str(&table(&["bandwidth (kbps)", "n", "mean rating"], &rows));
    FigureOutput {
        id: "fig28",
        title: "Quality rating vs. network bandwidth",
        body,
    }
}

// ---------- Section IV aggregates ----------

fn aggregate(data: &StudyData) -> FigureOutput {
    let agg = &data.aggregates;
    let rows = vec![
        vec![
            "participants".into(),
            data.participants.to_string(),
            "63".into(),
        ],
        vec![
            "clip plays (sessions)".into(),
            agg.total_attempts.to_string(),
            "~2855".into(),
        ],
        vec![
            "clips watched & rated".into(),
            agg.rated.to_string(),
            "~388".into(),
        ],
        vec![
            "user countries".into(),
            agg.user_countries.by_name().len().to_string(),
            "12".into(),
        ],
        vec![
            "servers".into(),
            agg.attempts_by_server.by_name().len().to_string(),
            "11".into(),
        ],
        vec![
            "server countries".into(),
            agg.server_countries.by_name().len().to_string(),
            "8".into(),
        ],
        vec![
            "unavailable fraction".into(),
            format!("{:.3}", agg.unavailable as f64 / agg.total_attempts as f64),
            "~0.10".into(),
        ],
        vec![
            "played successfully".into(),
            agg.played.to_string(),
            "-".into(),
        ],
        vec![
            "firewall-excluded volunteers".into(),
            data.excluded_users.to_string(),
            "\"several\"".into(),
        ],
        vec![
            "blocked sessions recorded".into(),
            agg.blocked.to_string(),
            "0".into(),
        ],
    ];
    FigureOutput {
        id: "agg",
        title: "Section IV aggregates: paper vs. reproduction",
        body: table(&["quantity", "measured", "paper"], &rows),
    }
}

// ---------- gateway-tier figures ----------

/// The gateway-tier figures: quality vs replica count, replica load skew,
/// and failover recovery. These need a replica *sweep* — one campaign per
/// replica count — rather than a single run, so they are generated by
/// `repro gateway` and deliberately not part of [`FIGURE_IDS`]: `repro
/// all` output is unchanged by the gateway tier.
pub fn gateway_figures(sweep: &[(u8, StudyData)]) -> Vec<FigureOutput> {
    use rv_sim::Counter;
    use std::fmt::Write as _;

    let mut quality_rows = Vec::new();
    for (replicas, data) in sweep {
        let agg = &data.aggregates;
        let outcome = |label: &str| agg.failures.outcomes.get(label).copied().unwrap_or(0);
        quality_rows.push(vec![
            replicas.to_string(),
            agg.played.to_string(),
            agg.ratings.mean().map_or("-".into(), |m| format!("{m:.2}")),
            agg.fps.mean().map_or("-".into(), |m| format!("{m:.2}")),
            outcome("server-down").to_string(),
            outcome("rejected").to_string(),
            agg.counters.get(Counter::GatewayRedirects).to_string(),
            agg.counters.get(Counter::Failovers).to_string(),
        ]);
    }
    let quality = table(
        &[
            "replicas",
            "played",
            "mean rating",
            "mean fps",
            "server-down",
            "rejected",
            "redirects",
            "failovers",
        ],
        &quality_rows,
    );

    let mut skew = String::new();
    for (replicas, data) in sweep {
        let agg = &data.aggregates;
        let total: u64 = agg.replica_sessions.values().sum();
        let _ = writeln!(skew, "replicas={replicas} (played {total})");
        for k in 0..*replicas {
            let n = agg.replica_sessions.get(&k).copied().unwrap_or(0);
            let share = if total > 0 {
                100.0 * n as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(skew, "  replica {k}: {n:>6} sessions ({share:>5.1} %)");
        }
    }

    let mut recovery = String::new();
    for (replicas, data) in sweep {
        let s = &data.aggregates.failover_recovery;
        if s.is_empty() {
            let _ = writeln!(
                recovery,
                "replicas={replicas}: no recovered crash failovers"
            );
        } else {
            let _ = writeln!(
                recovery,
                "replicas={replicas}: n={} mean={:.0} ms p50={:.0} ms p95={:.0} ms max={:.0} ms",
                s.count(),
                s.mean().unwrap_or(0.0),
                s.quantile(0.5).unwrap_or(0.0),
                s.quantile(0.95).unwrap_or(0.0),
                s.max().unwrap_or(0.0),
            );
        }
    }

    vec![
        FigureOutput {
            id: "gw1",
            title: "Quality and failure mix vs. replica count (faulted)",
            body: quality,
        },
        FigureOutput {
            id: "gw2",
            title: "Replica load skew: played sessions per replica",
            body: skew,
        },
        FigureOutput {
            id: "gw3",
            title: "Failover recovery time: crash redirect to first media",
            body: recovery,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_study::{run_campaign, StudyParams};

    fn data() -> StudyData {
        // The streaming path: figures never need retained records.
        run_campaign(StudyParams {
            scale: 0.03,
            ..StudyParams::default()
        })
        .unwrap()
    }

    #[test]
    fn every_figure_generates() {
        let d = data();
        assert!(d.records.is_none(), "figures must not need records");
        for id in FIGURE_IDS {
            let f = figure(id, &d).expect("known id");
            assert!(!f.body.is_empty(), "{id} empty");
            assert_eq!(f.id, id);
        }
        assert!(figure("fig2", &d).is_none());
    }

    #[test]
    fn fig11_headline_mentions_key_stats() {
        let d = data();
        let f = figure("fig11", &d).unwrap();
        assert!(f.body.contains("mean"));
        assert!(f.body.contains("fps"));
    }

    #[test]
    fn fig16_shares_sum_to_hundred() {
        let d = data();
        let f = figure("fig16", &d).unwrap();
        assert!(f.body.contains("UDP"));
        assert!(f.body.contains("TCP"));
    }

    #[test]
    fn all_figures_yields_26() {
        let d = data();
        assert_eq!(all_figures(&d).len(), 26);
    }
}
