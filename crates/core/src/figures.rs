//! Regenerates every figure of the paper from campaign data.
//!
//! One generator per figure (1, 5–28) plus the Section IV aggregate table.
//! Each returns a [`FigureOutput`]: a text rendering (CDF plot + data
//! series, bar chart, or scatter summary) and the headline statistics the
//! paper reports for that figure, so EXPERIMENTS.md can compare
//! paper-vs-measured directly.

use rv_media::{Clip, ContentKind};
use rv_rtsp::TransportKind;
use rv_sim::{SimDuration, SimTime};
use rv_stats::{bar_chart, cdf_plot, linear_fit, pearson, table, CategoryCount, Cdf};
use rv_study::{
    build_population, server_roster, ConnectionClass, PcClass, ServerRegion, SessionRecord,
    StudyData, UserRegion,
};
use rv_tracer::SessionOutcome;

/// A regenerated figure: identifier, caption, and text body.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Stable id, e.g. `fig11`.
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub title: &'static str,
    /// Printable body: headline stats, plot, and data series.
    pub body: String,
}

/// All figure ids, in paper order.
pub const FIGURE_IDS: [&str; 26] = [
    "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
    "fig25", "fig26", "fig27", "fig28", "agg",
];

/// Generates one figure by id. `None` for an unknown id.
pub fn figure(id: &str, data: &StudyData) -> Option<FigureOutput> {
    Some(match id {
        "fig1" => fig1(),
        "fig5" => fig5(data),
        "fig6" => fig6(data),
        "fig7" => fig7(data),
        "fig8" => fig8(data),
        "fig9" => fig9(data),
        "fig10" => fig10(data),
        "fig11" => fig11(data),
        "fig12" => fig12(data),
        "fig13" => fig13(data),
        "fig14" => fig14(data),
        "fig15" => fig15(data),
        "fig16" => fig16(data),
        "fig17" => fig17(data),
        "fig18" => fig18(data),
        "fig19" => fig19(data),
        "fig20" => fig20(data),
        "fig21" => fig21(data),
        "fig22" => fig22(data),
        "fig23" => fig23(data),
        "fig24" => fig24(data),
        "fig25" => fig25(data),
        "fig26" => fig26(data),
        "fig27" => fig27(data),
        "fig28" => fig28(data),
        "agg" => aggregate(data),
        _ => return None,
    })
}

/// Generates every figure.
pub fn all_figures(data: &StudyData) -> Vec<FigureOutput> {
    FIGURE_IDS
        .iter()
        .map(|id| figure(id, data).expect("known id"))
        .collect()
}

// ---------- sample extraction helpers ----------

fn fps_samples<'a>(recs: impl Iterator<Item = &'a SessionRecord>) -> Vec<f64> {
    recs.map(|r| r.metrics.frame_rate).collect()
}

fn jitter_samples<'a>(recs: impl Iterator<Item = &'a SessionRecord>) -> Vec<f64> {
    recs.filter_map(|r| r.metrics.jitter_ms).collect()
}

/// Renders a multi-series CDF figure: plot + per-series headline stats.
fn cdf_figure(
    id: &'static str,
    title: &'static str,
    series: Vec<(String, Vec<f64>)>,
    unit: &str,
    thresholds: &[f64],
) -> FigureOutput {
    let mut body = String::new();
    let mut plots: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let lo = 0.0;
    let hi = series
        .iter()
        .flat_map(|(_, s)| s.iter())
        .copied()
        .fold(1.0f64, f64::max);
    let mut stats_rows: Vec<Vec<String>> = Vec::new();
    for (name, samples) in &series {
        let Some(cdf) = Cdf::from_samples(samples) else {
            let mut row = vec![name.clone(), "0".into(), "-".into(), "-".into()];
            row.extend(thresholds.iter().map(|_| "-".to_string()));
            stats_rows.push(row);
            continue;
        };
        let mut row = vec![
            name.clone(),
            cdf.count().to_string(),
            format!("{:.2}", cdf.mean()),
            format!("{:.2}", cdf.quantile(0.5)),
        ];
        for t in thresholds {
            row.push(format!("{:.1}%", cdf.at(*t) * 100.0));
        }
        stats_rows.push(row);
        plots.push((name.clone(), cdf.series_on_grid(lo, hi, 56)));
    }
    let mut header = vec!["series", "n", "mean", "median"];
    let thr_labels: Vec<String> = thresholds.iter().map(|t| format!("F({t}{unit})")).collect();
    header.extend(thr_labels.iter().map(String::as_str));
    body.push_str(&table(&header, &stats_rows));
    body.push('\n');
    let plot_refs: Vec<(&str, &[(f64, f64)])> = plots
        .iter()
        .map(|(n, p)| (n.as_str(), p.as_slice()))
        .collect();
    if !plot_refs.is_empty() {
        body.push_str(&cdf_plot(&plot_refs, 64, 16));
    }
    FigureOutput { id, title, body }
}

fn split_by<K: Ord + Clone, F: Fn(&SessionRecord) -> K, V: Fn(&SessionRecord) -> Option<f64>>(
    data: &StudyData,
    key: F,
    value: V,
) -> std::collections::BTreeMap<K, Vec<f64>> {
    let mut out: std::collections::BTreeMap<K, Vec<f64>> = Default::default();
    for r in data.played() {
        if let Some(v) = value(r) {
            out.entry(key(r)).or_default().push(v);
        }
    }
    out
}

// ---------- Figure 1: buffering & playout timeline ----------

fn fig1() -> FigureOutput {
    // A single broadband session, sampled once a second: coded vs. current
    // bandwidth and frame rate, showing the prebuffer burst and smooth
    // playout (the paper's Figure 1).
    let mut rng = rv_sim::SimRng::seed_from_u64(0xF161);
    let pop = build_population(&mut rng, 1.0);
    let user = pop
        .participants
        .iter()
        .find(|u| {
            u.connection == ConnectionClass::DslCable
                && u.firewall == rv_rtsp::FirewallPolicy::Open
                && u.pc.cpu_power() > 0.9
        })
        .expect("population has healthy DSL users");
    let roster = server_roster();
    let site = roster.iter().find(|s| s.name == "US/CNN").expect("CNN");
    let clip = Clip::new(
        "fig1-clip.rm",
        SimDuration::from_secs(300),
        ContentKind::News,
    );
    let mut world = rv_study::build_session_world(
        user,
        site,
        &clip,
        SimDuration::from_secs(70),
        0xF161_0001,
        &rv_sim::FaultPlan::none(),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut prev_bytes = 0u64;
    let mut prev_frames = 0usize;
    for sec in 1..=70u64 {
        world.run(SimTime::from_secs(sec));
        let stats = world.client.events();
        let played: Vec<_> = stats.iter().filter(|e| e.played_at.is_some()).collect();
        let frames_now = played.len();
        // Server-sent bytes proxy for delivered bytes (loss-free broadband
        // path); used consistently so per-second deltas never go negative.
        let bytes = world.server.stats().bytes_sent;
        let bw_kbps = (bytes.saturating_sub(prev_bytes)) as f64 * 8.0 / 1e3;
        let fps = (frames_now - prev_frames) as f64;
        // Coded values of the rung currently being streamed.
        let (coded_bw, coded_fps) = world
            .server
            .debug_stream()
            .map(|(rung, _, _, _)| {
                let enc = &clip.ladder.rungs()[rung];
                (enc.total_bps / 1000, enc.frame_rate)
            })
            .unwrap_or((0, 0.0));
        rows.push(vec![
            sec.to_string(),
            coded_bw.to_string(),
            format!("{bw_kbps:.0}"),
            format!("{coded_fps:.1}"),
            format!("{fps:.0}"),
        ]);
        prev_bytes = bytes;
        prev_frames = frames_now;
        if world.client.is_done() {
            break;
        }
    }
    let playback_start = world
        .client
        .metrics()
        .and_then(|m| m.startup_delay)
        .map(|d| format!("{:.1}", d.as_secs_f64()))
        .unwrap_or_else(|| "?".into());
    let mut body = format!(
        "Buffering and playout of one DSL RealVideo session.\n\
         Playout begins after {playback_start} s of buffering (paper: ~13 s).\n\n"
    );
    body.push_str(&table(
        &[
            "t(s)",
            "coded bw (kbps)",
            "current bw (kbps)",
            "coded fps",
            "current fps",
        ],
        &rows,
    ));
    FigureOutput {
        id: "fig1",
        title: "Buffering and playout of a RealVideo clip",
        body,
    }
}

// ---------- Figures 5–9: campaign composition ----------

fn fig5(data: &StudyData) -> FigureOutput {
    let mut per_user = CategoryCount::new();
    for r in &data.records {
        per_user.add(&format!("u{}", r.user_id));
    }
    let counts: Vec<f64> = per_user.by_name().iter().map(|(_, c)| *c as f64).collect();
    let cdf = Cdf::from_samples(&counts).expect("users exist");
    let mut body = format!(
        "Users: {}   median clips/user: {:.0}   max: {:.0} (playlist holds 98)\n\n",
        cdf.count(),
        cdf.quantile(0.5),
        cdf.max()
    );
    let series = cdf.series_on_grid(0.0, 100.0, 51);
    body.push_str(&cdf_plot(&[("clips/user", &series)], 64, 16));
    FigureOutput {
        id: "fig5",
        title: "CDF of video clips played per user",
        body,
    }
}

fn fig6(data: &StudyData) -> FigureOutput {
    let mut rated: std::collections::BTreeMap<u32, u32> = Default::default();
    for r in &data.records {
        *rated.entry(r.user_id).or_insert(0) += u32::from(r.rating.is_some());
    }
    let counts: Vec<f64> = rated.values().map(|c| f64::from(*c)).collect();
    let cdf = Cdf::from_samples(&counts).expect("users exist");
    let mut body = format!(
        "Users: {}   median rated clips/user: {:.0}   max: {:.0}\n\n",
        cdf.count(),
        cdf.quantile(0.5),
        cdf.max()
    );
    let series = cdf.series_on_grid(0.0, 35.0, 36);
    body.push_str(&cdf_plot(&[("rated/user", &series)], 64, 16));
    FigureOutput {
        id: "fig6",
        title: "CDF of video clips rated per user",
        body,
    }
}

fn bar_figure(id: &'static str, title: &'static str, counts: &CategoryCount) -> FigureOutput {
    let items: Vec<(&str, f64)> = counts
        .by_count_ascending()
        .into_iter()
        .map(|(k, v)| (k, v as f64))
        .collect();
    FigureOutput {
        id,
        title,
        body: bar_chart(&items, 48),
    }
}

fn fig7(data: &StudyData) -> FigureOutput {
    let mut counts = CategoryCount::new();
    for r in &data.records {
        counts.add(r.user_country.name());
    }
    bar_figure(
        "fig7",
        "Video clips played by users from each country",
        &counts,
    )
}

fn fig8(data: &StudyData) -> FigureOutput {
    let mut counts = CategoryCount::new();
    for r in &data.records {
        counts.add(r.server_country.name());
    }
    bar_figure(
        "fig8",
        "Video clips served by RealServers from each country",
        &counts,
    )
}

fn fig9(data: &StudyData) -> FigureOutput {
    let mut counts = CategoryCount::new();
    for r in data.records.iter().filter(|r| r.user_state.is_some()) {
        counts.add(r.user_state.expect("filtered"));
    }
    bar_figure(
        "fig9",
        "Video clips played by U.S. users from each state",
        &counts,
    )
}

fn fig10(data: &StudyData) -> FigureOutput {
    let mut attempted = CategoryCount::new();
    let mut unavailable = CategoryCount::new();
    for r in &data.records {
        attempted.add(r.server_name);
        if !r.available {
            unavailable.add(r.server_name);
        }
    }
    let mut items: Vec<(&str, f64)> = attempted
        .by_name()
        .into_iter()
        .map(|(name, total)| (name, unavailable.get(name) as f64 / total as f64))
        .collect();
    items.sort_by(|a, b| a.0.cmp(b.0));
    let overall = unavailable.total() as f64 / attempted.total() as f64;
    let mut body = format!("Overall unavailable fraction: {overall:.3} (paper: ~0.10)\n\n");
    body.push_str(&bar_chart(&items, 48));
    FigureOutput {
        id: "fig10",
        title: "Fraction of unavailable clips per server",
        body,
    }
}

// ---------- Figures 11–19: frame rate & bandwidth ----------

fn fig11(data: &StudyData) -> FigureOutput {
    let fps = fps_samples(data.played());
    let cdf = Cdf::from_samples(&fps).expect("played sessions exist");
    let mut out = cdf_figure(
        "fig11",
        "CDF of frame rate for all video clips",
        vec![("all clips".to_string(), fps)],
        " fps",
        &[3.0, 15.0, 24.0],
    );
    out.body = format!(
        "mean {:.1} fps (paper: 10)   <3 fps: {:.0}% (paper: ~25%)   \
         >=15 fps: {:.0}% (paper: ~25%)   >=24 fps: {:.1}% (paper: <1%)\n\n{}",
        cdf.mean(),
        cdf.at(3.0) * 100.0,
        (1.0 - cdf.at(15.0 - 1e-9)) * 100.0,
        (1.0 - cdf.at(24.0 - 1e-9)) * 100.0,
        out.body
    );
    out
}

fn fig12(data: &StudyData) -> FigureOutput {
    let by = split_by(data, |r| r.connection, |r| Some(r.metrics.frame_rate));
    let series = ConnectionClass::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig12",
        "CDF of frame rate for different end-host network configurations",
        series,
        " fps",
        &[3.0, 15.0],
    )
}

fn fig13(data: &StudyData) -> FigureOutput {
    let by = split_by(data, |r| r.connection, |r| Some(r.metrics.bandwidth_kbps));
    let series = ConnectionClass::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig13",
        "CDF of bandwidth for different end-host network configurations",
        series,
        " kbps",
        &[50.0, 250.0],
    )
}

fn fig14(data: &StudyData) -> FigureOutput {
    let by = split_by(data, |r| r.server_region, |r| Some(r.metrics.frame_rate));
    let series = ServerRegion::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig14",
        "CDF of frame rate for RealServers in different geographic regions",
        series,
        " fps",
        &[3.0, 15.0],
    )
}

fn fig15(data: &StudyData) -> FigureOutput {
    let by = split_by(data, |r| r.user_region, |r| Some(r.metrics.frame_rate));
    let series = UserRegion::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig15",
        "CDF of frame rate for users in different geographic regions",
        series,
        " fps",
        &[3.0, 15.0],
    )
}

fn fig16(data: &StudyData) -> FigureOutput {
    let mut counts = CategoryCount::new();
    for r in data.played() {
        counts.add(match r.metrics.protocol {
            TransportKind::Udp => "UDP",
            TransportKind::Tcp => "TCP",
        });
    }
    let udp = counts.fraction("UDP");
    let body = format!(
        "UDP: {:.1}% (paper: ~56%)   TCP: {:.1}% (paper: ~44%)\n\n{}",
        udp * 100.0,
        (1.0 - udp) * 100.0,
        bar_chart(
            &[
                ("UDP", counts.get("UDP") as f64),
                ("TCP", counts.get("TCP") as f64)
            ],
            48
        )
    );
    FigureOutput {
        id: "fig16",
        title: "Fraction of transport protocols observed",
        body,
    }
}

fn by_protocol(
    data: &StudyData,
    value: impl Fn(&SessionRecord) -> Option<f64>,
) -> Vec<(String, Vec<f64>)> {
    let by = split_by(data, |r| r.metrics.protocol == TransportKind::Udp, value);
    vec![
        (
            "TCP".to_string(),
            by.get(&false).cloned().unwrap_or_default(),
        ),
        (
            "UDP".to_string(),
            by.get(&true).cloned().unwrap_or_default(),
        ),
    ]
}

fn fig17(data: &StudyData) -> FigureOutput {
    cdf_figure(
        "fig17",
        "CDF of frame rate for transport protocols",
        by_protocol(data, |r| Some(r.metrics.frame_rate)),
        " fps",
        &[3.0, 15.0],
    )
}

fn fig18(data: &StudyData) -> FigureOutput {
    cdf_figure(
        "fig18",
        "CDF of bandwidth for transport protocols",
        by_protocol(data, |r| Some(r.metrics.bandwidth_kbps)),
        " kbps",
        &[50.0, 250.0],
    )
}

fn fig19(data: &StudyData) -> FigureOutput {
    let by = split_by(data, |r| r.pc, |r| Some(r.metrics.frame_rate));
    let series = PcClass::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig19",
        "CDF of frame rate for classes of user PCs",
        series,
        " fps",
        &[3.0, 15.0],
    )
}

// ---------- Figures 20–25: jitter ----------

fn fig20(data: &StudyData) -> FigureOutput {
    let jitter = jitter_samples(data.played());
    let cdf = Cdf::from_samples(&jitter).expect("played sessions exist");
    let mut out = cdf_figure(
        "fig20",
        "CDF of overall jitter",
        vec![("all clips".to_string(), jitter)],
        " ms",
        &[50.0, 300.0],
    );
    out.body = format!(
        "jitter <=50 ms: {:.0}% (paper: ~50%)   >=300 ms: {:.0}% (paper: ~15%)\n\n{}",
        cdf.at(50.0) * 100.0,
        (1.0 - cdf.at(300.0)) * 100.0,
        out.body
    );
    out
}

fn fig21(data: &StudyData) -> FigureOutput {
    let by = split_by(data, |r| r.connection, |r| r.metrics.jitter_ms);
    let series = ConnectionClass::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig21",
        "CDF of jitter for different network configurations",
        series,
        " ms",
        &[50.0, 300.0],
    )
}

fn fig22(data: &StudyData) -> FigureOutput {
    let by = split_by(data, |r| r.server_region, |r| r.metrics.jitter_ms);
    let series = ServerRegion::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig22",
        "CDF of jitter for RealServers in different geographic regions",
        series,
        " ms",
        &[50.0, 300.0],
    )
}

fn fig23(data: &StudyData) -> FigureOutput {
    let by = split_by(data, |r| r.user_region, |r| r.metrics.jitter_ms);
    let series = UserRegion::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig23",
        "CDF of jitter for users in different geographic regions",
        series,
        " ms",
        &[50.0, 300.0],
    )
}

fn fig24(data: &StudyData) -> FigureOutput {
    cdf_figure(
        "fig24",
        "CDF of jitter for transport protocols",
        by_protocol(data, |r| r.metrics.jitter_ms),
        " ms",
        &[50.0, 300.0],
    )
}

fn fig25(data: &StudyData) -> FigureOutput {
    let bucket = |r: &SessionRecord| -> u8 {
        if r.metrics.bandwidth_kbps < 10.0 {
            0
        } else if r.metrics.bandwidth_kbps <= 100.0 {
            1
        } else {
            2
        }
    };
    let by = split_by(data, bucket, |r| r.metrics.jitter_ms);
    let names = ["< 10K", "10K - 100K", "> 100K"];
    let series = (0u8..3)
        .map(|b| {
            (
                names[usize::from(b)].to_string(),
                by.get(&b).cloned().unwrap_or_default(),
            )
        })
        .collect();
    cdf_figure(
        "fig25",
        "CDF of jitter for observed bandwidth",
        series,
        " ms",
        &[50.0, 300.0],
    )
}

// ---------- Figures 26–28: perceptual quality ----------

fn fig26(data: &StudyData) -> FigureOutput {
    let ratings: Vec<f64> = data.rated().map(|r| f64::from(r.rating.unwrap())).collect();
    let cdf = Cdf::from_samples(&ratings).expect("rated sessions exist");
    let mut out = cdf_figure(
        "fig26",
        "CDF of overall quality",
        vec![("ratings".to_string(), ratings)],
        "",
        &[2.0, 5.0, 8.0],
    );
    out.body = format!(
        "rated clips: {}   mean rating: {:.2} (paper: ~5, near-uniform CDF)\n\n{}",
        cdf.count(),
        cdf.mean(),
        out.body
    );
    out
}

fn fig27(data: &StudyData) -> FigureOutput {
    let mut by: std::collections::BTreeMap<ConnectionClass, Vec<f64>> = Default::default();
    for r in data.rated() {
        by.entry(r.connection)
            .or_default()
            .push(f64::from(r.rating.expect("rated")));
    }
    let series = ConnectionClass::ALL
        .iter()
        .map(|c| (c.name().to_string(), by.get(c).cloned().unwrap_or_default()))
        .collect();
    cdf_figure(
        "fig27",
        "CDF of quality for different end-host network configurations",
        series,
        "",
        &[3.0, 7.0],
    )
}

fn fig28(data: &StudyData) -> FigureOutput {
    let pairs: Vec<(f64, f64)> = data
        .rated()
        .map(|r| {
            (
                r.metrics.bandwidth_kbps,
                f64::from(r.rating.expect("rated")),
            )
        })
        .collect();
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let r = pearson(&xs, &ys);
    let fit = linear_fit(&xs, &ys);
    // Low ratings at high bandwidth — the paper highlights their absence.
    let high_bw_low_rating = pairs
        .iter()
        .filter(|(bw, rating)| *bw > 250.0 && *rating <= 2.0)
        .count();
    let high_bw = pairs.iter().filter(|(bw, _)| *bw > 250.0).count();
    let mut body = format!(
        "points: {}   pearson r: {}   slope: {} rating/kbps\n\
         low ratings (<=2) at high bandwidth (>250 kbps): {high_bw_low_rating} of {high_bw}\n\
         (paper: weak correlation, slight upward trend, no low ratings at high bandwidth)\n\n",
        pairs.len(),
        r.map_or("-".to_string(), |v| format!("{v:.3}")),
        fit.map_or("-".to_string(), |f| format!("{:+.4}", f.slope)),
    );
    // Scatter summary: mean rating per bandwidth bin.
    let mut rows = Vec::new();
    for (lo, hi) in [
        (0.0, 50.0),
        (50.0, 100.0),
        (100.0, 200.0),
        (200.0, 350.0),
        (350.0, 600.0),
    ] {
        let bin: Vec<f64> = pairs
            .iter()
            .filter(|(bw, _)| *bw >= lo && *bw < hi)
            .map(|(_, r)| *r)
            .collect();
        let mean = if bin.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}", bin.iter().sum::<f64>() / bin.len() as f64)
        };
        rows.push(vec![
            format!("{lo:.0}-{hi:.0}"),
            bin.len().to_string(),
            mean,
        ]);
    }
    body.push_str(&table(&["bandwidth (kbps)", "n", "mean rating"], &rows));
    FigureOutput {
        id: "fig28",
        title: "Quality rating vs. network bandwidth",
        body,
    }
}

// ---------- Section IV aggregates ----------

fn aggregate(data: &StudyData) -> FigureOutput {
    let total = data.records.len();
    let played = data.played().count();
    let rated = data.rated().count();
    let unavailable = data.records.iter().filter(|r| !r.available).count();
    let countries: std::collections::BTreeSet<&str> =
        data.records.iter().map(|r| r.user_country.name()).collect();
    let server_countries: std::collections::BTreeSet<&str> = data
        .records
        .iter()
        .map(|r| r.server_country.name())
        .collect();
    let servers: std::collections::BTreeSet<&str> =
        data.records.iter().map(|r| r.server_name).collect();
    let blocked: usize = data
        .records
        .iter()
        .filter(|r| r.metrics.outcome == SessionOutcome::Blocked)
        .count();
    let rows = vec![
        vec![
            "participants".into(),
            data.participants.to_string(),
            "63".into(),
        ],
        vec![
            "clip plays (sessions)".into(),
            total.to_string(),
            "~2855".into(),
        ],
        vec![
            "clips watched & rated".into(),
            rated.to_string(),
            "~388".into(),
        ],
        vec![
            "user countries".into(),
            countries.len().to_string(),
            "12".into(),
        ],
        vec!["servers".into(), servers.len().to_string(), "11".into()],
        vec![
            "server countries".into(),
            server_countries.len().to_string(),
            "8".into(),
        ],
        vec![
            "unavailable fraction".into(),
            format!("{:.3}", unavailable as f64 / total as f64),
            "~0.10".into(),
        ],
        vec!["played successfully".into(), played.to_string(), "-".into()],
        vec![
            "firewall-excluded volunteers".into(),
            data.excluded_users.to_string(),
            "\"several\"".into(),
        ],
        vec![
            "blocked sessions recorded".into(),
            blocked.to_string(),
            "0".into(),
        ],
    ];
    FigureOutput {
        id: "agg",
        title: "Section IV aggregates: paper vs. reproduction",
        body: table(&["quantity", "measured", "paper"], &rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_study::{run_campaign, StudyParams};

    fn data() -> StudyData {
        run_campaign(StudyParams {
            scale: 0.03,
            ..StudyParams::default()
        })
        .unwrap()
    }

    #[test]
    fn every_figure_generates() {
        let d = data();
        for id in FIGURE_IDS {
            let f = figure(id, &d).expect("known id");
            assert!(!f.body.is_empty(), "{id} empty");
            assert_eq!(f.id, id);
        }
        assert!(figure("fig2", &d).is_none());
    }

    #[test]
    fn fig11_headline_mentions_key_stats() {
        let d = data();
        let f = figure("fig11", &d).unwrap();
        assert!(f.body.contains("mean"));
        assert!(f.body.contains("fps"));
    }

    #[test]
    fn fig16_shares_sum_to_hundred() {
        let d = data();
        let f = figure("fig16", &d).unwrap();
        assert!(f.body.contains("UDP"));
        assert!(f.body.contains("TCP"));
    }

    #[test]
    fn all_figures_yields_26() {
        let d = data();
        assert_eq!(all_figures(&d).len(), 26);
    }
}
