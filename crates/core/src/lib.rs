//! # realvideo-core — public facade of the RealVideo reproduction
//!
//! Re-exports every layer of the system and provides [`figures`]: one
//! generator per figure of *An Empirical Study of RealVideo Performance
//! Across the Internet* (Wang, Claypool, Zuo — 2001). The `repro` binary
//! prints them:
//!
//! ```text
//! cargo run --release -p realvideo-core --bin repro -- all
//! cargo run --release -p realvideo-core --bin repro -- fig11 --scale 0.2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod figures;

pub use figures::{all_figures, figure, gateway_figures, FigureOutput, FIGURE_IDS};

/// Clips, SureStream, packetization.
pub use rv_media as media;
/// The packet-level network.
pub use rv_net as net;
/// The buffered player.
pub use rv_player as player;
/// The RTSP control plane.
pub use rv_rtsp as rtsp;
/// The streaming server.
pub use rv_server as server;
/// The simulation kernel.
pub use rv_sim as sim;
/// CDFs, histograms, rendering.
pub use rv_stats as stats;
/// The world model and campaign.
pub use rv_study as study;
/// The instrumented client and metrics.
pub use rv_tracer as tracer;
/// TCP and UDP transports.
pub use rv_transport as transport;
