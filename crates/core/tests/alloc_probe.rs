//! Per-session allocation accounting, compiled only with the
//! `alloc-stats` counting allocator.
//!
//! Two jobs: a build-vs-run breakdown printed for profiling (run with
//! `--nocapture`), and a hard per-session allocation budget so the
//! timing-wheel/arena work cannot silently regress. Run with:
//!
//! ```text
//! cargo test -p realvideo-core --features alloc-stats --release \
//!     --test alloc_probe -- --nocapture
//! ```
#![cfg(feature = "alloc-stats")]

use rv_sim::alloc_stats;
use rv_study::{build_session_world_with, plan_campaign, run_job_with, StudyParams};
use rv_tracer::WorldScratch;

#[global_allocator]
static ALLOC: alloc_stats::CountingAlloc = alloc_stats::CountingAlloc;

fn allocs() -> u64 {
    alloc_stats::snapshot().0
}

/// The counting allocator is process-global, so probes that difference
/// its snapshots must not overlap with each other.
static PROBE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn alloc_breakdown_per_session() {
    let _serial = PROBE_LOCK.lock().unwrap();
    let params = StudyParams {
        scale: 0.02,
        ..StudyParams::default()
    };
    let plan = plan_campaign(params);
    let jobs: Vec<_> = plan
        .collect_jobs()
        .into_iter()
        .filter(|j| j.available)
        .collect();
    assert!(!jobs.is_empty(), "scale too small: no available jobs");

    // One scratch threaded through every session, exactly as each
    // executor worker does it: steady state is "warm scratch", not
    // "fresh world every time".
    let mut scratch = WorldScratch::default();

    // Warm-up: first session pays one-time lazy init (statics, tables)
    // and populates the scratch.
    run_job_with(&plan, &jobs[0], &mut scratch);

    let (mut build, mut run, mut record, mut total) = (0u64, 0u64, 0u64, 0u64);
    let mut by_transport = std::collections::BTreeMap::new();
    let hist_before = alloc_stats::size_histogram();
    for job in &jobs {
        let user = &plan.population.participants[job.user];
        let site = &plan.roster[job.server];
        let entry = &plan.playlist[job.playlist_slot];
        let before = allocs();
        let mut world = build_session_world_with(
            user,
            site,
            &entry.clip,
            plan.params.watch_limit,
            job.session_seed,
            &job.fault_plan,
            &mut scratch,
        );
        let built = allocs();
        let metrics = world.run(plan.params.session_deadline);
        let ran = allocs();
        let slot = by_transport
            .entry(format!("{:?}", metrics.protocol))
            .or_insert((0u64, 0u64));
        slot.0 += ran - before;
        slot.1 += 1;
        world.retire(&mut scratch);
        run_job_with(&plan, job, &mut scratch);
        let after = allocs();
        build += built - before;
        run += ran - built;
        record += after - ran;
        total += after - before;
    }
    let hist_after = alloc_stats::size_histogram();
    let n = jobs.len() as f64;
    let per_session = (build + run) as f64 / n;
    println!("sessions: {}", jobs.len());
    println!("size-class histogram (allocs/session, bucket = size <= 2^i):");
    for (i, (after, before)) in hist_after.iter().zip(hist_before.iter()).enumerate() {
        let delta = (after - before) as f64 / n;
        if delta >= 0.5 {
            println!("  <= {:>8} B: {:>8.1}", 1u64 << i, delta);
        }
    }
    println!(
        "  build_session_world: {:.1} allocs/session",
        build as f64 / n
    );
    println!(
        "  world.run:           {:.1} allocs/session",
        run as f64 / n
    );
    println!(
        "  full run_job redo:   {:.1} allocs/session",
        record as f64 / n
    );
    println!(
        "  grand total:         {:.1} allocs/session",
        total as f64 / n
    );
    println!("allocs/session (steady state): {per_session:.1}");
    for (transport, (count, n)) in &by_transport {
        println!(
            "  {transport}: {:.1} allocs/session over {n} sessions",
            *count as f64 / *n as f64
        );
    }

    // Backtrace-sampled attribution: rerun a few sessions with every
    // 97th allocation recording its backtrace, then aggregate by the
    // first in-workspace frame. The profiler of last resort for "what is
    // still allocating" — printed, not asserted.
    alloc_stats::start_sampling(97);
    for job in jobs.iter().take(8) {
        run_job_with(&plan, job, &mut scratch);
    }
    alloc_stats::start_sampling(0);
    let samples = alloc_stats::take_samples();
    let mut by_site: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (_, bt) in &samples {
        let site = bt
            .lines()
            .map(str::trim)
            .filter(|l| l.contains("rv_") || l.contains("realvideo"))
            .find(|l| !l.contains("alloc_stats") && !l.contains("CountingAlloc"))
            .unwrap_or("<no workspace frame>")
            .to_string();
        *by_site.entry(site).or_insert(0) += 1;
    }
    let mut ranked: Vec<_> = by_site.into_iter().collect();
    ranked.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("sampled allocation sites ({} samples):", samples.len());
    for (site, n) in ranked.iter().take(20) {
        println!("  {n:>5}  {site}");
    }

    // Measured steady state is ~731 allocs/session (scratch arena +
    // schedule/topology caches); the budget sits close enough above it
    // that any allocation creep on the session hot path trips this
    // probe rather than hiding under an old slack bound.
    assert!(
        per_session < 800.0,
        "allocation budget blown: {per_session:.1} allocs/session (budget 800)"
    );
}

#[test]
fn disarmed_flight_recorder_allocates_nothing() {
    let _serial = PROBE_LOCK.lock().unwrap();
    // The observability contract's zero-overhead clause, measured: with
    // the recorder disarmed, a session allocates *exactly* what it
    // allocated before the recorder existed — the emit sites are one
    // thread-local load and a branch, never a closure evaluation. The
    // probe replays the same job warm (identical allocation profile run
    // to run), arms the recorder once in between to prove arming is
    // observable, and checks the disarmed counts bracket it unchanged.
    let params = StudyParams {
        scale: 0.02,
        faults: rv_sim::FaultScenario::default_on(),
        ..StudyParams::default()
    };
    let plan = plan_campaign(params);
    let jobs: Vec<_> = plan
        .collect_jobs()
        .into_iter()
        .filter(|j| j.available)
        .collect();
    let job = jobs
        .iter()
        .find(|j| !j.fault_plan.is_empty())
        .unwrap_or(&jobs[0]);

    let mut scratch = WorldScratch::default();

    let measure = |scratch: &mut WorldScratch| {
        let before = allocs();
        run_job_with(&plan, job, scratch);
        allocs() - before
    };

    // Warm until the replay is allocation-stable: the early runs pay
    // lazy init and scratch pool growth (the count drifts down for ~20
    // runs as the pools fill, with a ±1 wobble near the end), then it
    // fixes. Demand several consecutive identical measures so a
    // mid-drift plateau cannot fake stability.
    let stable = |scratch: &mut WorldScratch| -> Option<u64> {
        let mut value = measure(scratch);
        let mut streak = 0;
        for _ in 0..64 {
            let next = measure(scratch);
            if next == value {
                streak += 1;
                if streak >= 5 {
                    return Some(value);
                }
            } else {
                streak = 0;
                value = next;
            }
        }
        None
    };
    let disarmed_a = stable(&mut scratch).expect(
        "warm replay never became allocation-stable; the zero-overhead probe is meaningless",
    );

    // Armed, the same session records thousands of events — the recorder
    // itself plainly allocates (so equality below is not vacuous).
    rv_sim::trace::start();
    let armed = measure(&mut scratch);
    let records = rv_sim::trace::finish();
    assert!(!records.is_empty(), "armed recorder captured nothing");
    assert!(
        armed > disarmed_a,
        "armed run ({armed}) did not allocate more than disarmed ({disarmed_a})"
    );

    let disarmed_after =
        stable(&mut scratch).expect("disarmed replay did not restabilize after an armed run");
    assert_eq!(
        disarmed_a, disarmed_after,
        "tracing-off path allocation count changed after an armed run"
    );
}
