//! Media packetization: application data units and their binary codec.
//!
//! Frames are fragmented into packets that fit a datagram; each packet
//! carries a 32-byte binary header plus (simulated) payload bytes. The
//! codec is exercised for real on both transports — UDP datagrams carry one
//! encoded packet each, TCP carries the same encoding back-to-back in the
//! byte stream — so the player's depacketizer must handle fragmentation,
//! reordering, and loss.
//!
//! Parity packets implement the paper's "special packets that correct
//! errors": one XOR-parity packet per group of data packets lets the
//! receiver reconstruct any single loss within the group.

use crate::frames::Frame;

/// Fixed header size of every media packet.
pub const MEDIA_HEADER_BYTES: usize = 32;
/// Maximum payload bytes per packet (fits a 1500-byte MTU with headers).
pub const MAX_PAYLOAD: usize = 1400;

const MAGIC: u16 = 0x5256; // "RV"
const VERSION: u8 = 1;

const FLAG_KEY: u8 = 0b0000_0001;
const FLAG_AUDIO: u8 = 0b0000_0010;
const FLAG_PARITY: u8 = 0b0000_0100;
const FLAG_EOS: u8 = 0b0000_1000;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A fragment of a video frame.
    Video,
    /// A fragment of the audio track.
    Audio,
    /// XOR parity over the current FEC group.
    Parity,
    /// End-of-stream marker.
    EndOfStream,
}

/// A media application data unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaPacket {
    /// Payload classification.
    pub kind: PacketKind,
    /// `true` if part of a keyframe.
    pub key: bool,
    /// SureStream rung index the bytes were encoded at.
    pub rung: u8,
    /// Frame index (video), sequence number (audio), or group base (parity).
    pub frame_index: u32,
    /// Fragment number within the frame.
    pub frag_index: u16,
    /// Total fragments of the frame.
    pub frag_count: u16,
    /// Presentation timestamp, microseconds from clip start.
    pub pts_micros: u64,
    /// FEC group this packet belongs to (data) or covers (parity).
    pub group_id: u32,
    /// Transport-level sequence number: increments per packet sent on the
    /// session. The receiver detects loss from gaps (the basis of the
    /// receiver reports driving UDP rate control).
    pub seq: u32,
    /// Simulated payload length in bytes.
    pub payload_len: u16,
}

impl MediaPacket {
    /// Total wire bytes: header + payload.
    pub fn wire_len(&self) -> usize {
        MEDIA_HEADER_BYTES + usize::from(self.payload_len)
    }

    /// Serializes header + zero-filled payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Serializes header + zero-filled payload onto the end of `out`,
    /// reusing the caller's buffer (the batch-transmit path encodes many
    /// packets into one staging buffer before a single socket write).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.reserve(self.wire_len());
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION);
        let mut flags = 0u8;
        if self.key {
            flags |= FLAG_KEY;
        }
        match self.kind {
            PacketKind::Video => {}
            PacketKind::Audio => flags |= FLAG_AUDIO,
            PacketKind::Parity => flags |= FLAG_PARITY,
            PacketKind::EndOfStream => flags |= FLAG_EOS,
        }
        out.push(flags);
        out.push(self.rung);
        out.push(0); // reserved
        out.extend_from_slice(&self.frame_index.to_be_bytes());
        out.extend_from_slice(&self.frag_index.to_be_bytes());
        out.extend_from_slice(&self.frag_count.to_be_bytes());
        out.extend_from_slice(&self.pts_micros.to_be_bytes());
        out.extend_from_slice(&self.group_id.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.payload_len.to_be_bytes());
        debug_assert_eq!(out.len() - start, MEDIA_HEADER_BYTES);
        out.resize(start + self.wire_len(), 0);
    }

    /// Decodes one packet from the front of `buf`. Returns the packet and
    /// the bytes consumed, `None` if the buffer is too short or malformed.
    pub fn decode(buf: &[u8]) -> Option<(MediaPacket, usize)> {
        if buf.len() < MEDIA_HEADER_BYTES {
            return None;
        }
        let magic = u16::from_be_bytes([buf[0], buf[1]]);
        if magic != MAGIC || buf[2] != VERSION {
            return None;
        }
        let flags = buf[3];
        let kind = if flags & FLAG_EOS != 0 {
            PacketKind::EndOfStream
        } else if flags & FLAG_PARITY != 0 {
            PacketKind::Parity
        } else if flags & FLAG_AUDIO != 0 {
            PacketKind::Audio
        } else {
            PacketKind::Video
        };
        let pkt = MediaPacket {
            kind,
            key: flags & FLAG_KEY != 0,
            rung: buf[4],
            frame_index: u32::from_be_bytes(buf[6..10].try_into().ok()?),
            frag_index: u16::from_be_bytes(buf[10..12].try_into().ok()?),
            frag_count: u16::from_be_bytes(buf[12..14].try_into().ok()?),
            pts_micros: u64::from_be_bytes(buf[14..22].try_into().ok()?),
            group_id: u32::from_be_bytes(buf[22..26].try_into().ok()?),
            seq: u32::from_be_bytes(buf[26..30].try_into().ok()?),
            payload_len: u16::from_be_bytes(buf[30..32].try_into().ok()?),
        };
        let total = pkt.wire_len();
        if buf.len() < total {
            return None;
        }
        Some((pkt, total))
    }
}

/// Splits a video frame into data packets at most [`MAX_PAYLOAD`] each.
pub fn packetize_frame(frame: &Frame, rung: u8, group_id: u32) -> Vec<MediaPacket> {
    let mut out = Vec::new();
    packetize_frame_into(frame, rung, group_id, &mut out);
    out
}

/// [`packetize_frame`] into a caller-owned buffer, so a streaming loop
/// can reuse one allocation across every frame it sends.
pub fn packetize_frame_into(frame: &Frame, rung: u8, group_id: u32, out: &mut Vec<MediaPacket>) {
    let size = frame.size.max(1) as usize;
    let frag_count = size.div_ceil(MAX_PAYLOAD).max(1) as u16;
    out.extend((0..frag_count).map(|frag_index| {
        let start = usize::from(frag_index) * MAX_PAYLOAD;
        let len = (size - start).min(MAX_PAYLOAD);
        MediaPacket {
            kind: PacketKind::Video,
            key: frame.key,
            rung,
            frame_index: frame.index,
            frag_index,
            frag_count,
            pts_micros: frame.pts.as_micros(),
            group_id,
            seq: 0, // assigned by the sender at transmission time
            payload_len: len as u16,
        }
    }));
}

/// Builds the parity packet covering `group` (any single lost member can be
/// reconstructed from the others plus this packet).
pub fn parity_packet(group_id: u32, group: &[MediaPacket]) -> MediaPacket {
    let max_len = group.iter().map(|p| p.payload_len).max().unwrap_or(0);
    MediaPacket {
        kind: PacketKind::Parity,
        key: false,
        rung: group.first().map(|p| p.rung).unwrap_or(0),
        frame_index: group.first().map(|p| p.frame_index).unwrap_or(0),
        frag_index: 0,
        frag_count: group.len() as u16,
        pts_micros: group.iter().map(|p| p.pts_micros).max().unwrap_or(0),
        group_id,
        seq: 0, // assigned by the sender at transmission time
        payload_len: max_len,
    }
}

/// An incremental depacketizer for the TCP byte stream.
///
/// Consumed bytes are tracked with a cursor rather than drained per
/// packet, so popping N packets walks the buffer once instead of
/// memmoving the tail N times.
#[derive(Debug, Default)]
pub struct StreamDepacketizer {
    buf: Vec<u8>,
    pos: usize,
}

impl StreamDepacketizer {
    /// An empty depacketizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 {
            // Compact a long-consumed prefix so a perpetually incomplete
            // tail cannot grow the buffer without bound.
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete packet, if buffered.
    pub fn next_packet(&mut self) -> Option<MediaPacket> {
        let (pkt, used) = MediaPacket::decode(&self.buf[self.pos..])?;
        self.pos += used;
        Some(pkt)
    }

    /// Bytes buffered awaiting a complete packet.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_sim::SimDuration;

    fn frame(index: u32, size: u32, key: bool) -> Frame {
        Frame {
            index,
            pts: SimDuration::from_millis(u64::from(index) * 100),
            size,
            key,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let pkt = MediaPacket {
            kind: PacketKind::Video,
            key: true,
            rung: 3,
            frame_index: 1234,
            frag_index: 2,
            frag_count: 5,
            pts_micros: 98_765_432,
            group_id: 77,
            seq: 31337,
            payload_len: 1400,
        };
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), 32 + 1400);
        let (got, used) = MediaPacket::decode(&bytes).unwrap();
        assert_eq!(got, pkt);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in [
            PacketKind::Video,
            PacketKind::Audio,
            PacketKind::Parity,
            PacketKind::EndOfStream,
        ] {
            let pkt = MediaPacket {
                kind,
                key: false,
                rung: 0,
                frame_index: 1,
                frag_index: 0,
                frag_count: 1,
                pts_micros: 0,
                group_id: 0,
                seq: 0,
                payload_len: 10,
            };
            let (got, _) = MediaPacket::decode(&pkt.encode()).unwrap();
            assert_eq!(got.kind, kind);
        }
    }

    #[test]
    fn decode_rejects_bad_magic_and_truncation() {
        let pkt = MediaPacket {
            kind: PacketKind::Video,
            key: false,
            rung: 0,
            frame_index: 0,
            frag_index: 0,
            frag_count: 1,
            pts_micros: 0,
            group_id: 0,
            seq: 0,
            payload_len: 100,
        };
        let mut bytes = pkt.encode();
        assert!(MediaPacket::decode(&bytes[..31]).is_none()); // short header
        assert!(MediaPacket::decode(&bytes[..100]).is_none()); // short payload
        bytes[0] = 0xFF;
        assert!(MediaPacket::decode(&bytes).is_none()); // bad magic
    }

    #[test]
    fn small_frame_is_one_fragment() {
        let pkts = packetize_frame(&frame(5, 300, false), 1, 9);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].frag_count, 1);
        assert_eq!(pkts[0].payload_len, 300);
        assert_eq!(pkts[0].group_id, 9);
    }

    #[test]
    fn large_frame_fragments_and_sums() {
        let pkts = packetize_frame(&frame(5, 3500, true), 2, 0);
        assert_eq!(pkts.len(), 3);
        assert!(pkts.iter().all(|p| p.frag_count == 3 && p.key));
        let total: u32 = pkts.iter().map(|p| u32::from(p.payload_len)).sum();
        assert_eq!(total, 3500);
        assert_eq!(pkts[0].payload_len, 1400);
        assert_eq!(pkts[2].payload_len, 700);
    }

    #[test]
    fn parity_covers_group() {
        let group = packetize_frame(&frame(5, 3500, false), 0, 4);
        let parity = parity_packet(4, &group);
        assert_eq!(parity.kind, PacketKind::Parity);
        assert_eq!(parity.group_id, 4);
        assert_eq!(parity.frag_count, 3);
        assert_eq!(parity.payload_len, 1400);
    }

    #[test]
    fn stream_depacketizer_survives_segmentation() {
        let frames = [frame(0, 2000, true), frame(1, 500, false)];
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            for p in packetize_frame(f, 0, i as u32) {
                wire.extend(p.encode());
                expected.push(p);
            }
        }
        let mut depkt = StreamDepacketizer::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(7) {
            depkt.feed(chunk);
            while let Some(p) = depkt.next_packet() {
                got.push(p);
            }
        }
        assert_eq!(got, expected);
        assert_eq!(depkt.buffered(), 0);
    }
}
