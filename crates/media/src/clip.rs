//! Clips, encodings, and SureStream ladders.
//!
//! Content producers encoded each RealVideo clip at several target
//! bandwidths ("SureStream"); the server picks a stream per client and can
//! switch mid-playout. A fixed share of each encoding feeds the audio
//! codec, the remainder the video track — the paper's Section II.C
//! describes exactly this budget split.

use rv_sim::SimDuration;

/// Content category; drives the action profile of the frame schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentKind {
    /// Anchors and interviews: low action, steady frame sizes.
    News,
    /// High motion, frequent scene changes.
    Sports,
    /// Music television: bursty action.
    Music,
    /// Talking heads: lowest action.
    Talk,
}

impl ContentKind {
    /// All kinds, for catalog construction.
    pub const ALL: [ContentKind; 4] = [
        ContentKind::News,
        ContentKind::Sports,
        ContentKind::Music,
        ContentKind::Talk,
    ];

    /// Mean action level in `[0, 1]`: scales scene frame rates.
    pub fn mean_action(self) -> f64 {
        match self {
            ContentKind::News => 0.72,
            ContentKind::Sports => 0.92,
            ContentKind::Music => 0.82,
            ContentKind::Talk => 0.58,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            ContentKind::News => "news",
            ContentKind::Sports => "sports",
            ContentKind::Music => "music",
            ContentKind::Talk => "talk",
        }
    }

    fn from_tag(s: &str) -> Option<ContentKind> {
        Some(match s {
            "news" => ContentKind::News,
            "sports" => ContentKind::Sports,
            "music" => ContentKind::Music,
            "talk" => ContentKind::Talk,
            _ => return None,
        })
    }
}

/// One encoding of a clip: a rung of the SureStream ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Encoding {
    /// Total target bandwidth, audio + video, bits/second.
    pub total_bps: u32,
    /// Audio codec share, bits/second.
    pub audio_bps: u32,
    /// Encoded (maximum) video frame rate, frames/second.
    pub frame_rate: f64,
    /// Frame dimensions, informational.
    pub width: u16,
    /// Frame height.
    pub height: u16,
    /// Keyframe every this many frames.
    pub keyframe_interval: u32,
}

impl Encoding {
    /// Bits/second left for video after the audio codec takes its share.
    pub fn video_bps(&self) -> u32 {
        self.total_bps.saturating_sub(self.audio_bps)
    }

    /// Average video bytes per frame at the encoded rate.
    pub fn mean_frame_bytes(&self) -> u32 {
        (f64::from(self.video_bps()) / self.frame_rate / 8.0).max(1.0) as u32
    }
}

/// The standard 2001-era encoding rungs, from 28.8-modem to broadband.
/// Bandwidths and frame rates follow the RealProducer guidance the paper
/// cites (e.g. a 20 Kbps clip with a 5 Kbps voice codec leaves 15 Kbps of
/// video).
pub fn standard_rung(total_bps: u32) -> Encoding {
    // Audio share and fps grow with the bandwidth tier.
    let (audio_bps, frame_rate, w, h) = match total_bps {
        0..=22_000 => (5_000, 7.5, 176, 132),
        22_001..=37_000 => (8_500, 10.0, 176, 132),
        37_001..=90_000 => (11_000, 15.0, 240, 180),
        90_001..=180_000 => (16_000, 15.0, 320, 240),
        180_001..=320_000 => (20_000, 24.0, 320, 240),
        _ => (32_000, 30.0, 480, 360),
    };
    Encoding {
        total_bps,
        audio_bps,
        frame_rate,
        width: w,
        height: h,
        keyframe_interval: 60,
    }
}

/// A multi-rate SureStream ladder, rungs sorted by ascending bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct SureStream {
    rungs: Vec<Encoding>,
}

impl SureStream {
    /// Builds a ladder; rungs are sorted by total bandwidth.
    ///
    /// Panics on an empty rung list.
    pub fn new(mut rungs: Vec<Encoding>) -> Self {
        assert!(!rungs.is_empty(), "SureStream needs at least one rung");
        rungs.sort_by_key(|r| r.total_bps);
        SureStream { rungs }
    }

    /// The classic six-rung production ladder, 28.8-modem through broadband.
    pub fn standard() -> Self {
        SureStream::new(
            [20_000, 34_000, 80_000, 150_000, 300_000, 450_000]
                .into_iter()
                .map(standard_rung)
                .collect(),
        )
    }

    /// A single-rate "ladder" (no SureStream) for ablation experiments and
    /// for the many 2001 sites that encoded only one stream.
    pub fn single(total_bps: u32) -> Self {
        SureStream::new(vec![standard_rung(total_bps)])
    }

    /// A broadband-only ladder: sites that never encoded modem rungs.
    pub fn broadband_only() -> Self {
        SureStream::new(
            [80_000, 150_000, 300_000, 450_000]
                .into_iter()
                .map(standard_rung)
                .collect(),
        )
    }

    /// The rungs, ascending.
    pub fn rungs(&self) -> &[Encoding] {
        &self.rungs
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Always false: construction forbids empty ladders.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the best rung whose total bandwidth fits within
    /// `available_bps`; the lowest rung if none fit.
    pub fn select(&self, available_bps: f64) -> usize {
        let mut best = 0;
        for (i, rung) in self.rungs.iter().enumerate() {
            if f64::from(rung.total_bps) <= available_bps {
                best = i;
            }
        }
        best
    }
}

/// A clip in a server's catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// Clip name (the path component of its rtsp:// URL).
    pub name: String,
    /// Full duration of the recorded content.
    pub duration: SimDuration,
    /// What the clip shows.
    pub content: ContentKind,
    /// Its encodings.
    pub ladder: SureStream,
}

impl Clip {
    /// A standard-ladder clip.
    pub fn new(name: &str, duration: SimDuration, content: ContentKind) -> Self {
        Clip::with_ladder(name, duration, content, SureStream::standard())
    }

    /// A clip with an explicit encoding ladder.
    pub fn with_ladder(
        name: &str,
        duration: SimDuration,
        content: ContentKind,
        ladder: SureStream,
    ) -> Self {
        Clip {
            name: name.to_string(),
            duration,
            content,
            ladder,
        }
    }

    /// Serializes the presentation description (the DESCRIBE body): an
    /// SDP-inspired line protocol listing content kind, duration, and the
    /// ladder.
    pub fn describe(&self) -> Vec<u8> {
        let mut s = String::new();
        s.push_str(&format!("c={}\n", self.content.tag()));
        s.push_str(&format!("d={}\n", self.duration.as_millis()));
        for r in &self.ladder.rungs {
            s.push_str(&format!(
                "s=total:{};audio:{};fps:{};dim:{}x{};ki:{}\n",
                r.total_bps, r.audio_bps, r.frame_rate, r.width, r.height, r.keyframe_interval
            ));
        }
        s.into_bytes()
    }

    /// Parses a presentation description produced by [`Clip::describe`].
    /// Returns `None` on any malformed line.
    pub fn parse_description(name: &str, body: &[u8]) -> Option<Clip> {
        let text = std::str::from_utf8(body).ok()?;
        let mut content = None;
        let mut duration = None;
        let mut rungs = Vec::new();
        for line in text.lines() {
            if let Some(tag) = line.strip_prefix("c=") {
                content = Some(ContentKind::from_tag(tag)?);
            } else if let Some(ms) = line.strip_prefix("d=") {
                duration = Some(SimDuration::from_millis(ms.parse().ok()?));
            } else if let Some(spec) = line.strip_prefix("s=") {
                rungs.push(parse_rung(spec)?);
            } else if !line.is_empty() {
                return None;
            }
        }
        if rungs.is_empty() {
            return None;
        }
        Some(Clip {
            name: name.to_string(),
            duration: duration?,
            content: content?,
            ladder: SureStream::new(rungs),
        })
    }
}

fn parse_rung(spec: &str) -> Option<Encoding> {
    let mut total = None;
    let mut audio = None;
    let mut fps = None;
    let mut dim = None;
    let mut ki = None;
    for field in spec.split(';') {
        let (k, v) = field.split_once(':')?;
        match k {
            "total" => total = Some(v.parse().ok()?),
            "audio" => audio = Some(v.parse().ok()?),
            "fps" => fps = Some(v.parse().ok()?),
            "dim" => {
                let (w, h) = v.split_once('x')?;
                dim = Some((w.parse().ok()?, h.parse().ok()?));
            }
            "ki" => ki = Some(v.parse().ok()?),
            _ => return None,
        }
    }
    let (width, height) = dim?;
    Some(Encoding {
        total_bps: total?,
        audio_bps: audio?,
        frame_rate: fps?,
        width,
        height,
        keyframe_interval: ki?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_share_leaves_video_budget() {
        let e = standard_rung(20_000);
        assert_eq!(e.audio_bps, 5_000);
        assert_eq!(e.video_bps(), 15_000);
        // 15 kbps at 7.5 fps = 250 bytes/frame.
        assert_eq!(e.mean_frame_bytes(), 250);
    }

    #[test]
    fn ladder_sorts_and_selects() {
        let ladder = SureStream::new(vec![
            standard_rung(300_000),
            standard_rung(20_000),
            standard_rung(80_000),
        ]);
        let rates: Vec<u32> = ladder.rungs().iter().map(|r| r.total_bps).collect();
        assert_eq!(rates, vec![20_000, 80_000, 300_000]);
        assert_eq!(ladder.select(500_000.0), 2);
        assert_eq!(ladder.select(100_000.0), 1);
        assert_eq!(ladder.select(25_000.0), 0);
        // Below the lowest rung: still the lowest rung.
        assert_eq!(ladder.select(1_000.0), 0);
    }

    #[test]
    fn standard_ladder_has_six_rungs() {
        let l = SureStream::standard();
        assert_eq!(l.len(), 6);
        assert!(l
            .rungs()
            .windows(2)
            .all(|w| w[0].total_bps < w[1].total_bps));
    }

    #[test]
    #[should_panic(expected = "at least one rung")]
    fn empty_ladder_panics() {
        SureStream::new(vec![]);
    }

    #[test]
    fn description_round_trips() {
        let clip = Clip::new("news1.rm", SimDuration::from_secs(300), ContentKind::News);
        let body = clip.describe();
        let parsed = Clip::parse_description("news1.rm", &body).unwrap();
        assert_eq!(parsed, clip);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Clip::parse_description("x", b"garbage line\n").is_none());
        assert!(Clip::parse_description("x", b"c=news\nd=notanumber\n").is_none());
        assert!(Clip::parse_description("x", b"c=news\nd=1000\n").is_none()); // no rungs
        assert!(Clip::parse_description(
            "x",
            b"c=noexist\nd=1000\ns=total:1;audio:1;fps:1;dim:1x1;ki:1\n"
        )
        .is_none());
    }

    #[test]
    fn higher_tiers_get_higher_fps() {
        assert!(standard_rung(300_000).frame_rate > standard_rung(20_000).frame_rate);
        assert!(standard_rung(500_000).frame_rate >= 30.0);
    }

    #[test]
    fn content_kinds_have_ordered_action() {
        assert!(ContentKind::Sports.mean_action() > ContentKind::News.mean_action());
        assert!(ContentKind::News.mean_action() > ContentKind::Talk.mean_action());
    }
}
