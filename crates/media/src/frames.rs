//! Frame schedules: the sequence of video frames an encoding produces.
//!
//! RealVideo encoders varied the frame rate with scene content — "keeping
//! the frame rate up in high-action scenes, and reducing it in low-action
//! scenes" (paper, Section V) — so an encoded clip intentionally has a mix
//! of frame rates. The generator models scenes with exponentially
//! distributed lengths and per-scene action levels, then emits frames whose
//! sizes track the video bitrate budget with keyframes every
//! `keyframe_interval` frames.

use rv_sim::{SimDuration, SimRng};

use crate::clip::{ContentKind, Encoding};

/// One encoded video frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    /// Position in the schedule (decode order == presentation order).
    pub index: u32,
    /// Presentation time relative to clip start.
    pub pts: SimDuration,
    /// Encoded size in bytes.
    pub size: u32,
    /// `true` for keyframes (independently decodable).
    pub key: bool,
}

/// The full frame sequence of one encoding of one clip.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameSchedule {
    frames: Vec<Frame>,
    duration: SimDuration,
    encoded_fps: f64,
}

impl FrameSchedule {
    /// Generates the schedule for `encoding` over `duration` of `content`.
    ///
    /// Deterministic in `seed`; the same clip always encodes identically.
    pub fn generate(
        encoding: &Encoding,
        content: ContentKind,
        duration: SimDuration,
        seed: u64,
    ) -> FrameSchedule {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut frames = Vec::new();
        let mut t = SimDuration::ZERO;
        let mut index = 0u32;
        let base_interval = SimDuration::from_secs_f64(1.0 / encoding.frame_rate);
        let mean_bytes = f64::from(encoding.mean_frame_bytes());

        while t < duration {
            // A scene: exponential length (mean 8 s), its own action level.
            let scene_len = rng
                .exp_duration(SimDuration::from_secs(8))
                .clamp(SimDuration::from_secs(2), SimDuration::from_secs(30));
            let scene_end = (t + scene_len).min(duration);
            let action = (content.mean_action() + rng.normal(0.0, 0.12)).clamp(0.3, 1.0);
            // Low action → encoder emits fewer frames; budget per frame grows
            // so the bitrate stays near target.
            let interval = base_interval.mul_f64(1.0 / action);
            let frame_bytes = mean_bytes / action;

            while t < scene_end {
                let key = index.is_multiple_of(encoding.keyframe_interval);
                // Keyframes cost ~3x a delta frame; delta frames vary ±30 %.
                let size = if key {
                    frame_bytes * 3.0
                } else {
                    frame_bytes * rng.range(0.7..1.3)
                };
                frames.push(Frame {
                    index,
                    pts: t,
                    size: size.max(16.0) as u32,
                    key,
                });
                index += 1;
                t += interval;
            }
        }

        FrameSchedule {
            frames,
            duration,
            encoded_fps: encoding.frame_rate,
        }
    }

    /// All frames in presentation order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the schedule has no frames (zero-length clip).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The clip duration this schedule covers.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// The nominal encoded frame rate.
    pub fn encoded_fps(&self) -> f64 {
        self.encoded_fps
    }

    /// The realized average frame rate of the schedule (≤ encoded, because
    /// low-action scenes reduce it).
    pub fn actual_fps(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.frames.len() as f64 / self.duration.as_secs_f64()
        }
    }

    /// Total encoded bytes.
    pub fn total_bytes(&self) -> u64 {
        self.frames.iter().map(|f| u64::from(f.size)).sum()
    }

    /// Index of the first frame with `pts >= t`, or `len()` past the end.
    pub fn first_frame_at(&self, t: SimDuration) -> usize {
        self.frames.partition_point(|f| f.pts < t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clip::standard_rung;

    fn schedule(total_bps: u32, content: ContentKind, secs: u64) -> FrameSchedule {
        FrameSchedule::generate(
            &standard_rung(total_bps),
            content,
            SimDuration::from_secs(secs),
            42,
        )
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = schedule(80_000, ContentKind::News, 60);
        let b = schedule(80_000, ContentKind::News, 60);
        assert_eq!(a, b);
    }

    #[test]
    fn pts_is_strictly_increasing() {
        let s = schedule(150_000, ContentKind::Sports, 60);
        assert!(s.frames().windows(2).all(|w| w[1].pts > w[0].pts));
        assert_eq!(s.frames()[0].pts, SimDuration::ZERO);
    }

    #[test]
    fn actual_fps_below_encoded_but_reasonable() {
        let s = schedule(80_000, ContentKind::News, 120);
        let encoded = s.encoded_fps();
        let actual = s.actual_fps();
        assert!(
            actual <= encoded + 0.01,
            "actual {actual} encoded {encoded}"
        );
        assert!(actual > encoded * 0.35, "actual {actual} too low");
    }

    #[test]
    fn sports_has_more_frames_than_talk() {
        let sports = schedule(80_000, ContentKind::Sports, 120);
        let talk = schedule(80_000, ContentKind::Talk, 120);
        assert!(sports.len() > talk.len());
    }

    #[test]
    fn bitrate_tracks_video_budget() {
        let enc = standard_rung(150_000);
        let s = FrameSchedule::generate(&enc, ContentKind::News, SimDuration::from_secs(120), 7);
        let bps = s.total_bytes() as f64 * 8.0 / 120.0;
        let target = f64::from(enc.video_bps());
        // Keyframe overhead pushes realized above target somewhat.
        assert!(
            bps > target * 0.8 && bps < target * 1.6,
            "bps {bps} target {target}"
        );
    }

    #[test]
    fn keyframes_appear_at_interval() {
        let s = schedule(80_000, ContentKind::Music, 60);
        let keys: Vec<u32> = s
            .frames()
            .iter()
            .filter(|f| f.key)
            .map(|f| f.index)
            .collect();
        assert!(!keys.is_empty());
        assert_eq!(keys[0], 0);
        for k in &keys {
            assert_eq!(k % 60, 0);
        }
        // Keyframes are bigger than their neighbors on average.
        let key_mean: f64 = s
            .frames()
            .iter()
            .filter(|f| f.key)
            .map(|f| f.size as f64)
            .sum::<f64>()
            / keys.len() as f64;
        let delta_mean: f64 = s
            .frames()
            .iter()
            .filter(|f| !f.key)
            .map(|f| f.size as f64)
            .sum::<f64>()
            / (s.len() - keys.len()) as f64;
        assert!(key_mean > delta_mean * 2.0);
    }

    #[test]
    fn zero_duration_is_empty() {
        let s = schedule(80_000, ContentKind::News, 0);
        assert!(s.is_empty());
        assert_eq!(s.actual_fps(), 0.0);
    }

    #[test]
    fn first_frame_at_partitions() {
        let s = schedule(80_000, ContentKind::News, 60);
        assert_eq!(s.first_frame_at(SimDuration::ZERO), 0);
        let i = s.first_frame_at(SimDuration::from_secs(30));
        assert!(i > 0 && i < s.len());
        assert!(s.frames()[i].pts >= SimDuration::from_secs(30));
        assert!(s.frames()[i - 1].pts < SimDuration::from_secs(30));
        assert_eq!(s.first_frame_at(SimDuration::from_secs(600)), s.len());
    }
}
