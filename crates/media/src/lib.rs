//! # rv-media — the RealVideo media model
//!
//! Clips with SureStream multi-rate ladders ([`Clip`], [`SureStream`]), the
//! audio/video bandwidth split ([`Encoding`]), action-varying frame
//! schedules ([`FrameSchedule`]), and packetization with a binary codec and
//! XOR-parity FEC ([`MediaPacket`], [`parity_packet`]).
//!
//! The DESCRIBE body a server sends is produced by [`Clip::describe`] and
//! parsed back by [`Clip::parse_description`]; the player's depacketizers
//! ([`StreamDepacketizer`] for TCP, [`MediaPacket::decode`] per UDP
//! datagram) reconstruct frames on the far side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adu;
mod clip;
mod frames;

pub use adu::{
    packetize_frame, packetize_frame_into, parity_packet, MediaPacket, PacketKind,
    StreamDepacketizer, MAX_PAYLOAD, MEDIA_HEADER_BYTES,
};
pub use clip::{standard_rung, Clip, ContentKind, Encoding, SureStream};
pub use frames::{Frame, FrameSchedule};
