//! Property-based tests: the media codec round-trips under any field
//! values, packetization conserves bytes, and frame schedules keep their
//! invariants for every encoding/content/duration combination.

use proptest::prelude::*;
use rv_media::{
    packetize_frame, standard_rung, Clip, ContentKind, Frame, FrameSchedule, MediaPacket,
    PacketKind, StreamDepacketizer, SureStream, MAX_PAYLOAD,
};
use rv_sim::SimDuration;

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::Video),
        Just(PacketKind::Audio),
        Just(PacketKind::Parity),
        Just(PacketKind::EndOfStream),
    ]
}

fn arb_content() -> impl Strategy<Value = ContentKind> {
    prop_oneof![
        Just(ContentKind::News),
        Just(ContentKind::Sports),
        Just(ContentKind::Music),
        Just(ContentKind::Talk),
    ]
}

proptest! {
    /// Every representable packet survives an encode/decode round trip.
    #[test]
    fn media_packet_roundtrip(
        kind in arb_kind(),
        key in any::<bool>(),
        rung in any::<u8>(),
        frame_index in any::<u32>(),
        frag_index in any::<u16>(),
        frag_count in any::<u16>(),
        pts_micros in any::<u64>(),
        group_id in any::<u32>(),
        seq in any::<u32>(),
        payload_len in 0u16..2000,
    ) {
        let pkt = MediaPacket {
            kind, key, rung, frame_index, frag_index, frag_count,
            pts_micros, group_id, seq, payload_len,
        };
        let bytes = pkt.encode();
        prop_assert_eq!(bytes.len(), pkt.wire_len());
        let (decoded, used) = MediaPacket::decode(&bytes).expect("decodes");
        prop_assert_eq!(decoded, pkt);
        prop_assert_eq!(used, bytes.len());
    }

    /// Packetization conserves the frame's bytes and fragment numbering.
    #[test]
    fn packetize_conserves_bytes(size in 1u32..40_000, index in any::<u32>(), key in any::<bool>()) {
        let frame = Frame {
            index,
            pts: SimDuration::from_millis(10),
            size,
            key,
        };
        let pkts = packetize_frame(&frame, 2, 9);
        let total: u32 = pkts.iter().map(|p| u32::from(p.payload_len)).sum();
        prop_assert_eq!(total, size);
        let n = pkts.len() as u16;
        for (i, p) in pkts.iter().enumerate() {
            prop_assert_eq!(p.frag_index, i as u16);
            prop_assert_eq!(p.frag_count, n);
            prop_assert!(usize::from(p.payload_len) <= MAX_PAYLOAD);
            prop_assert_eq!(p.key, key);
        }
    }

    /// A stream of encoded packets fed through the depacketizer in chunks of
    /// any size reproduces the original sequence.
    #[test]
    fn depacketizer_reassembles_any_chunking(
        sizes in prop::collection::vec(1u32..5_000, 1..8),
        chunk in 1usize..97,
    ) {
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let frame = Frame {
                index: i as u32,
                pts: SimDuration::from_millis(i as u64 * 100),
                size: *size,
                key: i == 0,
            };
            for p in packetize_frame(&frame, 0, i as u32) {
                wire.extend(p.encode());
                expected.push(p);
            }
        }
        let mut d = StreamDepacketizer::new();
        let mut got = Vec::new();
        for c in wire.chunks(chunk) {
            d.feed(c);
            while let Some(p) = d.next_packet() {
                got.push(p);
            }
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(d.buffered(), 0);
    }

    /// Frame schedules: strictly increasing pts, nonzero sizes, realized
    /// rate never exceeding the encoded rate, for any content/duration.
    #[test]
    fn schedule_invariants(
        total_bps in 15_000u32..500_000,
        content in arb_content(),
        secs in 1u64..180,
        seed in any::<u64>(),
    ) {
        let enc = standard_rung(total_bps);
        let s = FrameSchedule::generate(&enc, content, SimDuration::from_secs(secs), seed);
        prop_assert!(!s.is_empty());
        for w in s.frames().windows(2) {
            prop_assert!(w[1].pts > w[0].pts);
        }
        prop_assert!(s.frames().iter().all(|f| f.size > 0));
        // Fencepost: a clip of duration D can hold floor(D/interval)+1
        // frames, so the realized rate may exceed the encoded rate by up
        // to one frame per clip.
        prop_assert!(s.actual_fps() <= s.encoded_fps() + 1.0 / secs as f64 + 0.01);
        // First frame is a keyframe (decoder bootstrap).
        prop_assert!(s.frames()[0].key);
    }

    /// The DESCRIBE body round-trips for any ladder subset.
    #[test]
    fn describe_roundtrip(
        rates in prop::collection::btree_set(15_000u32..500_000, 1..6),
        content in arb_content(),
        secs in 1u64..600,
    ) {
        let ladder = SureStream::new(rates.iter().map(|r| standard_rung(*r)).collect());
        let clip = Clip::with_ladder("c.rm", SimDuration::from_secs(secs), content, ladder);
        let body = clip.describe();
        let parsed = Clip::parse_description("c.rm", &body).expect("parses");
        prop_assert_eq!(parsed, clip);
    }

    /// Ladder selection picks the best fitting rung for any bandwidth.
    #[test]
    fn ladder_select_is_best_fit(
        rates in prop::collection::btree_set(15_000u32..500_000, 1..6),
        available in 0.0f64..600_000.0,
    ) {
        let ladder = SureStream::new(rates.iter().map(|r| standard_rung(*r)).collect());
        let idx = ladder.select(available);
        let chosen = f64::from(ladder.rungs()[idx].total_bps);
        if chosen > available {
            // Nothing fits: must be the lowest rung.
            prop_assert_eq!(idx, 0);
        } else {
            // Best fit: no higher rung also fits.
            for r in &ladder.rungs()[idx + 1..] {
                prop_assert!(f64::from(r.total_bps) > available);
            }
        }
    }
}
