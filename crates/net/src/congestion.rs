//! Background cross-traffic model.
//!
//! In 2001 the paths between a RealServer and a dial-up user crossed transit
//! links shared with unknown traffic. Simulating every competing flow is
//! neither feasible nor necessary: what the streaming session experiences is
//! a time-varying reduction of available capacity plus correlated loss. The
//! [`CongestionProcess`] models exactly that — a piecewise-constant
//! "congestion level" in `[0, 1)` that is resampled at exponentially
//! distributed intervals, with occasional heavy-tailed (Pareto-length)
//! congestion episodes.
//!
//! Levels are generated lazily but deterministically: a link polled at the
//! same instants with the same seed sees the same congestion trajectory.

use rv_sim::{SimDuration, SimRng, SimTime};

/// Parameters of a link's background congestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionParams {
    /// Long-run mean congestion level in `[0, 1)`: the average fraction of
    /// link capacity consumed by cross traffic.
    pub mean_level: f64,
    /// Amplitude of fluctuation around the mean (standard deviation of the
    /// sampled level before clamping).
    pub variability: f64,
    /// Mean time between level changes.
    pub mean_epoch: SimDuration,
    /// Probability that a new epoch is a congestion *burst* (level pushed
    /// toward 1) with a heavy-tailed duration.
    pub burst_prob: f64,
}

impl CongestionParams {
    /// A quiet link: no cross traffic at all.
    pub const QUIET: CongestionParams = CongestionParams {
        mean_level: 0.0,
        variability: 0.0,
        mean_epoch: SimDuration::from_secs(10),
        burst_prob: 0.0,
    };

    /// A lightly loaded backbone link.
    pub fn light() -> Self {
        CongestionParams {
            mean_level: 0.15,
            variability: 0.10,
            mean_epoch: SimDuration::from_secs(4),
            burst_prob: 0.02,
        }
    }

    /// A moderately loaded transit link.
    pub fn moderate() -> Self {
        CongestionParams {
            mean_level: 0.35,
            variability: 0.18,
            mean_epoch: SimDuration::from_secs(3),
            burst_prob: 0.06,
        }
    }

    /// A heavily loaded / lossy international link.
    pub fn heavy() -> Self {
        CongestionParams {
            mean_level: 0.55,
            variability: 0.22,
            mean_epoch: SimDuration::from_secs(2),
            burst_prob: 0.12,
        }
    }
}

/// Lazily generated piecewise-constant congestion level for one link.
#[derive(Debug, Clone)]
pub struct CongestionProcess {
    params: CongestionParams,
    rng: SimRng,
    /// Current epoch: level holds until `until`.
    level: f64,
    until: SimTime,
}

impl CongestionProcess {
    /// Creates a process with its own RNG stream.
    pub fn new(params: CongestionParams, rng: SimRng) -> Self {
        CongestionProcess {
            params,
            rng,
            level: params.mean_level.clamp(0.0, 0.95),
            until: SimTime::ZERO,
        }
    }

    /// The congestion level in `[0, 0.95]` at `now`.
    ///
    /// `now` must be nondecreasing across calls (the simulation clock is
    /// monotone); querying the past would require storing the whole
    /// trajectory for no benefit.
    pub fn level_at(&mut self, now: SimTime) -> f64 {
        while now >= self.until {
            self.advance_epoch();
        }
        self.level
    }

    /// Available-capacity multiplier at `now`: `1 - level`.
    pub fn capacity_factor(&mut self, now: SimTime) -> f64 {
        1.0 - self.level_at(now)
    }

    fn advance_epoch(&mut self) {
        let p = self.params;
        let (level, dur) = if p.burst_prob > 0.0 && self.rng.chance(p.burst_prob) {
            // Congestion burst: level pushed high, heavy-tailed duration.
            let level = (0.75 + 0.2 * self.rng.unit()).min(0.95);
            let secs = self
                .rng
                .pareto(p.mean_epoch.as_secs_f64() * 0.25, 1.5)
                .min(p.mean_epoch.as_secs_f64() * 20.0);
            (level, SimDuration::from_secs_f64(secs))
        } else {
            let level = self
                .rng
                .normal(p.mean_level, p.variability)
                .clamp(0.0, 0.95);
            let dur = if p.mean_epoch.is_zero() {
                SimDuration::from_secs(1)
            } else {
                self.rng.exp_duration(p.mean_epoch)
            };
            (level, dur.max(SimDuration::from_millis(50)))
        };
        self.level = level;
        self.until = self.until.saturating_add(dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(params: CongestionParams, seed: u64) -> CongestionProcess {
        CongestionProcess::new(params, SimRng::seed_from_u64(seed))
    }

    #[test]
    fn quiet_link_has_zero_level() {
        let mut p = process(CongestionParams::QUIET, 1);
        for s in 0..100 {
            assert_eq!(p.level_at(SimTime::from_secs(s)), 0.0);
        }
    }

    #[test]
    fn level_is_always_in_range() {
        let mut p = process(CongestionParams::heavy(), 2);
        for s in 0..2_000 {
            let l = p.level_at(SimTime::from_millis(s * 137));
            assert!((0.0..=0.95).contains(&l), "level {l}");
        }
    }

    #[test]
    fn long_run_mean_tracks_parameter() {
        let mut p = process(CongestionParams::moderate(), 3);
        let n = 40_000u64;
        let mean: f64 = (0..n)
            .map(|i| p.level_at(SimTime::from_millis(i * 100)))
            .sum::<f64>()
            / n as f64;
        // Bursts push the realized mean slightly above the base level.
        assert!(
            (mean - 0.35).abs() < 0.12,
            "long-run mean {mean} far from 0.35"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = process(CongestionParams::moderate(), 7);
        let mut b = process(CongestionParams::moderate(), 7);
        for s in 0..500 {
            let t = SimTime::from_millis(s * 211);
            assert_eq!(a.level_at(t), b.level_at(t));
        }
    }

    #[test]
    fn capacity_factor_complements_level() {
        let mut p = process(CongestionParams::light(), 9);
        let t = SimTime::from_secs(42);
        let lvl = p.level_at(t);
        assert!((p.capacity_factor(t) - (1.0 - lvl)).abs() < 1e-12);
    }

    #[test]
    fn level_is_piecewise_constant() {
        let mut p = process(CongestionParams::light(), 11);
        // Two queries inside the same microsecond epoch window agree.
        let t = SimTime::from_millis(100);
        let l1 = p.level_at(t);
        let l2 = p.level_at(t);
        assert_eq!(l1, l2);
    }
}
