//! # rv-net — packet-level network simulator
//!
//! The substrate under the RealVideo reproduction: hosts and routers joined
//! by unidirectional [`Link`]s that serialize packets at a line rate
//! modulated by background cross traffic ([`CongestionProcess`]), queue in
//! bounded drop-tail FIFOs, and lose packets to both overflow and random
//! corruption. [`Network`] wires links into source-routed topologies;
//! [`NetBuilder`] constructs them declaratively with BFS routing.
//!
//! Everything is poll-based and deterministic: no wall clock, no threads,
//! every random draw from a forked [`rv_sim::SimRng`] stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod congestion;
mod link;
mod network;
mod packet;
mod topology;

pub use congestion::{CongestionParams, CongestionProcess};
pub use link::{Link, LinkParams, LinkStats};
pub use network::{LinkId, Network, RouteId};
pub use packet::{Addr, HostId, NodeId, Packet};
pub use topology::{BuildNode, NetBuilder, PrototypeCache, TopologyPrototype};
