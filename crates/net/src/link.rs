//! Unidirectional links with drop-tail queues.
//!
//! A link serializes packets one at a time at its (congestion-reduced) line
//! rate, holds waiting packets in a bounded byte-limited FIFO, and drops on
//! overflow — the dominant loss mechanism on 2001-era bottlenecks. A
//! configurable random-loss term models non-congestive corruption, and the
//! [`CongestionProcess`] modulates both available rate and loss.

use std::collections::VecDeque;

use rv_sim::trace::{self, DropCause, TraceEvent};
use rv_sim::{OutagePolicy, SimDuration, SimRng, SimTime};

use crate::congestion::{CongestionParams, CongestionProcess};
use crate::packet::{NodeId, Packet};

/// Static configuration of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Line rate in bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Queue capacity in bytes (drop-tail beyond this).
    pub queue_bytes: u32,
    /// Base random loss probability per packet (non-congestive).
    pub base_loss: f64,
    /// Additional loss at full congestion; scales with the square of the
    /// congestion level so light load is nearly lossless.
    pub congestion_loss: f64,
    /// Background cross-traffic model.
    pub congestion: CongestionParams,
}

impl LinkParams {
    /// A sane default: 10 Mbps, 5 ms, 64 KiB queue, quiet.
    pub fn lan() -> Self {
        LinkParams {
            rate_bps: 10_000_000.0,
            prop_delay: SimDuration::from_millis(5),
            queue_bytes: 64 * 1024,
            base_loss: 0.0,
            congestion_loss: 0.0,
            congestion: CongestionParams::QUIET,
        }
    }

    /// Builder-style rate override.
    pub fn rate(mut self, bps: f64) -> Self {
        self.rate_bps = bps;
        self
    }

    /// Builder-style propagation-delay override.
    pub fn delay(mut self, d: SimDuration) -> Self {
        self.prop_delay = d;
        self
    }

    /// Builder-style queue-size override.
    pub fn queue(mut self, bytes: u32) -> Self {
        self.queue_bytes = bytes;
        self
    }

    /// Builder-style base-loss override.
    pub fn loss(mut self, p: f64) -> Self {
        self.base_loss = p;
        self
    }

    /// Builder-style congestion override (also sets congestion loss).
    pub fn cross_traffic(mut self, c: CongestionParams, extra_loss: f64) -> Self {
        self.congestion = c;
        self.congestion_loss = extra_loss;
        self
    }
}

/// Counters a link accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets fully serialized and handed to propagation.
    pub delivered: u64,
    /// Packets dropped because the queue was full.
    pub dropped_queue: u64,
    /// Packets dropped by the random-loss models.
    pub dropped_loss: u64,
    /// Packets lost to an injected outage: flushed when the link went
    /// down with [`OutagePolicy::DropInFlight`], or refused while it was
    /// down. Distinct from `dropped_loss`/`dropped_queue` so injected
    /// failures stay auditable separately from organic loss.
    pub dropped_outage: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
}

/// A unidirectional link from one node to another.
///
/// Each queued packet carries an opaque `u64` tag supplied at enqueue time
/// and handed back verbatim when the packet finishes serializing. The
/// network layer uses it to carry routing state (interned route id + hop)
/// through the link so per-hop forwarding never re-derives it; standalone
/// users can pass [`Link::enqueue`], which tags with zero.
#[derive(Debug, Clone)]
pub struct Link<P> {
    /// Node the link transmits from.
    pub from: NodeId,
    /// Node the link delivers to.
    pub to: NodeId,
    params: LinkParams,
    congestion: CongestionProcess,
    rng: SimRng,
    queue: VecDeque<(Packet<P>, u64)>,
    queued_bytes: u32,
    /// The packet currently being serialized, its tag, and when it finishes.
    serving: Option<(Packet<P>, u64, SimTime)>,
    /// Outage state: `Some(policy)` while the link is administratively
    /// down. With `DropInFlight` the link refuses traffic; with
    /// `CarryInFlight` the queue keeps filling and drains on recovery.
    down: Option<OutagePolicy>,
    /// Injected extra loss (parts per million), folded into the same
    /// single random draw as the organic loss models so a zero burst
    /// leaves the RNG stream untouched.
    extra_loss_ppm: u32,
    /// Identity the link reports in trace events (the owning network's
    /// link index). Purely observational; zero for standalone links.
    trace_tag: u32,
    stats: LinkStats,
}

impl<P> Link<P> {
    /// Creates a link between two nodes.
    pub fn new(from: NodeId, to: NodeId, params: LinkParams, mut rng: SimRng) -> Self {
        assert!(params.rate_bps > 0.0, "link rate must be positive");
        let congestion = CongestionProcess::new(params.congestion, rng.fork(0xC0));
        Link {
            from,
            to,
            params,
            congestion,
            rng,
            queue: VecDeque::new(),
            queued_bytes: 0,
            serving: None,
            down: None,
            extra_loss_ppm: 0,
            trace_tag: 0,
            stats: LinkStats::default(),
        }
    }

    /// Sets the identity this link reports in trace events. The owning
    /// [`Network`](crate::Network) tags each link with its `LinkId`.
    pub fn set_trace_tag(&mut self, tag: u32) {
        self.trace_tag = tag;
    }

    /// Static parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Bytes currently waiting (not counting the packet in service).
    pub fn backlog_bytes(&self) -> u32 {
        self.queued_bytes
    }

    /// Offers a packet to the link at `now`. Returns `false` if it was
    /// dropped (loss or full queue).
    pub fn enqueue(&mut self, now: SimTime, packet: Packet<P>) -> bool {
        self.enqueue_tagged(now, packet, 0)
    }

    /// As [`Link::enqueue`], but attaches an opaque caller tag that
    /// [`Link::poll`] hands back with the finished packet.
    pub fn enqueue_tagged(&mut self, now: SimTime, packet: Packet<P>, tag: u64) -> bool {
        match self.down {
            Some(OutagePolicy::DropInFlight) => {
                // Hard-down interface: traffic is refused outright, before
                // any random draw (only reachable with faults injected, so
                // the fault-free RNG stream is untouched).
                self.stats.dropped_outage += 1;
                trace::emit(now, || TraceEvent::PacketDrop {
                    link: self.trace_tag,
                    cause: DropCause::Outage,
                    bytes: packet.size,
                    queued_bytes: self.queued_bytes,
                });
                return false;
            }
            Some(OutagePolicy::CarryInFlight) => {
                // Stalled link: no transmission, so no corruption draw;
                // the queue keeps accepting until it overflows.
                if self.queued_bytes.saturating_add(packet.size) > self.params.queue_bytes {
                    self.stats.dropped_queue += 1;
                    trace::emit(now, || TraceEvent::PacketDrop {
                        link: self.trace_tag,
                        cause: DropCause::Queue,
                        bytes: packet.size,
                        queued_bytes: self.queued_bytes,
                    });
                    return false;
                }
                self.queued_bytes += packet.size;
                self.stats.enqueued += 1;
                trace::emit(now, || TraceEvent::QueueDepth {
                    link: self.trace_tag,
                    queued_bytes: self.queued_bytes,
                });
                self.queue.push_back((packet, tag));
                return true;
            }
            None => {}
        }
        let level = self.congestion.level_at(now);
        let p_loss = self.params.base_loss
            + self.params.congestion_loss * level * level
            + f64::from(self.extra_loss_ppm) * 1e-6;
        if self.rng.chance(p_loss) {
            self.stats.dropped_loss += 1;
            trace::emit(now, || TraceEvent::PacketDrop {
                link: self.trace_tag,
                cause: DropCause::Loss,
                bytes: packet.size,
                queued_bytes: self.queued_bytes,
            });
            return false;
        }
        if self.queued_bytes.saturating_add(packet.size) > self.params.queue_bytes {
            self.stats.dropped_queue += 1;
            trace::emit(now, || TraceEvent::PacketDrop {
                link: self.trace_tag,
                cause: DropCause::Queue,
                bytes: packet.size,
                queued_bytes: self.queued_bytes,
            });
            return false;
        }
        self.queued_bytes += packet.size;
        self.stats.enqueued += 1;
        trace::emit(now, || TraceEvent::QueueDepth {
            link: self.trace_tag,
            queued_bytes: self.queued_bytes,
        });
        self.queue.push_back((packet, tag));
        if self.serving.is_none() {
            self.start_next(now);
        }
        true
    }

    /// Completes any serializations due by `now`, feeding each finished
    /// packet to `sink` with the instant it *arrives* at the far end
    /// (serialization completion plus propagation delay) and its enqueue
    /// tag. Draining into a caller-provided sink keeps the hot path
    /// allocation-free: no per-poll `Vec` exists. Returns the number of
    /// packets drained.
    pub fn poll(&mut self, now: SimTime, sink: &mut impl FnMut(SimTime, Packet<P>, u64)) -> usize {
        let mut drained = 0;
        while let Some((_, _, done_at)) = &self.serving {
            let done_at = *done_at;
            if done_at > now {
                break;
            }
            let (pkt, tag, _) = self.serving.take().expect("checked above");
            self.stats.delivered += 1;
            self.stats.bytes_delivered += u64::from(pkt.size);
            // The next packet starts serializing the moment the previous one
            // finished, not when we happened to poll.
            self.start_next(done_at);
            sink(done_at + self.params.prop_delay, pkt, tag);
            drained += 1;
        }
        drained
    }

    /// When the link next needs polling: the in-service completion time.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.serving.as_ref().map(|(_, _, t)| *t)
    }

    /// `true` while the link is administratively down.
    pub fn is_down(&self) -> bool {
        self.down.is_some()
    }

    /// Takes the link down. With [`OutagePolicy::DropInFlight`] the
    /// queue and the in-service packet are flushed (counted as
    /// `dropped_outage`) and traffic is refused until [`Link::set_up`];
    /// with [`OutagePolicy::CarryInFlight`] the in-service packet
    /// returns to the head of the queue and everything waits out the
    /// outage.
    pub fn set_down(&mut self, policy: OutagePolicy) {
        self.down = Some(policy);
        match policy {
            OutagePolicy::DropInFlight => {
                let flushed = self.queue.len() as u64 + u64::from(self.serving.is_some());
                self.stats.dropped_outage += flushed;
                self.queue.clear();
                self.queued_bytes = 0;
                self.serving = None;
            }
            OutagePolicy::CarryInFlight => {
                if let Some((pkt, tag, _)) = self.serving.take() {
                    // Re-serialize from scratch on recovery, like a
                    // retransmit after a line hit.
                    self.queued_bytes += pkt.size;
                    self.queue.push_front((pkt, tag));
                }
            }
        }
    }

    /// Brings the link back up at `now`; a carried queue resumes
    /// serializing immediately.
    pub fn set_up(&mut self, now: SimTime) {
        self.down = None;
        if self.serving.is_none() {
            self.start_next(now);
        }
    }

    /// Sets the injected extra loss for a burst window, in parts per
    /// million. Zero restores organic loss behavior exactly.
    pub fn set_extra_loss_ppm(&mut self, ppm: u32) {
        self.extra_loss_ppm = ppm;
    }

    fn start_next(&mut self, at: SimTime) {
        if self.down.is_some() {
            return;
        }
        if let Some((pkt, tag)) = self.queue.pop_front() {
            self.queued_bytes -= pkt.size;
            let factor = self.congestion.capacity_factor(at).max(0.05);
            let rate = self.params.rate_bps * factor;
            let service = SimDuration::from_secs_f64(f64::from(pkt.size) * 8.0 / rate)
                .max(SimDuration::from_micros(1));
            self.serving = Some((pkt, tag, at + service));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, HostId};

    fn pkt(size: u32) -> Packet<u32> {
        Packet::new(Addr::new(HostId(0), 1), Addr::new(HostId(1), 2), size, 0)
    }

    fn link(params: LinkParams) -> Link<u32> {
        Link::new(NodeId(0), NodeId(1), params, SimRng::seed_from_u64(5))
    }

    /// Test convenience: drain into a Vec the way the old allocating poll
    /// did, so assertions can index the results.
    fn drain(l: &mut Link<u32>, now: SimTime) -> Vec<(SimTime, Packet<u32>)> {
        let mut out = Vec::new();
        l.poll(now, &mut |at, pkt, _tag| out.push((at, pkt)));
        out
    }

    #[test]
    fn serialization_time_matches_rate() {
        // 1250 bytes at 1 Mbps = 10 ms, plus 5 ms propagation = 15 ms.
        let mut l = link(
            LinkParams::lan()
                .rate(1_000_000.0)
                .delay(SimDuration::from_millis(5)),
        );
        let t0 = SimTime::from_secs(1);
        assert!(l.enqueue(t0, pkt(1250)));
        assert_eq!(l.next_wake(), Some(t0 + SimDuration::from_millis(10)));
        assert!(drain(&mut l, t0 + SimDuration::from_millis(9)).is_empty());
        let out = drain(&mut l, t0 + SimDuration::from_millis(10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, t0 + SimDuration::from_millis(15));
    }

    #[test]
    fn back_to_back_packets_pipeline() {
        let mut l = link(LinkParams::lan().rate(1_000_000.0).delay(SimDuration::ZERO));
        let t0 = SimTime::ZERO;
        for _ in 0..3 {
            assert!(l.enqueue(t0, pkt(1250))); // 10 ms each
        }
        let out = drain(&mut l, SimTime::from_millis(30));
        let times: Vec<u64> = out.iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(l.stats().delivered, 3);
    }

    #[test]
    fn drop_tail_when_queue_full() {
        let mut l = link(LinkParams::lan().rate(1_000.0).queue(3000));
        let t0 = SimTime::ZERO;
        // First packet goes into service immediately (queue emptied), the
        // next two fill the 3000-byte queue, the fourth drops.
        assert!(l.enqueue(t0, pkt(1500)));
        assert!(l.enqueue(t0, pkt(1500)));
        assert!(l.enqueue(t0, pkt(1500)));
        assert!(!l.enqueue(t0, pkt(1500)));
        assert_eq!(l.stats().dropped_queue, 1);
        assert_eq!(l.backlog_bytes(), 3000);
    }

    #[test]
    fn base_loss_drops_roughly_p_fraction() {
        let mut l = link(LinkParams::lan().rate(1e9).loss(0.2));
        let mut dropped = 0;
        for i in 0..5000 {
            let now = SimTime::from_millis(i);
            drain(&mut l, now); // drain so only random loss, not queue overflow, drops
            if !l.enqueue(now, pkt(100)) {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / 5000.0;
        assert!((frac - 0.2).abs() < 0.03, "loss fraction {frac}");
        assert_eq!(l.stats().dropped_loss, dropped);
    }

    #[test]
    fn zero_loss_link_drops_nothing() {
        let mut l = link(LinkParams::lan().rate(1e9).queue(u32::MAX));
        for i in 0..1000 {
            assert!(l.enqueue(SimTime::from_millis(i), pkt(1500)));
        }
        assert_eq!(l.stats().dropped_loss + l.stats().dropped_queue, 0);
    }

    #[test]
    fn congestion_slows_service() {
        // With heavy cross traffic the same packet takes longer to serialize
        // than on a quiet link.
        let quiet = {
            let mut l = link(LinkParams::lan().rate(100_000.0).delay(SimDuration::ZERO));
            l.enqueue(SimTime::ZERO, pkt(1250));
            l.next_wake().unwrap()
        };
        let busy = {
            let params = LinkParams::lan()
                .rate(100_000.0)
                .delay(SimDuration::ZERO)
                .cross_traffic(CongestionParams::heavy(), 0.0);
            let mut l = link(params);
            l.enqueue(SimTime::ZERO, pkt(1250));
            l.next_wake().unwrap()
        };
        assert!(busy > quiet, "busy {busy} quiet {quiet}");
    }

    #[test]
    fn hard_outage_flushes_and_refuses() {
        let mut l = link(LinkParams::lan().rate(1_000.0).queue(64 * 1024));
        let t0 = SimTime::ZERO;
        assert!(l.enqueue(t0, pkt(1500))); // in service
        assert!(l.enqueue(t0, pkt(1500))); // queued
        l.set_down(OutagePolicy::DropInFlight);
        assert!(l.is_down());
        assert_eq!(l.stats().dropped_outage, 2);
        assert!(!l.enqueue(t0, pkt(100)));
        assert_eq!(l.stats().dropped_outage, 3);
        assert_eq!(l.next_wake(), None);
        assert!(drain(&mut l, SimTime::from_secs(100)).is_empty());
        // Recovery: fresh traffic flows again.
        l.set_up(SimTime::from_secs(100));
        assert!(l.enqueue(SimTime::from_secs(100), pkt(1500)));
        assert_eq!(drain(&mut l, SimTime::from_secs(200)).len(), 1);
    }

    #[test]
    fn carried_outage_stalls_then_delivers_everything() {
        let mut l = link(LinkParams::lan().rate(1_000_000.0).delay(SimDuration::ZERO));
        let t0 = SimTime::ZERO;
        assert!(l.enqueue(t0, pkt(1250))); // 10 ms service, in flight
        assert!(l.enqueue(t0, pkt(1250)));
        l.set_down(OutagePolicy::CarryInFlight);
        assert_eq!(l.stats().dropped_outage, 0);
        assert_eq!(l.next_wake(), None);
        // Queue still accepts while stalled.
        assert!(l.enqueue(SimTime::from_millis(5), pkt(1250)));
        assert!(drain(&mut l, SimTime::from_secs(10)).is_empty());
        let up = SimTime::from_secs(20);
        l.set_up(up);
        let out = drain(&mut l, up + SimDuration::from_millis(30));
        let times: Vec<u64> = out.iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![20_010, 20_020, 20_030]);
        assert_eq!(l.stats().delivered, 3);
    }

    #[test]
    fn extra_loss_raises_drop_rate_and_zero_restores_it() {
        let mut l = link(LinkParams::lan().rate(1e9));
        l.set_extra_loss_ppm(300_000); // 30 %
        let mut dropped = 0;
        for i in 0..5000 {
            let now = SimTime::from_millis(i);
            drain(&mut l, now);
            if !l.enqueue(now, pkt(100)) {
                dropped += 1;
            }
        }
        let frac = f64::from(dropped) / 5000.0;
        assert!((frac - 0.3).abs() < 0.03, "burst loss fraction {frac}");
        l.set_extra_loss_ppm(0);
        for i in 5000..6000 {
            let now = SimTime::from_millis(i);
            drain(&mut l, now);
            assert!(l.enqueue(now, pkt(100)));
        }
    }

    #[test]
    fn stats_accumulate_bytes() {
        let mut l = link(LinkParams::lan().rate(1e9));
        l.enqueue(SimTime::ZERO, pkt(700));
        l.enqueue(SimTime::ZERO, pkt(300));
        drain(&mut l, SimTime::from_secs(1));
        assert_eq!(l.stats().bytes_delivered, 1000);
        assert_eq!(l.stats().enqueued, 2);
    }
}
