//! The assembled network: nodes, links, source routes, and packet delivery.
//!
//! [`Network`] is a poll-based component in the smoltcp style: callers
//! `send` packets, `poll(now)` to crank link serializations and propagation,
//! and `recv` delivered packets from per-host inboxes. `next_wake` reports
//! when the network next needs attention.

use std::collections::{HashMap, VecDeque};

use rv_sim::{earliest, EventQueue, SimRng, SimTime};

use crate::link::{Link, LinkParams, LinkStats};
use crate::packet::{HostId, NodeId, Packet};

/// Index of a link within the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// A packet in flight between links, tagged with the next hop to take.
#[derive(Debug, Clone)]
struct Transit<P> {
    packet: Packet<P>,
    /// Index into the route of the hop that has just been traversed.
    hop: usize,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network<P> {
    /// Total number of nodes (hosts + routers).
    num_nodes: u32,
    /// host -> node mapping (hosts are nodes with an inbox).
    host_nodes: Vec<NodeId>,
    links: Vec<Link<P>>,
    /// Source routes: (src host, dst host) -> link sequence.
    routes: HashMap<(HostId, HostId), Vec<LinkId>>,
    /// Packets that finished a link and are propagating.
    in_flight: EventQueue<Transit<P>>,
    inboxes: Vec<VecDeque<Packet<P>>>,
    /// Packets dropped because no route existed.
    unroutable: u64,
    /// Packets dropped mid-flight because their route changed under them.
    misrouted: u64,
    /// Packets delivered end-to-end.
    delivered: u64,
}

impl<P> Network<P> {
    /// Creates an empty network. Use [`crate::NetBuilder`] for convenient
    /// topology construction.
    pub fn new() -> Self {
        Network {
            num_nodes: 0,
            host_nodes: Vec::new(),
            links: Vec::new(),
            routes: HashMap::new(),
            in_flight: EventQueue::new(),
            inboxes: Vec::new(),
            unroutable: 0,
            misrouted: 0,
            delivered: 0,
        }
    }

    /// Adds a host (a node with an inbox). Returns its id.
    pub fn add_host(&mut self) -> HostId {
        let node = self.add_node();
        let host = HostId(self.host_nodes.len() as u32);
        self.host_nodes.push(node);
        self.inboxes.push(VecDeque::new());
        host
    }

    /// Adds an interior node (router) with no inbox.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// The node a host occupies.
    pub fn host_node(&self, host: HostId) -> NodeId {
        self.host_nodes[host.0 as usize]
    }

    /// Adds a unidirectional link. Returns its id.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        params: LinkParams,
        rng: SimRng,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(from, to, params, rng));
        id
    }

    /// Installs the source route from `src` to `dst`.
    ///
    /// Panics if the link sequence is not contiguous from `src`'s node to
    /// `dst`'s node — a broken route would silently blackhole traffic.
    pub fn set_route(&mut self, src: HostId, dst: HostId, route: Vec<LinkId>) {
        assert!(!route.is_empty(), "route must have at least one link");
        let mut at = self.host_node(src);
        for lid in &route {
            let link = &self.links[lid.0 as usize];
            assert_eq!(
                link.from, at,
                "route hop does not start where previous ended"
            );
            at = link.to;
        }
        assert_eq!(at, self.host_node(dst), "route does not end at destination");
        self.routes.insert((src, dst), route);
    }

    /// Whether a route exists between two hosts.
    pub fn has_route(&self, src: HostId, dst: HostId) -> bool {
        self.routes.contains_key(&(src, dst))
    }

    /// Sends a packet at `now`. Returns `false` if no route exists or the
    /// first link dropped it immediately.
    pub fn send(&mut self, now: SimTime, packet: Packet<P>) -> bool {
        let key = (packet.src.host, packet.dst.host);
        let Some(route) = self.routes.get(&key) else {
            self.unroutable += 1;
            return false;
        };
        let first = route[0];
        self.links[first.0 as usize].enqueue(now, packet)
    }

    /// Processes all work due by `now`: link serializations and propagation
    /// arrivals, forwarding packets along their routes. Returns the number
    /// of packets that moved.
    pub fn poll(&mut self, now: SimTime) -> usize {
        let mut moved = 0;
        loop {
            let mut progress = false;

            // Drain link serializations due by now.
            for lid in 0..self.links.len() {
                for (arrive_at, packet) in self.links[lid].poll(now) {
                    match self.hop_index(&packet, LinkId(lid as u32)) {
                        Some(hop) => {
                            self.in_flight.push(arrive_at, Transit { packet, hop });
                            moved += 1;
                        }
                        None => self.misrouted += 1,
                    }
                    progress = true;
                }
            }

            // Deliver propagations due by now.
            while let Some(ev) = self.in_flight.pop_due(now) {
                let Transit { packet, hop } = ev.event;
                let key = (packet.src.host, packet.dst.host);
                // The route existed at send time, but may have been replaced
                // since; a packet stranded by a route change is dropped and
                // counted rather than panicking the simulation.
                let Some(route) = self.routes.get(&key) else {
                    self.misrouted += 1;
                    continue;
                };
                if hop + 1 >= route.len() {
                    self.inboxes[packet.dst.host.0 as usize].push_back(packet);
                    self.delivered += 1;
                } else {
                    let next = route[hop + 1];
                    self.links[next.0 as usize].enqueue(ev.at, packet);
                }
                progress = true;
                moved += 1;
            }

            if !progress {
                return moved;
            }
        }
    }

    /// When the network next needs polling.
    pub fn next_wake(&self) -> Option<SimTime> {
        earliest(
            self.links
                .iter()
                .map(|l| l.next_wake())
                .chain(std::iter::once(self.in_flight.next_time())),
        )
    }

    /// Pops the next delivered packet for `host`, if any.
    pub fn recv(&mut self, host: HostId) -> Option<Packet<P>> {
        self.inboxes[host.0 as usize].pop_front()
    }

    /// Number of packets waiting in `host`'s inbox.
    pub fn inbox_len(&self, host: HostId) -> usize {
        self.inboxes[host.0 as usize].len()
    }

    /// Stats for one link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.links[link.0 as usize].stats()
    }

    /// Count of packets that had no route.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Count of in-flight packets stranded by a mid-flight route change.
    pub fn misrouted(&self) -> u64 {
        self.misrouted
    }

    /// Count of packets delivered end-to-end.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Finds which hop of the packet's route `link` is; `None` when the
    /// route changed while the packet was in flight.
    fn hop_index(&self, packet: &Packet<P>, link: LinkId) -> Option<usize> {
        let key = (packet.src.host, packet.dst.host);
        self.routes
            .get(&key)
            .and_then(|route| route.iter().position(|l| *l == link))
    }
}

impl<P> Default for Network<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Addr;
    use rv_sim::SimDuration;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    /// Two hosts joined by one bidirectional pair of links.
    fn two_hosts(params: LinkParams) -> (Network<u32>, HostId, HostId) {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let (na, nb) = (net.host_node(a), net.host_node(b));
        let ab = net.add_link(na, nb, params, rng());
        let ba = net.add_link(nb, na, params, rng());
        net.set_route(a, b, vec![ab]);
        net.set_route(b, a, vec![ba]);
        (net, a, b)
    }

    #[test]
    fn delivers_end_to_end_with_correct_latency() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(20));
        let (mut net, a, b) = two_hosts(params);
        let t0 = SimTime::ZERO;
        let pkt = Packet::new(Addr::new(a, 100), Addr::new(b, 200), 1250, 7u32);
        assert!(net.send(t0, pkt));
        // 10 ms serialization + 20 ms propagation = 30 ms.
        net.poll(SimTime::from_millis(29));
        assert_eq!(net.inbox_len(b), 0);
        net.poll(SimTime::from_millis(30));
        assert_eq!(net.inbox_len(b), 1);
        let got = net.recv(b).unwrap();
        assert_eq!(got.payload, 7);
        assert_eq!(net.delivered(), 1);
    }

    #[test]
    fn unroutable_packets_counted() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 100, 0);
        assert!(!net.send(SimTime::ZERO, pkt));
        assert_eq!(net.unroutable(), 1);
    }

    #[test]
    fn multi_hop_route_forwards() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let r = net.add_node();
        let params = LinkParams::lan()
            .rate(1e9)
            .delay(SimDuration::from_millis(10));
        let l1 = net.add_link(net.host_node(a), r, params, rng());
        let l2 = net.add_link(r, net.host_node(b), params, rng());
        net.set_route(a, b, vec![l1, l2]);
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 125, 9u32);
        net.send(SimTime::ZERO, pkt);
        // Two 10 ms propagation legs plus ~1 us serialization each.
        net.poll(SimTime::from_millis(21));
        assert_eq!(net.recv(b).unwrap().payload, 9);
    }

    #[test]
    #[should_panic(expected = "does not end at destination")]
    fn set_route_validates_endpoint() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let c = net.add_host();
        let l = net.add_link(net.host_node(a), net.host_node(c), LinkParams::lan(), rng());
        net.set_route(a, b, vec![l]);
    }

    #[test]
    fn next_wake_tracks_pending_work() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(20));
        let (mut net, a, b) = two_hosts(params);
        assert_eq!(net.next_wake(), None);
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 1250, 0u32);
        net.send(SimTime::ZERO, pkt);
        // Serialization finishes at 10 ms.
        assert_eq!(net.next_wake(), Some(SimTime::from_millis(10)));
        net.poll(SimTime::from_millis(10));
        // Now the propagation arrival at 30 ms is pending.
        assert_eq!(net.next_wake(), Some(SimTime::from_millis(30)));
        net.poll(SimTime::from_millis(30));
        assert_eq!(net.next_wake(), None);
    }

    #[test]
    fn bidirectional_traffic_does_not_interfere() {
        let (mut net, a, b) = two_hosts(LinkParams::lan().rate(1e9));
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(a, 1), Addr::new(b, 1), 100, 1u32),
        );
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(b, 1), Addr::new(a, 1), 100, 2u32),
        );
        net.poll(SimTime::from_millis(100));
        assert_eq!(net.recv(b).unwrap().payload, 1);
        assert_eq!(net.recv(a).unwrap().payload, 2);
    }

    #[test]
    fn fifo_order_preserved_end_to_end() {
        let (mut net, a, b) = two_hosts(LinkParams::lan().rate(1e6).queue(1 << 20));
        for i in 0..10u32 {
            net.send(
                SimTime::ZERO,
                Packet::new(Addr::new(a, 1), Addr::new(b, 1), 500, i),
            );
        }
        net.poll(SimTime::from_secs(10));
        let mut got = Vec::new();
        while let Some(p) = net.recv(b) {
            got.push(p.payload);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
