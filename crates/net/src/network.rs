//! The assembled network: nodes, links, source routes, and packet delivery.
//!
//! [`Network`] is a poll-based component in the smoltcp style: callers
//! `send` packets, `poll(now)` to crank link serializations and propagation,
//! and `recv` delivered packets from per-host inboxes. `next_wake` reports
//! when the network next needs attention.
//!
//! The hot path does no per-packet scheduling at all:
//!
//! - Routes are **interned** at [`Network::set_route`] time into an indexed
//!   table (`RouteId` → `Arc<[LinkId]>`). `send` resolves the route once
//!   through a dense host×host matrix (one multiply-add, no hashing) and
//!   every packet carries `(RouteId, hop)` through the links as an opaque
//!   tag, so per-hop forwarding is two array indexes — no map lookup,
//!   no O(route-length) scan for "which hop is this link".
//! - In-flight propagation rides per-link **delay lines** instead of
//!   per-packet timer events. A link is a fixed-delay, rate-limited FIFO:
//!   while it stays busy, serialization completions are monotonic
//!   (service time is at least 1 µs) and the propagation delay is
//!   constant, so arrivals on any one link append in order. The rare
//!   exception — a sparsely polled link drained idle, then handed a
//!   backdated forwarding enqueue — sort-inserts instead. Each line is a
//!   `VecDeque` of in-flight packets stamped with a global push sequence,
//!   kept sorted by `(arrival, seq)`; due heads are merged by that key,
//!   which reproduces exactly the global FIFO pop order a per-packet
//!   timer queue would have produced.
//! - There is no due-time index: a session topology has a handful of
//!   links, so the earliest pending instant — the minimum over each
//!   link's in-service completion and each delay line's head arrival —
//!   is maintained as two eager scalar minima (`service_next`,
//!   `arrival_next`): O(1) folds on enqueue/push, one short scan at poll
//!   exit. A timer wheel at this fan-in costs more in insert/cascade
//!   traffic than the scan it saves (measured: the wheel-indexed
//!   scheduler cascaded ~0.4 entries per delivered packet; the scan
//!   cascades zero).
//!
//! Determinism: links due at the same instant drain in ascending `LinkId`
//! order — the same order the reference scan loop uses — and in-flight
//! arrivals tie-break FIFO on their global push sequence, so the schedule
//! is bit-identical to [`Network::poll_scan_all`] and to the retained
//! per-packet wheel path ([`Network::set_inflight_wheel_mode`]), both kept
//! for the equivalence property tests.

use std::collections::VecDeque;
use std::sync::Arc;

use rv_sim::{earliest, OutagePolicy, SimRng, SimTime, TimerWheel};

use crate::link::{Link, LinkParams, LinkStats};
use crate::packet::{HostId, NodeId, Packet};

/// Index of a link within the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Index of an interned route in the network's route table.
///
/// A route id is issued per [`Network::set_route`] call; replacing the
/// route for a pair issues a fresh id, so packets still carrying the old
/// id are detected as stranded (and counted `misrouted`) instead of being
/// silently forwarded along a path that no longer exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteId(pub u32);

/// Sentinel in the dense route matrix: no route installed for the pair.
const NO_ROUTE: u32 = u32::MAX;

/// Packs `(route, hop)` into the opaque u64 tag a [`Link`] carries.
fn pack_tag(route: RouteId, hop: u32) -> u64 {
    (u64::from(route.0) << 32) | u64::from(hop)
}

/// Inverse of [`pack_tag`].
fn unpack_tag(tag: u64) -> (RouteId, u32) {
    (RouteId((tag >> 32) as u32), tag as u32)
}

/// A packet in flight between links, tagged with its interned route and
/// the hop that has just been traversed.
#[derive(Debug, Clone)]
struct Transit<P> {
    packet: Packet<P>,
    /// The route resolved at send time.
    route: RouteId,
    /// Index into the route of the hop that has just been traversed.
    hop: u32,
}

/// One entry in a per-link delay line: a [`Transit`] plus the arrival
/// instant and the global push sequence that orders same-instant arrivals
/// across lines exactly as the per-packet wheel's internal FIFO did.
#[derive(Debug, Clone)]
struct InFlight<P> {
    at: SimTime,
    seq: u64,
    transit: Transit<P>,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network<P> {
    /// Total number of nodes (hosts + routers).
    num_nodes: u32,
    /// host -> node mapping (hosts are nodes with an inbox).
    host_nodes: Vec<NodeId>,
    links: Vec<Link<P>>,
    /// Source routes as a dense host×host matrix: entry
    /// `src * num_hosts + dst` is the interned route id, or
    /// [`NO_ROUTE`]. Session topologies have a handful of hosts, so the
    /// matrix is tiny and route resolution is one multiply-add — no
    /// hashing, no allocation.
    route_ids: Vec<u32>,
    /// Interned route table, indexed by `RouteId`. Entries are immutable
    /// once issued; replaced routes leave their entry in place so stale
    /// ids can still be resolved for the misrouted check.
    route_table: Vec<Arc<[LinkId]>>,
    /// Per-link delay lines: packets that finished serializing on a link
    /// and are propagating toward its far end, in (monotonic) arrival
    /// order. Indexed by `LinkId`.
    lines: Vec<VecDeque<InFlight<P>>>,
    /// Emptied delay lines recycled across rebuilds, like `spare_inboxes`.
    spare_lines: Vec<VecDeque<InFlight<P>>>,
    /// Global stamp assigned to each in-flight push, so cross-line merges
    /// reproduce the per-packet wheel's FIFO tie-break.
    transit_seq: u64,
    /// Delay-line observability: head exposures the scheduler scan must
    /// notice (a push to an empty line, or a pop that uncovers a
    /// successor), and packets that joined a busy line with no scheduler
    /// interaction at all.
    head_updates: u64,
    bypass_packets: u64,
    /// Earliest in-service completion across all links. Kept *exact* at
    /// every public-API boundary: enqueues fold their (exact) completion
    /// in O(1), drains recompute once at poll exit. Exactness matters —
    /// a conservatively-early value would manufacture spurious wake
    /// instants and change driver-visible timing.
    service_next: Option<SimTime>,
    /// Earliest delay-line head across all lines, maintained with the
    /// same exactness discipline (pushes fold in O(1); the delivery
    /// merge's exit scan recomputes).
    arrival_next: Option<SimTime>,
    /// Reference mode: route in-flight packets through the retained
    /// per-packet wheel instead of the delay lines. Equivalence spec for
    /// the property tests; not for production use.
    inflight_wheel_mode: bool,
    /// Packets that finished a link and are propagating (reference mode
    /// only; empty while delay lines are active).
    in_flight: TimerWheel<Transit<P>>,
    inboxes: Vec<VecDeque<Packet<P>>>,
    /// Emptied inboxes recycled across [`Network::reset_for_rebuild`]
    /// cycles, so a rebuilt topology's hosts start with warm buffers.
    spare_inboxes: Vec<VecDeque<Packet<P>>>,
    /// Packets dropped because no route existed.
    unroutable: u64,
    /// Packets dropped mid-flight because their route changed under them.
    misrouted: u64,
    /// Packets delivered end-to-end.
    delivered: u64,
}

impl<P> Network<P> {
    /// Creates an empty network. Use [`crate::NetBuilder`] for convenient
    /// topology construction.
    pub fn new() -> Self {
        Network {
            num_nodes: 0,
            host_nodes: Vec::new(),
            links: Vec::new(),
            route_ids: Vec::new(),
            route_table: Vec::new(),
            lines: Vec::new(),
            spare_lines: Vec::new(),
            transit_seq: 0,
            head_updates: 0,
            bypass_packets: 0,
            service_next: None,
            arrival_next: None,
            inflight_wheel_mode: false,
            in_flight: TimerWheel::new(),
            inboxes: Vec::new(),
            spare_inboxes: Vec::new(),
            unroutable: 0,
            misrouted: 0,
            delivered: 0,
        }
    }

    /// Adds a host (a node with an inbox). Returns its id.
    pub fn add_host(&mut self) -> HostId {
        let node = self.add_node();
        let host = HostId(self.host_nodes.len() as u32);
        self.host_nodes.push(node);
        self.inboxes
            .push(self.spare_inboxes.pop().unwrap_or_default());
        // Re-stride the dense route matrix for the new host count.
        let n = self.host_nodes.len();
        let old = std::mem::replace(&mut self.route_ids, vec![NO_ROUTE; n * n]);
        for (i, rid) in old.into_iter().enumerate() {
            if rid != NO_ROUTE {
                let (src, dst) = (i / (n - 1), i % (n - 1));
                self.route_ids[src * n + dst] = rid;
            }
        }
        host
    }

    /// The dense-matrix slot for a host pair.
    #[inline]
    fn route_slot(&self, src: HostId, dst: HostId) -> usize {
        src.0 as usize * self.host_nodes.len() + dst.0 as usize
    }

    /// The interned route id currently routing `src` → `dst`, if any.
    /// One multiply-add and one load — the hot path of `send` and both
    /// drain arms.
    #[inline]
    fn route_id(&self, src: HostId, dst: HostId) -> Option<RouteId> {
        match self.route_ids[self.route_slot(src, dst)] {
            NO_ROUTE => None,
            rid => Some(RouteId(rid)),
        }
    }

    /// Adds an interior node (router) with no inbox.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// The node a host occupies.
    pub fn host_node(&self, host: HostId) -> NodeId {
        self.host_nodes[host.0 as usize]
    }

    /// Adds a unidirectional link. Returns its id.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        params: LinkParams,
        rng: SimRng,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        let mut link = Link::new(from, to, params, rng);
        link.set_trace_tag(id.0);
        self.links.push(link);
        self.lines.push(self.spare_lines.pop().unwrap_or_default());
        id
    }

    /// Installs the source route from `src` to `dst`, interning it into
    /// the route table and issuing a fresh [`RouteId`].
    ///
    /// Panics if the link sequence is not contiguous from `src`'s node to
    /// `dst`'s node — a broken route would silently blackhole traffic.
    pub fn set_route(&mut self, src: HostId, dst: HostId, route: Vec<LinkId>) {
        assert!(!route.is_empty(), "route must have at least one link");
        let mut at = self.host_node(src);
        for lid in &route {
            let link = &self.links[lid.0 as usize];
            assert_eq!(
                link.from, at,
                "route hop does not start where previous ended"
            );
            at = link.to;
        }
        assert_eq!(at, self.host_node(dst), "route does not end at destination");
        let rid = RouteId(self.route_table.len() as u32);
        assert!(rid.0 != NO_ROUTE, "route id space exhausted");
        self.route_table.push(route.into());
        let slot = self.route_slot(src, dst);
        self.route_ids[slot] = rid.0;
    }

    /// Interns a pre-validated shared route, as [`Network::set_route`]
    /// but cloning an `Arc` from a [`crate::TopologyPrototype`] instead of
    /// allocating and re-walking the link sequence. Route ids are issued
    /// in call order, so installing a prototype's routes in recorded order
    /// yields the identical id assignment (and therefore identical packet
    /// tags) as the BFS build it was derived from.
    pub fn install_route(&mut self, src: HostId, dst: HostId, route: Arc<[LinkId]>) {
        debug_assert!(!route.is_empty(), "route must have at least one link");
        debug_assert!({
            let mut at = self.host_node(src);
            for lid in route.iter() {
                let link = &self.links[lid.0 as usize];
                assert_eq!(
                    link.from, at,
                    "route hop does not start where previous ended"
                );
                at = link.to;
            }
            at == self.host_node(dst)
        });
        let rid = RouteId(self.route_table.len() as u32);
        assert!(rid.0 != NO_ROUTE, "route id space exhausted");
        self.route_table.push(route);
        let slot = self.route_slot(src, dst);
        self.route_ids[slot] = rid.0;
    }

    /// Whether a route exists between two hosts.
    pub fn has_route(&self, src: HostId, dst: HostId) -> bool {
        self.route_id(src, dst).is_some()
    }

    /// The interned link sequence currently routing `src` → `dst`.
    pub fn route(&self, src: HostId, dst: HostId) -> Option<&[LinkId]> {
        self.route_id(src, dst)
            .map(|rid| &*self.route_table[rid.0 as usize])
    }

    /// Sends a packet at `now`. The route is resolved once, here; the
    /// packet carries its `(RouteId, hop)` through every link. Returns
    /// `false` if no route exists or the first link dropped it immediately.
    pub fn send(&mut self, now: SimTime, packet: Packet<P>) -> bool {
        let Some(rid) = self.route_id(packet.src.host, packet.dst.host) else {
            self.unroutable += 1;
            return false;
        };
        let first = self.route_table[rid.0 as usize][0];
        self.enqueue_on_link(first, now, packet, pack_tag(rid, 0))
    }

    /// Enqueues on a link, folding the link's (possibly new) in-service
    /// completion into the eager service minimum. An already-serving
    /// link's completion never changes under enqueue, so the fold is a
    /// no-op then; an idle→serving transition contributes its exact time.
    fn enqueue_on_link(&mut self, lid: LinkId, now: SimTime, packet: Packet<P>, tag: u64) -> bool {
        let link = &mut self.links[lid.0 as usize];
        let accepted = link.enqueue_tagged(now, packet, tag);
        self.service_next = earliest([self.service_next, link.next_wake()]);
        accepted
    }

    /// Recomputes the eager service minimum from scratch — the O(links)
    /// fallback for mutations that can move a completion *later* (drains,
    /// outages).
    fn recompute_service_next(&mut self) {
        let mut next = None;
        for link in &self.links {
            next = earliest([next, link.next_wake()]);
        }
        self.service_next = next;
    }

    /// Processes all work due by `now`: link serializations and propagation
    /// arrivals, forwarding packets along their routes. Returns the number
    /// of packets that moved.
    ///
    /// Due links are discovered by scanning every link in ascending
    /// `LinkId` order — identical to [`Network::poll_scan_all`] except for
    /// the memoized nothing-due fast path and the per-link due pre-check.
    pub fn poll(&mut self, now: SimTime) -> usize {
        // Fast path: nothing due. Drivers re-poll every settle iteration,
        // so this single cached read is the common case.
        if self.next_wake().is_none_or(|t| t > now) {
            return 0;
        }
        let mut moved = 0;
        let mut any_drained = false;
        loop {
            let mut drained = false;
            for i in 0..self.links.len() {
                if self.links[i].next_wake().is_some_and(|t| t <= now) {
                    moved += self.drain_link(LinkId(i as u32), now, &mut drained);
                }
            }
            any_drained |= drained;
            // Another round is needed only when forwarding parked a
            // serialization completing by `now`: a drained link never
            // stays due (`Link::poll` loops until its completion passes
            // `now`), and drain-side pushes due by `now` are consumed by
            // the deliver pass in this same round.
            let mut requeue = false;
            let mut progress = drained;
            moved += self.deliver_due(now, &mut progress, &mut requeue);
            if !requeue {
                break;
            }
        }
        if any_drained {
            // Drains move completions later; only then is the eager
            // service minimum stale and worth the O(links) refresh.
            self.recompute_service_next();
        }
        moved
    }

    /// Reference scheduler: identical semantics to [`Network::poll`], but
    /// with no fast path and no due pre-check — every link is drained
    /// unconditionally every round. Retained so property tests can prove
    /// the production path delivers the identical packet sequence.
    #[doc(hidden)]
    pub fn poll_scan_all(&mut self, now: SimTime) -> usize {
        let mut moved = 0;
        loop {
            let mut progress = false;
            let mut requeue = false;
            for i in 0..self.links.len() {
                moved += self.drain_link(LinkId(i as u32), now, &mut progress);
            }

            moved += self.deliver_due(now, &mut progress, &mut requeue);
            if !progress {
                self.recompute_service_next();
                return moved;
            }
        }
    }

    /// Drains one link's due serializations into its delay line (or the
    /// reference per-packet wheel), validating each packet's route id.
    /// Returns the number of packets that moved onward (misrouted drops
    /// count as progress but not movement — consistently with the
    /// propagation arm).
    fn drain_link(&mut self, lid: LinkId, now: SimTime, progress: &mut bool) -> usize {
        let Network {
            links,
            host_nodes,
            route_ids,
            lines,
            transit_seq,
            head_updates,
            bypass_packets,
            arrival_next,
            inflight_wheel_mode,
            in_flight,
            misrouted,
            ..
        } = self;
        let num_hosts = host_nodes.len();
        let link = &mut links[lid.0 as usize];
        let mut moved = 0;
        let drained = link.poll(now, &mut |arrive_at, packet, tag| {
            let (route, hop) = unpack_tag(tag);
            // The route existed at send time, but may have been replaced
            // since; a packet stranded by a route change is dropped and
            // counted rather than panicking the simulation.
            let slot = packet.src.host.0 as usize * num_hosts + packet.dst.host.0 as usize;
            if route_ids[slot] == route.0 {
                let transit = Transit { packet, route, hop };
                if *inflight_wheel_mode {
                    in_flight.push(arrive_at, transit);
                } else {
                    // Arrivals on one link are monotonic while the link
                    // stays busy (FIFO serialization with service ≥ 1 µs,
                    // constant propagation), so appending keeps the line
                    // sorted in the overwhelmingly common case. Sparse
                    // polling breaks the guarantee: an idle link drained
                    // at completion C can take a forwarding enqueue
                    // backdated to an arrival instant < C and finish it
                    // before C. Those stragglers sort-insert so the line
                    // stays ordered by `(at, seq)` — the merge's exactness
                    // contract — under any poll pattern.
                    let line = &mut lines[lid.0 as usize];
                    let seq = *transit_seq;
                    *transit_seq += 1;
                    let new_head = if line.back().is_none_or(|b| b.at <= arrive_at) {
                        let was_empty = line.is_empty();
                        line.push_back(InFlight {
                            at: arrive_at,
                            seq,
                            transit,
                        });
                        was_empty
                    } else {
                        // Earlier entries all carry smaller seqs, so
                        // ordering by `at` alone places the straggler
                        // after every same-instant predecessor.
                        let pos = line.partition_point(|e| e.at <= arrive_at);
                        line.insert(
                            pos,
                            InFlight {
                                at: arrive_at,
                                seq,
                                transit,
                            },
                        );
                        pos == 0
                    };
                    if new_head {
                        *head_updates += 1;
                        *arrival_next = earliest([*arrival_next, Some(arrive_at)]);
                    } else {
                        *bypass_packets += 1;
                    }
                }
                moved += 1;
            } else {
                *misrouted += 1;
            }
        });
        if drained > 0 {
            *progress = true;
        }
        moved
    }

    /// Delivers propagation arrivals due by `now`, forwarding each packet
    /// to its next hop or its destination inbox. Returns packets moved.
    fn deliver_due(&mut self, now: SimTime, progress: &mut bool, requeue: &mut bool) -> usize {
        if self.inflight_wheel_mode {
            self.deliver_due_wheel(now, progress, requeue)
        } else {
            self.deliver_due_lines(now, progress, requeue)
        }
    }

    /// Line-mode delivery: k-way merges the due line heads by `(at, seq)`
    /// — the exact global pop order a per-packet timer queue would
    /// produce. The merge is a repeated linear min scan: the line count is
    /// a topology-sized handful, so the scan beats any heap and allocates
    /// nothing.
    fn deliver_due_lines(
        &mut self,
        now: SimTime,
        progress: &mut bool,
        requeue: &mut bool,
    ) -> usize {
        // Exact fast path: `arrival_next` is exact on entry — exact at the
        // poll boundary, and the round's drains only *fold* head arrivals
        // into it (pops happen nowhere but here, and every exit below
        // leaves it exact again) — so one read settles "nothing due".
        if self.arrival_next.is_none_or(|t| t > now) {
            return 0;
        }
        let mut moved = 0;
        loop {
            // One scan finds the earliest due head and the runner-up key;
            // the inner loop then drains a whole *run* from the winning
            // line — every consecutive entry still ahead of the runner-up
            // — so bursts on one link (the common case) cost one scan, not
            // one per packet.
            let mut best: Option<(SimTime, u64, usize)> = None;
            let mut second: Option<(SimTime, u64)> = None;
            let mut min_head: Option<SimTime> = None;
            for (li, line) in self.lines.iter().enumerate() {
                if let Some(head) = line.front() {
                    min_head = earliest([min_head, Some(head.at)]);
                    if head.at <= now {
                        let key = (head.at, head.seq);
                        match best {
                            Some((at, seq, _)) if key < (at, seq) => {
                                second = Some((at, seq));
                                best = Some((head.at, head.seq, li));
                            }
                            Some(_) => {
                                if second.is_none_or(|s| key < s) {
                                    second = Some(key);
                                }
                            }
                            None => best = Some((head.at, head.seq, li)),
                        }
                    }
                }
            }
            let Some((_, _, li)) = best else {
                // Exit scan: no due heads remain, and `min_head` is the
                // exact minimum over every surviving (future) head.
                self.arrival_next = min_head;
                break;
            };
            *progress = true;
            while let Some(head) = self.lines[li].front() {
                if head.at > now || second.is_some_and(|s| s < (head.at, head.seq)) {
                    break;
                }
                let ent = self.lines[li].pop_front().expect("due head checked");
                if !self.lines[li].is_empty() {
                    // The pop exposed a successor head the scheduler scan
                    // must now track.
                    self.head_updates += 1;
                }
                let Transit { packet, route, hop } = ent.transit;
                // Same staleness rule as the serialization arm: a replaced
                // route strands the packet, counted not panicked.
                if self.route_id(packet.src.host, packet.dst.host) != Some(route) {
                    self.misrouted += 1;
                    continue;
                }
                let links = &self.route_table[route.0 as usize];
                if hop as usize + 1 >= links.len() {
                    self.inboxes[packet.dst.host.0 as usize].push_back(packet);
                    self.delivered += 1;
                } else {
                    let next = links[hop as usize + 1];
                    self.enqueue_on_link(next, ent.at, packet, pack_tag(route, hop + 1));
                    // A late-arriving packet (ent.at < now) can finish
                    // serializing by `now`; only then does the caller need
                    // another drain round.
                    if self.links[next.0 as usize]
                        .next_wake()
                        .is_some_and(|t| t <= now)
                    {
                        *requeue = true;
                    }
                }
                moved += 1;
            }
        }
        moved
    }

    /// Reference (wheel-mode) delivery: pops per-packet arrivals in
    /// `(at, seq)` order. Retained as the executable spec the delay-line
    /// equivalence property tests pin against.
    fn deliver_due_wheel(
        &mut self,
        now: SimTime,
        progress: &mut bool,
        requeue: &mut bool,
    ) -> usize {
        let mut moved = 0;
        while let Some(ev) = self.in_flight.pop_due(now) {
            let Transit { packet, route, hop } = ev.event;
            *progress = true;
            // Same staleness rule as the serialization arm: a replaced
            // route strands the packet, counted not panicked.
            if self.route_id(packet.src.host, packet.dst.host) != Some(route) {
                self.misrouted += 1;
                continue;
            }
            let links = &self.route_table[route.0 as usize];
            if hop as usize + 1 >= links.len() {
                self.inboxes[packet.dst.host.0 as usize].push_back(packet);
                self.delivered += 1;
            } else {
                let next = links[hop as usize + 1];
                self.enqueue_on_link(next, ev.at, packet, pack_tag(route, hop + 1));
                if self.links[next.0 as usize]
                    .next_wake()
                    .is_some_and(|t| t <= now)
                {
                    *requeue = true;
                }
            }
            moved += 1;
        }
        moved
    }

    /// When the network next needs polling: the earliest over the eager
    /// service and arrival minima (exact at every public-API boundary)
    /// and the reference wheel's top. Three reads — drivers peek this
    /// several times per settle iteration.
    pub fn next_wake(&self) -> Option<SimTime> {
        earliest([
            self.service_next,
            self.arrival_next,
            self.in_flight.next_time(),
        ])
    }

    /// Pops the next delivered packet for `host`, if any.
    pub fn recv(&mut self, host: HostId) -> Option<Packet<P>> {
        self.inboxes[host.0 as usize].pop_front()
    }

    /// Number of packets waiting in `host`'s inbox.
    pub fn inbox_len(&self, host: HostId) -> usize {
        self.inboxes[host.0 as usize].len()
    }

    /// Stats for one link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.links[link.0 as usize].stats()
    }

    /// Sums every link's counters: the per-path totals a campaign's
    /// failure accounting audits (notably `dropped_outage`, which only
    /// fault injection can produce).
    pub fn total_link_stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for l in &self.links {
            let s = l.stats();
            total.enqueued += s.enqueued;
            total.delivered += s.delivered;
            total.dropped_queue += s.dropped_queue;
            total.dropped_loss += s.dropped_loss;
            total.dropped_outage += s.dropped_outage;
            total.bytes_delivered += s.bytes_delivered;
        }
        total
    }

    /// Takes a link down (fault injection). See [`Link::set_down`] for
    /// the policy semantics. A flush can retire the in-service packet, so
    /// the service minimum is recomputed.
    pub fn set_link_down(&mut self, lid: LinkId, policy: OutagePolicy) {
        self.links[lid.0 as usize].set_down(policy);
        self.recompute_service_next();
    }

    /// Brings a link back up at `now`. A carried queue that resumes
    /// serializing folds its new completion into the service minimum —
    /// the idle→serving transition `enqueue_on_link` normally covers.
    pub fn set_link_up(&mut self, now: SimTime, lid: LinkId) {
        let link = &mut self.links[lid.0 as usize];
        link.set_up(now);
        self.service_next = earliest([self.service_next, link.next_wake()]);
    }

    /// `true` while a link is administratively down.
    pub fn link_is_down(&self, lid: LinkId) -> bool {
        self.links[lid.0 as usize].is_down()
    }

    /// Sets a link's injected extra loss in parts per million (loss
    /// bursts). Zero restores organic behavior exactly.
    pub fn set_link_extra_loss(&mut self, lid: LinkId, ppm: u32) {
        self.links[lid.0 as usize].set_extra_loss_ppm(ppm);
    }

    /// Count of packets that had no route.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Count of in-flight packets stranded by a mid-flight route change.
    pub fn misrouted(&self) -> u64 {
        self.misrouted
    }

    /// Count of packets delivered end-to-end.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total timer-wheel cascade work done by this network since the last
    /// rebuild — the `wheel_cascades` campaign counter. The production
    /// path has no wheel at all, so this is zero outside the reference
    /// per-packet wheel mode.
    pub fn wheel_cascades(&self) -> u64 {
        self.in_flight.cascades()
    }

    /// Delay-line observability: `(head_updates, bypass_packets)`. Head
    /// updates are line-head exposures — the instants the scheduler scan
    /// must track; bypass packets joined a busy line behind an earlier
    /// head — the per-packet scheduling events the delay lines eliminated.
    pub fn delayline_stats(&self) -> (u64, u64) {
        (self.head_updates, self.bypass_packets)
    }

    /// Routes in-flight packets through the retained per-packet wheel
    /// instead of the delay lines. The two paths are observationally
    /// identical (the equivalence property tests pin this); the wheel path
    /// exists only as their executable spec. Call on an idle network —
    /// switching with packets in flight would strand them in the inactive
    /// index.
    #[doc(hidden)]
    pub fn set_inflight_wheel_mode(&mut self, wheel: bool) {
        debug_assert!(
            self.in_flight.next_time().is_none() && self.lines.iter().all(VecDeque::is_empty),
            "mode switch with packets in flight"
        );
        self.inflight_wheel_mode = wheel;
    }

    /// Scrubs every piece of topology and traffic state while keeping the
    /// allocated storage — timer wheels, inboxes, scratch buffers, route
    /// tables — so the next session's rebuild schedules into warm memory.
    /// A reset network is logically indistinguishable from
    /// [`Network::new`]; see [`crate::NetBuilder::build_with_payload_into`].
    pub fn reset_for_rebuild(&mut self) {
        self.num_nodes = 0;
        self.host_nodes.clear();
        self.links.clear();
        self.route_ids.clear();
        self.route_table.clear();
        for mut line in self.lines.drain(..) {
            line.clear();
            self.spare_lines.push(line);
        }
        self.transit_seq = 0;
        self.head_updates = 0;
        self.bypass_packets = 0;
        self.service_next = None;
        self.arrival_next = None;
        self.in_flight.reset();
        for mut q in self.inboxes.drain(..) {
            q.clear();
            self.spare_inboxes.push(q);
        }
        self.unroutable = 0;
        self.misrouted = 0;
        self.delivered = 0;
    }
}

impl<P> Default for Network<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Addr;
    use rv_sim::SimDuration;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    /// Two hosts joined by one bidirectional pair of links.
    fn two_hosts(params: LinkParams) -> (Network<u32>, HostId, HostId) {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let (na, nb) = (net.host_node(a), net.host_node(b));
        let ab = net.add_link(na, nb, params, rng());
        let ba = net.add_link(nb, na, params, rng());
        net.set_route(a, b, vec![ab]);
        net.set_route(b, a, vec![ba]);
        (net, a, b)
    }

    #[test]
    fn delivers_end_to_end_with_correct_latency() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(20));
        let (mut net, a, b) = two_hosts(params);
        let t0 = SimTime::ZERO;
        let pkt = Packet::new(Addr::new(a, 100), Addr::new(b, 200), 1250, 7u32);
        assert!(net.send(t0, pkt));
        // 10 ms serialization + 20 ms propagation = 30 ms.
        net.poll(SimTime::from_millis(29));
        assert_eq!(net.inbox_len(b), 0);
        net.poll(SimTime::from_millis(30));
        assert_eq!(net.inbox_len(b), 1);
        let got = net.recv(b).unwrap();
        assert_eq!(got.payload, 7);
        assert_eq!(net.delivered(), 1);
    }

    #[test]
    fn unroutable_packets_counted() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 100, 0);
        assert!(!net.send(SimTime::ZERO, pkt));
        assert_eq!(net.unroutable(), 1);
    }

    #[test]
    fn multi_hop_route_forwards() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let r = net.add_node();
        let params = LinkParams::lan()
            .rate(1e9)
            .delay(SimDuration::from_millis(10));
        let l1 = net.add_link(net.host_node(a), r, params, rng());
        let l2 = net.add_link(r, net.host_node(b), params, rng());
        net.set_route(a, b, vec![l1, l2]);
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 125, 9u32);
        net.send(SimTime::ZERO, pkt);
        // Two 10 ms propagation legs plus ~1 us serialization each.
        net.poll(SimTime::from_millis(21));
        assert_eq!(net.recv(b).unwrap().payload, 9);
    }

    #[test]
    #[should_panic(expected = "does not end at destination")]
    fn set_route_validates_endpoint() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let c = net.add_host();
        let l = net.add_link(net.host_node(a), net.host_node(c), LinkParams::lan(), rng());
        net.set_route(a, b, vec![l]);
    }

    #[test]
    fn next_wake_tracks_pending_work() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(20));
        let (mut net, a, b) = two_hosts(params);
        assert_eq!(net.next_wake(), None);
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 1250, 0u32);
        net.send(SimTime::ZERO, pkt);
        // Serialization finishes at 10 ms.
        assert_eq!(net.next_wake(), Some(SimTime::from_millis(10)));
        net.poll(SimTime::from_millis(10));
        // Now the propagation arrival at 30 ms is pending.
        assert_eq!(net.next_wake(), Some(SimTime::from_millis(30)));
        net.poll(SimTime::from_millis(30));
        assert_eq!(net.next_wake(), None);
    }

    #[test]
    fn bidirectional_traffic_does_not_interfere() {
        let (mut net, a, b) = two_hosts(LinkParams::lan().rate(1e9));
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(a, 1), Addr::new(b, 1), 100, 1u32),
        );
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(b, 1), Addr::new(a, 1), 100, 2u32),
        );
        net.poll(SimTime::from_millis(100));
        assert_eq!(net.recv(b).unwrap().payload, 1);
        assert_eq!(net.recv(a).unwrap().payload, 2);
    }

    #[test]
    fn outage_blackholes_then_recovers_with_coherent_wakes() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(10));
        let (mut net, a, b) = two_hosts(params);
        let send = |net: &mut Network<u32>, t: SimTime, v: u32| {
            net.send(t, Packet::new(Addr::new(a, 1), Addr::new(b, 1), 1250, v))
        };
        // One packet mid-serialization when the outage hits.
        assert!(send(&mut net, SimTime::ZERO, 1));
        net.set_link_down(LinkId(0), OutagePolicy::DropInFlight);
        assert!(net.link_is_down(LinkId(0)));
        assert!(!send(&mut net, SimTime::from_millis(1), 2));
        net.poll(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(b), 0);
        assert_eq!(net.link_stats(LinkId(0)).dropped_outage, 2);
        // Recovery: traffic flows, next_wake tracks the new serialization.
        let up = SimTime::from_secs(2);
        net.set_link_up(up, LinkId(0));
        assert!(send(&mut net, up, 3));
        assert_eq!(net.next_wake(), Some(up + SimDuration::from_millis(10)));
        net.poll(up + SimDuration::from_millis(20));
        assert_eq!(net.recv(b).unwrap().payload, 3);
    }

    #[test]
    fn carried_outage_delivers_queued_packets_after_recovery() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(10));
        let (mut net, a, b) = two_hosts(params);
        let mk = |v: u32| Packet::new(Addr::new(a, 1), Addr::new(b, 1), 1250, v);
        assert!(net.send(SimTime::ZERO, mk(1)));
        net.set_link_down(LinkId(0), OutagePolicy::CarryInFlight);
        // Accepted into the stalled queue.
        assert!(net.send(SimTime::from_millis(5), mk(2)));
        net.poll(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(b), 0);
        let up = SimTime::from_secs(3);
        net.set_link_up(up, LinkId(0));
        net.poll(up + SimDuration::from_millis(50));
        let mut got = Vec::new();
        while let Some(p) = net.recv(b) {
            got.push(p.payload);
        }
        assert_eq!(got, vec![1, 2]);
        assert_eq!(net.link_stats(LinkId(0)).dropped_outage, 0);
        assert_eq!(net.total_link_stats().delivered, 2);
    }

    #[test]
    fn fifo_order_preserved_end_to_end() {
        let (mut net, a, b) = two_hosts(LinkParams::lan().rate(1e6).queue(1 << 20));
        for i in 0..10u32 {
            net.send(
                SimTime::ZERO,
                Packet::new(Addr::new(a, 1), Addr::new(b, 1), 500, i),
            );
        }
        net.poll(SimTime::from_secs(10));
        let mut got = Vec::new();
        while let Some(p) = net.recv(b) {
            got.push(p.payload);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
