//! The assembled network: nodes, links, source routes, and packet delivery.
//!
//! [`Network`] is a poll-based component in the smoltcp style: callers
//! `send` packets, `poll(now)` to crank link serializations and propagation,
//! and `recv` delivered packets from per-host inboxes. `next_wake` reports
//! when the network next needs attention.
//!
//! The hot path is event-driven rather than scan-the-world:
//!
//! - Routes are **interned** at [`Network::set_route`] time into an indexed
//!   table (`RouteId` → `Arc<[LinkId]>`). `send` resolves the route once
//!   through a dense host×host matrix (one multiply-add, no hashing) and
//!   every packet carries `(RouteId, hop)` through the links as an opaque
//!   tag, so per-hop forwarding is two array indexes — no map lookup,
//!   no O(route-length) scan for "which hop is this link".
//! - A **due-time index** (`link_wake`, a [`TimerWheel<LinkId>`]) tracks
//!   when each serving link completes, so `poll(now)` touches only links
//!   with work due instead of iterating every link. The wheel holds exactly
//!   one entry per serving link (pushed on idle→serving, refreshed after a
//!   drain), so `next_wake` is an O(1) peek with no stale entries — and
//!   schedule/advance are O(1) slot operations instead of heap sifts.
//!   In-flight propagation arrivals ride a second wheel with the same
//!   `(at, seq)` FIFO pop order the old `EventQueue` heap guaranteed.
//!
//! Determinism: links due at the same instant drain in ascending `LinkId`
//! order — the same order the scan-all loop used — and in-flight arrivals
//! tie-break FIFO, so the wake-scheduled schedule is bit-identical to the
//! reference scan ([`Network::poll_scan_all`], retained for the
//! equivalence property tests).

use std::collections::VecDeque;
use std::sync::Arc;

use rv_sim::{earliest, OutagePolicy, SimRng, SimTime, TimerWheel};

use crate::link::{Link, LinkParams, LinkStats};
use crate::packet::{HostId, NodeId, Packet};

/// Index of a link within the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Index of an interned route in the network's route table.
///
/// A route id is issued per [`Network::set_route`] call; replacing the
/// route for a pair issues a fresh id, so packets still carrying the old
/// id are detected as stranded (and counted `misrouted`) instead of being
/// silently forwarded along a path that no longer exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteId(pub u32);

/// Sentinel in the dense route matrix: no route installed for the pair.
const NO_ROUTE: u32 = u32::MAX;

/// Packs `(route, hop)` into the opaque u64 tag a [`Link`] carries.
fn pack_tag(route: RouteId, hop: u32) -> u64 {
    (u64::from(route.0) << 32) | u64::from(hop)
}

/// Inverse of [`pack_tag`].
fn unpack_tag(tag: u64) -> (RouteId, u32) {
    (RouteId((tag >> 32) as u32), tag as u32)
}

/// A packet in flight between links, tagged with its interned route and
/// the hop that has just been traversed.
#[derive(Debug, Clone)]
struct Transit<P> {
    packet: Packet<P>,
    /// The route resolved at send time.
    route: RouteId,
    /// Index into the route of the hop that has just been traversed.
    hop: u32,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network<P> {
    /// Total number of nodes (hosts + routers).
    num_nodes: u32,
    /// host -> node mapping (hosts are nodes with an inbox).
    host_nodes: Vec<NodeId>,
    links: Vec<Link<P>>,
    /// Source routes as a dense host×host matrix: entry
    /// `src * num_hosts + dst` is the interned route id, or
    /// [`NO_ROUTE`]. Session topologies have a handful of hosts, so the
    /// matrix is tiny and route resolution is one multiply-add — no
    /// hashing, no allocation.
    route_ids: Vec<u32>,
    /// Interned route table, indexed by `RouteId`. Entries are immutable
    /// once issued; replaced routes leave their entry in place so stale
    /// ids can still be resolved for the misrouted check.
    route_table: Vec<Arc<[LinkId]>>,
    /// Due-time index over serving links: exactly one entry per link with
    /// a serialization in progress, keyed by its completion time.
    link_wake: TimerWheel<LinkId>,
    /// Scratch buffer for the due links of one poll round (reused so the
    /// hot path never allocates).
    due_scratch: Vec<LinkId>,
    /// Packets that finished a link and are propagating.
    in_flight: TimerWheel<Transit<P>>,
    inboxes: Vec<VecDeque<Packet<P>>>,
    /// Emptied inboxes recycled across [`Network::reset_for_rebuild`]
    /// cycles, so a rebuilt topology's hosts start with warm buffers.
    spare_inboxes: Vec<VecDeque<Packet<P>>>,
    /// Packets dropped because no route existed.
    unroutable: u64,
    /// Packets dropped mid-flight because their route changed under them.
    misrouted: u64,
    /// Packets delivered end-to-end.
    delivered: u64,
}

impl<P> Network<P> {
    /// Creates an empty network. Use [`crate::NetBuilder`] for convenient
    /// topology construction.
    pub fn new() -> Self {
        Network {
            num_nodes: 0,
            host_nodes: Vec::new(),
            links: Vec::new(),
            route_ids: Vec::new(),
            route_table: Vec::new(),
            link_wake: TimerWheel::new(),
            due_scratch: Vec::new(),
            in_flight: TimerWheel::new(),
            inboxes: Vec::new(),
            spare_inboxes: Vec::new(),
            unroutable: 0,
            misrouted: 0,
            delivered: 0,
        }
    }

    /// Adds a host (a node with an inbox). Returns its id.
    pub fn add_host(&mut self) -> HostId {
        let node = self.add_node();
        let host = HostId(self.host_nodes.len() as u32);
        self.host_nodes.push(node);
        self.inboxes
            .push(self.spare_inboxes.pop().unwrap_or_default());
        // Re-stride the dense route matrix for the new host count.
        let n = self.host_nodes.len();
        let old = std::mem::replace(&mut self.route_ids, vec![NO_ROUTE; n * n]);
        for (i, rid) in old.into_iter().enumerate() {
            if rid != NO_ROUTE {
                let (src, dst) = (i / (n - 1), i % (n - 1));
                self.route_ids[src * n + dst] = rid;
            }
        }
        host
    }

    /// The dense-matrix slot for a host pair.
    #[inline]
    fn route_slot(&self, src: HostId, dst: HostId) -> usize {
        src.0 as usize * self.host_nodes.len() + dst.0 as usize
    }

    /// The interned route id currently routing `src` → `dst`, if any.
    /// One multiply-add and one load — the hot path of `send` and both
    /// drain arms.
    #[inline]
    fn route_id(&self, src: HostId, dst: HostId) -> Option<RouteId> {
        match self.route_ids[self.route_slot(src, dst)] {
            NO_ROUTE => None,
            rid => Some(RouteId(rid)),
        }
    }

    /// Adds an interior node (router) with no inbox.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// The node a host occupies.
    pub fn host_node(&self, host: HostId) -> NodeId {
        self.host_nodes[host.0 as usize]
    }

    /// Adds a unidirectional link. Returns its id.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        params: LinkParams,
        rng: SimRng,
    ) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        let mut link = Link::new(from, to, params, rng);
        link.set_trace_tag(id.0);
        self.links.push(link);
        id
    }

    /// Installs the source route from `src` to `dst`, interning it into
    /// the route table and issuing a fresh [`RouteId`].
    ///
    /// Panics if the link sequence is not contiguous from `src`'s node to
    /// `dst`'s node — a broken route would silently blackhole traffic.
    pub fn set_route(&mut self, src: HostId, dst: HostId, route: Vec<LinkId>) {
        assert!(!route.is_empty(), "route must have at least one link");
        let mut at = self.host_node(src);
        for lid in &route {
            let link = &self.links[lid.0 as usize];
            assert_eq!(
                link.from, at,
                "route hop does not start where previous ended"
            );
            at = link.to;
        }
        assert_eq!(at, self.host_node(dst), "route does not end at destination");
        let rid = RouteId(self.route_table.len() as u32);
        assert!(rid.0 != NO_ROUTE, "route id space exhausted");
        self.route_table.push(route.into());
        let slot = self.route_slot(src, dst);
        self.route_ids[slot] = rid.0;
    }

    /// Whether a route exists between two hosts.
    pub fn has_route(&self, src: HostId, dst: HostId) -> bool {
        self.route_id(src, dst).is_some()
    }

    /// The interned link sequence currently routing `src` → `dst`.
    pub fn route(&self, src: HostId, dst: HostId) -> Option<&[LinkId]> {
        self.route_id(src, dst)
            .map(|rid| &*self.route_table[rid.0 as usize])
    }

    /// Sends a packet at `now`. The route is resolved once, here; the
    /// packet carries its `(RouteId, hop)` through every link. Returns
    /// `false` if no route exists or the first link dropped it immediately.
    pub fn send(&mut self, now: SimTime, packet: Packet<P>) -> bool {
        let Some(rid) = self.route_id(packet.src.host, packet.dst.host) else {
            self.unroutable += 1;
            return false;
        };
        let first = self.route_table[rid.0 as usize][0];
        self.enqueue_on_link(first, now, packet, pack_tag(rid, 0))
    }

    /// Enqueues on a link, keeping the due-time index in sync: when the
    /// link transitions idle → serving, its completion time enters
    /// `link_wake`. (A link already serving keeps its existing entry; the
    /// in-service completion time never changes under enqueue.)
    fn enqueue_on_link(&mut self, lid: LinkId, now: SimTime, packet: Packet<P>, tag: u64) -> bool {
        let link = &mut self.links[lid.0 as usize];
        let was_serving = link.next_wake().is_some();
        let accepted = link.enqueue_tagged(now, packet, tag);
        if !was_serving {
            if let Some(t) = link.next_wake() {
                self.link_wake.push(t, lid);
            }
        }
        accepted
    }

    /// Processes all work due by `now`: link serializations and propagation
    /// arrivals, forwarding packets along their routes. Returns the number
    /// of packets that moved.
    ///
    /// Wake-scheduled: only links whose in-service completion is due are
    /// touched, via the `link_wake` index. Ties at one instant drain in
    /// ascending `LinkId` order, matching [`Network::poll_scan_all`].
    pub fn poll(&mut self, now: SimTime) -> usize {
        // Fast path: nothing due. Equivalent to running the loop body once
        // and finding both wheels empty, at the cost of two cached reads —
        // drivers re-poll every settle iteration, so this is the common
        // case.
        if self.next_wake().is_none_or(|t| t > now) {
            return 0;
        }
        let mut moved = 0;
        loop {
            // Collect the links with serializations due. Each serving link
            // has exactly one entry, so popping yields each due link once.
            let mut due = std::mem::take(&mut self.due_scratch);
            due.clear();
            while let Some(ev) = self.link_wake.pop_due(now) {
                due.push(ev.event);
            }
            due.sort_unstable();
            due.dedup();

            let mut progress = false;
            for &lid in &due {
                moved += self.drain_link(lid, now, &mut progress);
            }
            self.due_scratch = due;

            moved += self.deliver_due(now, &mut progress);
            if !progress {
                return moved;
            }
        }
    }

    /// Reference scheduler: identical semantics to [`Network::poll`], but
    /// discovers due links by scanning every link instead of consulting
    /// the due-time index. Retained so property tests can prove the
    /// wake-scheduled path delivers the identical packet sequence; not
    /// for production use (O(links) per call).
    #[doc(hidden)]
    pub fn poll_scan_all(&mut self, now: SimTime) -> usize {
        let mut moved = 0;
        loop {
            // Keep the due-time index coherent for any later wake-scheduled
            // calls: due entries are consumed here exactly as poll() would.
            while self.link_wake.pop_due(now).is_some() {}

            let mut progress = false;
            for i in 0..self.links.len() {
                moved += self.drain_link(LinkId(i as u32), now, &mut progress);
            }

            moved += self.deliver_due(now, &mut progress);
            if !progress {
                return moved;
            }
        }
    }

    /// Drains one link's due serializations into `in_flight`, validating
    /// each packet's route id and re-registering the link's next wake.
    /// Returns the number of packets that moved onward (misrouted drops
    /// count as progress but not movement — consistently with the
    /// propagation arm).
    fn drain_link(&mut self, lid: LinkId, now: SimTime, progress: &mut bool) -> usize {
        let Network {
            links,
            host_nodes,
            route_ids,
            in_flight,
            misrouted,
            ..
        } = self;
        let num_hosts = host_nodes.len();
        let link = &mut links[lid.0 as usize];
        let mut moved = 0;
        let drained = link.poll(now, &mut |arrive_at, packet, tag| {
            let (route, hop) = unpack_tag(tag);
            // The route existed at send time, but may have been replaced
            // since; a packet stranded by a route change is dropped and
            // counted rather than panicking the simulation.
            let slot = packet.src.host.0 as usize * num_hosts + packet.dst.host.0 as usize;
            if route_ids[slot] == route.0 {
                in_flight.push(arrive_at, Transit { packet, route, hop });
                moved += 1;
            } else {
                *misrouted += 1;
            }
        });
        if drained > 0 {
            *progress = true;
            if let Some(t) = link.next_wake() {
                self.link_wake.push(t, lid);
            }
        }
        moved
    }

    /// Delivers propagation arrivals due by `now`, forwarding each packet
    /// to its next hop or its destination inbox. Returns packets moved.
    fn deliver_due(&mut self, now: SimTime, progress: &mut bool) -> usize {
        let mut moved = 0;
        while let Some(ev) = self.in_flight.pop_due(now) {
            let Transit { packet, route, hop } = ev.event;
            *progress = true;
            // Same staleness rule as the serialization arm: a replaced
            // route strands the packet, counted not panicked.
            if self.route_id(packet.src.host, packet.dst.host) != Some(route) {
                self.misrouted += 1;
                continue;
            }
            let links = &self.route_table[route.0 as usize];
            if hop as usize + 1 >= links.len() {
                self.inboxes[packet.dst.host.0 as usize].push_back(packet);
                self.delivered += 1;
            } else {
                let next = links[hop as usize + 1];
                self.enqueue_on_link(next, ev.at, packet, pack_tag(route, hop + 1));
            }
            moved += 1;
        }
        moved
    }

    /// When the network next needs polling. O(1): the earliest link
    /// completion is the top of the due-time index, the earliest arrival
    /// the top of the propagation queue.
    pub fn next_wake(&self) -> Option<SimTime> {
        earliest([self.link_wake.next_time(), self.in_flight.next_time()])
    }

    /// Pops the next delivered packet for `host`, if any.
    pub fn recv(&mut self, host: HostId) -> Option<Packet<P>> {
        self.inboxes[host.0 as usize].pop_front()
    }

    /// Number of packets waiting in `host`'s inbox.
    pub fn inbox_len(&self, host: HostId) -> usize {
        self.inboxes[host.0 as usize].len()
    }

    /// Stats for one link.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        self.links[link.0 as usize].stats()
    }

    /// Sums every link's counters: the per-path totals a campaign's
    /// failure accounting audits (notably `dropped_outage`, which only
    /// fault injection can produce).
    pub fn total_link_stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for l in &self.links {
            let s = l.stats();
            total.enqueued += s.enqueued;
            total.delivered += s.delivered;
            total.dropped_queue += s.dropped_queue;
            total.dropped_loss += s.dropped_loss;
            total.dropped_outage += s.dropped_outage;
            total.bytes_delivered += s.bytes_delivered;
        }
        total
    }

    /// Takes a link down (fault injection). See [`Link::set_down`] for
    /// the policy semantics. A flushed serialization leaves a stale
    /// due-time entry behind; stale entries drain zero packets and are
    /// ignored, so the index stays conservative-correct.
    pub fn set_link_down(&mut self, lid: LinkId, policy: OutagePolicy) {
        self.links[lid.0 as usize].set_down(policy);
    }

    /// Brings a link back up at `now`. If a carried queue resumes
    /// serializing, the link's new completion time enters the due-time
    /// index here — the idle→serving transition `enqueue_on_link`
    /// normally covers.
    pub fn set_link_up(&mut self, now: SimTime, lid: LinkId) {
        let link = &mut self.links[lid.0 as usize];
        link.set_up(now);
        if let Some(t) = link.next_wake() {
            self.link_wake.push(t, lid);
        }
    }

    /// `true` while a link is administratively down.
    pub fn link_is_down(&self, lid: LinkId) -> bool {
        self.links[lid.0 as usize].is_down()
    }

    /// Sets a link's injected extra loss in parts per million (loss
    /// bursts). Zero restores organic behavior exactly.
    pub fn set_link_extra_loss(&mut self, lid: LinkId, ppm: u32) {
        self.links[lid.0 as usize].set_extra_loss_ppm(ppm);
    }

    /// Count of packets that had no route.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Count of in-flight packets stranded by a mid-flight route change.
    pub fn misrouted(&self) -> u64 {
        self.misrouted
    }

    /// Count of packets delivered end-to-end.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total timer-wheel cascade work done by this network's due-time
    /// indexes since the last rebuild — the `wheel_cascades` campaign
    /// counter.
    pub fn wheel_cascades(&self) -> u64 {
        self.link_wake.cascades() + self.in_flight.cascades()
    }

    /// Scrubs every piece of topology and traffic state while keeping the
    /// allocated storage — timer wheels, inboxes, scratch buffers, route
    /// tables — so the next session's rebuild schedules into warm memory.
    /// A reset network is logically indistinguishable from
    /// [`Network::new`]; see [`crate::NetBuilder::build_with_payload_into`].
    pub fn reset_for_rebuild(&mut self) {
        self.num_nodes = 0;
        self.host_nodes.clear();
        self.links.clear();
        self.route_ids.clear();
        self.route_table.clear();
        self.link_wake.reset();
        self.due_scratch.clear();
        self.in_flight.reset();
        for mut q in self.inboxes.drain(..) {
            q.clear();
            self.spare_inboxes.push(q);
        }
        self.unroutable = 0;
        self.misrouted = 0;
        self.delivered = 0;
    }
}

impl<P> Default for Network<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Addr;
    use rv_sim::SimDuration;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    /// Two hosts joined by one bidirectional pair of links.
    fn two_hosts(params: LinkParams) -> (Network<u32>, HostId, HostId) {
        let mut net = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let (na, nb) = (net.host_node(a), net.host_node(b));
        let ab = net.add_link(na, nb, params, rng());
        let ba = net.add_link(nb, na, params, rng());
        net.set_route(a, b, vec![ab]);
        net.set_route(b, a, vec![ba]);
        (net, a, b)
    }

    #[test]
    fn delivers_end_to_end_with_correct_latency() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(20));
        let (mut net, a, b) = two_hosts(params);
        let t0 = SimTime::ZERO;
        let pkt = Packet::new(Addr::new(a, 100), Addr::new(b, 200), 1250, 7u32);
        assert!(net.send(t0, pkt));
        // 10 ms serialization + 20 ms propagation = 30 ms.
        net.poll(SimTime::from_millis(29));
        assert_eq!(net.inbox_len(b), 0);
        net.poll(SimTime::from_millis(30));
        assert_eq!(net.inbox_len(b), 1);
        let got = net.recv(b).unwrap();
        assert_eq!(got.payload, 7);
        assert_eq!(net.delivered(), 1);
    }

    #[test]
    fn unroutable_packets_counted() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 100, 0);
        assert!(!net.send(SimTime::ZERO, pkt));
        assert_eq!(net.unroutable(), 1);
    }

    #[test]
    fn multi_hop_route_forwards() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let r = net.add_node();
        let params = LinkParams::lan()
            .rate(1e9)
            .delay(SimDuration::from_millis(10));
        let l1 = net.add_link(net.host_node(a), r, params, rng());
        let l2 = net.add_link(r, net.host_node(b), params, rng());
        net.set_route(a, b, vec![l1, l2]);
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 125, 9u32);
        net.send(SimTime::ZERO, pkt);
        // Two 10 ms propagation legs plus ~1 us serialization each.
        net.poll(SimTime::from_millis(21));
        assert_eq!(net.recv(b).unwrap().payload, 9);
    }

    #[test]
    #[should_panic(expected = "does not end at destination")]
    fn set_route_validates_endpoint() {
        let mut net: Network<u32> = Network::new();
        let a = net.add_host();
        let b = net.add_host();
        let c = net.add_host();
        let l = net.add_link(net.host_node(a), net.host_node(c), LinkParams::lan(), rng());
        net.set_route(a, b, vec![l]);
    }

    #[test]
    fn next_wake_tracks_pending_work() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(20));
        let (mut net, a, b) = two_hosts(params);
        assert_eq!(net.next_wake(), None);
        let pkt = Packet::new(Addr::new(a, 1), Addr::new(b, 2), 1250, 0u32);
        net.send(SimTime::ZERO, pkt);
        // Serialization finishes at 10 ms.
        assert_eq!(net.next_wake(), Some(SimTime::from_millis(10)));
        net.poll(SimTime::from_millis(10));
        // Now the propagation arrival at 30 ms is pending.
        assert_eq!(net.next_wake(), Some(SimTime::from_millis(30)));
        net.poll(SimTime::from_millis(30));
        assert_eq!(net.next_wake(), None);
    }

    #[test]
    fn bidirectional_traffic_does_not_interfere() {
        let (mut net, a, b) = two_hosts(LinkParams::lan().rate(1e9));
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(a, 1), Addr::new(b, 1), 100, 1u32),
        );
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(b, 1), Addr::new(a, 1), 100, 2u32),
        );
        net.poll(SimTime::from_millis(100));
        assert_eq!(net.recv(b).unwrap().payload, 1);
        assert_eq!(net.recv(a).unwrap().payload, 2);
    }

    #[test]
    fn outage_blackholes_then_recovers_with_coherent_wakes() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(10));
        let (mut net, a, b) = two_hosts(params);
        let send = |net: &mut Network<u32>, t: SimTime, v: u32| {
            net.send(t, Packet::new(Addr::new(a, 1), Addr::new(b, 1), 1250, v))
        };
        // One packet mid-serialization when the outage hits.
        assert!(send(&mut net, SimTime::ZERO, 1));
        net.set_link_down(LinkId(0), OutagePolicy::DropInFlight);
        assert!(net.link_is_down(LinkId(0)));
        assert!(!send(&mut net, SimTime::from_millis(1), 2));
        net.poll(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(b), 0);
        assert_eq!(net.link_stats(LinkId(0)).dropped_outage, 2);
        // Recovery: traffic flows, next_wake tracks the new serialization.
        let up = SimTime::from_secs(2);
        net.set_link_up(up, LinkId(0));
        assert!(send(&mut net, up, 3));
        assert_eq!(net.next_wake(), Some(up + SimDuration::from_millis(10)));
        net.poll(up + SimDuration::from_millis(20));
        assert_eq!(net.recv(b).unwrap().payload, 3);
    }

    #[test]
    fn carried_outage_delivers_queued_packets_after_recovery() {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(10));
        let (mut net, a, b) = two_hosts(params);
        let mk = |v: u32| Packet::new(Addr::new(a, 1), Addr::new(b, 1), 1250, v);
        assert!(net.send(SimTime::ZERO, mk(1)));
        net.set_link_down(LinkId(0), OutagePolicy::CarryInFlight);
        // Accepted into the stalled queue.
        assert!(net.send(SimTime::from_millis(5), mk(2)));
        net.poll(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(b), 0);
        let up = SimTime::from_secs(3);
        net.set_link_up(up, LinkId(0));
        net.poll(up + SimDuration::from_millis(50));
        let mut got = Vec::new();
        while let Some(p) = net.recv(b) {
            got.push(p.payload);
        }
        assert_eq!(got, vec![1, 2]);
        assert_eq!(net.link_stats(LinkId(0)).dropped_outage, 0);
        assert_eq!(net.total_link_stats().delivered, 2);
    }

    #[test]
    fn fifo_order_preserved_end_to_end() {
        let (mut net, a, b) = two_hosts(LinkParams::lan().rate(1e6).queue(1 << 20));
        for i in 0..10u32 {
            net.send(
                SimTime::ZERO,
                Packet::new(Addr::new(a, 1), Addr::new(b, 1), 500, i),
            );
        }
        net.poll(SimTime::from_secs(10));
        let mut got = Vec::new();
        while let Some(p) = net.recv(b) {
            got.push(p.payload);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
