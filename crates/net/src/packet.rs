//! Addresses and packets.
//!
//! The network layer is generic over the payload type `P`: the transport
//! crate instantiates it with its segment types. Carrying structured
//! payloads instead of encoded bytes trades wire-format fidelity for
//! simulation speed; the paper's results depend on packet *dynamics*
//! (timing, loss, queueing), which are fully preserved.
//!
//! Payload bytes inside `P` are shared, not owned: transport segments
//! carry [`rv_sim::PayloadBytes`] sub-slices of the sender's backing
//! buffer, so a packet sitting in a link queue aliases the sender's
//! send buffer (and any retransmit of the same range). The network
//! layer must therefore treat payloads as immutable — it may move,
//! drop, or `Clone` packets (a clone is an `Arc` bump, not a byte
//! copy), but never mutate payload contents in place.

use std::fmt;

/// Identifies a host (an end system that owns sockets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Identifies any node in the topology: hosts and routers alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A transport endpoint: host plus 16-bit port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// The host this endpoint lives on.
    pub host: HostId,
    /// The port number.
    pub port: u16,
}

impl Addr {
    /// Convenience constructor.
    pub fn new(host: HostId, port: u16) -> Self {
        Addr { host, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}:{}", self.host.0, self.port)
    }
}

/// A packet in flight: source/destination endpoints, a size used for
/// serialization/queueing math, and an opaque payload.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Sending endpoint.
    pub src: Addr,
    /// Receiving endpoint.
    pub dst: Addr,
    /// On-the-wire size in bytes (headers included); drives link timing.
    pub size: u32,
    /// Transport-defined payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Builds a packet.
    pub fn new(src: Addr, dst: Addr, size: u32, payload: P) -> Self {
        Packet {
            src,
            dst,
            size,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display() {
        let a = Addr::new(HostId(3), 554);
        assert_eq!(a.to_string(), "h3:554");
    }

    #[test]
    fn addr_equality_and_ordering() {
        let a = Addr::new(HostId(1), 10);
        let b = Addr::new(HostId(1), 20);
        let c = Addr::new(HostId(2), 5);
        assert!(a < b && b < c);
        assert_eq!(a, Addr::new(HostId(1), 10));
    }

    #[test]
    fn packet_carries_payload() {
        let p = Packet::new(
            Addr::new(HostId(0), 1),
            Addr::new(HostId(1), 2),
            1500,
            "data",
        );
        assert_eq!(p.size, 1500);
        assert_eq!(p.payload, "data");
    }
}
