//! Topology builder with automatic shortest-path routing.
//!
//! The study's world model builds a two-tier topology per streaming session:
//! server → server-side access link → transit path (region-dependent delay,
//! loss, cross traffic) → user access link → client. [`NetBuilder`] keeps
//! that construction declarative and installs BFS shortest-hop routes
//! between every pair of hosts automatically.

use std::collections::VecDeque;
use std::sync::Arc;

use rv_sim::SimRng;

use crate::link::LinkParams;
use crate::network::{LinkId, Network};
use crate::packet::{HostId, NodeId};

/// Declarative topology builder.
pub struct NetBuilder {
    net_nodes: u32,
    hosts: Vec<u32>, // node indices that are hosts, in creation order
    links: Vec<(u32, u32, LinkParams)>,
}

/// A node handle issued by the builder before the network exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildNode(u32);

impl Default for NetBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        NetBuilder {
            net_nodes: 0,
            hosts: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Declares a host (endpoint with sockets).
    pub fn host(&mut self) -> BuildNode {
        let n = BuildNode(self.net_nodes);
        self.hosts.push(self.net_nodes);
        self.net_nodes += 1;
        n
    }

    /// Declares an interior router.
    pub fn router(&mut self) -> BuildNode {
        let n = BuildNode(self.net_nodes);
        self.net_nodes += 1;
        n
    }

    /// Adds a unidirectional link.
    pub fn link(&mut self, from: BuildNode, to: BuildNode, params: LinkParams) {
        self.links.push((from.0, to.0, params));
    }

    /// Adds a symmetric pair of links with identical parameters.
    pub fn duplex(&mut self, a: BuildNode, b: BuildNode, params: LinkParams) {
        self.link(a, b, params);
        self.link(b, a, params);
    }

    /// Adds an asymmetric pair (common for consumer access: downstream fat,
    /// upstream thin).
    pub fn duplex_asym(&mut self, a: BuildNode, b: BuildNode, ab: LinkParams, ba: LinkParams) {
        self.link(a, b, ab);
        self.link(b, a, ba);
    }

    /// Materializes the network and installs BFS shortest-hop routes between
    /// every ordered pair of hosts that is connected.
    ///
    /// `rng` seeds the per-link loss/congestion streams (forked, so link
    /// count changes don't perturb unrelated links... each link gets its own
    /// child stream in creation order).
    pub fn build(self, rng: &mut SimRng) -> Network<()>
    where
        (): Sized,
    {
        self.build_with_payload::<()>(rng)
    }

    /// As [`NetBuilder::build`] but for an arbitrary payload type.
    pub fn build_with_payload<P>(self, rng: &mut SimRng) -> Network<P> {
        self.build_onto(rng, Network::new())
    }

    /// As [`NetBuilder::build_with_payload`] but rebuilding onto a retired
    /// network, recycling its storage (timer wheels, inboxes, tables). The
    /// result is logically identical to a fresh build; it merely schedules
    /// into warm memory instead of allocating.
    pub fn build_with_payload_into<P>(self, rng: &mut SimRng, mut net: Network<P>) -> Network<P> {
        net.reset_for_rebuild();
        self.build_onto(rng, net)
    }

    /// Computes this builder's routing structure once, for reuse by
    /// [`NetBuilder::build_from_prototype_into`] across every later build
    /// of the same shape. Routes depend only on node/host declarations and
    /// link endpoints — never on link parameters or RNG draws — so one
    /// prototype serves every session whose topology differs only in
    /// rates, delays, and loss.
    pub fn prototype(&self) -> TopologyPrototype {
        let mut adj: Vec<Vec<(u32, LinkId)>> = vec![Vec::new(); self.net_nodes as usize];
        for (i, (from, to, _)) in self.links.iter().enumerate() {
            adj[*from as usize].push((*to, LinkId(i as u32)));
        }
        // Record routes in exactly the host-pair order `build_onto`
        // installs them, so replaying them through
        // `Network::install_route` issues identical route ids.
        let mut routes = Vec::new();
        for (src_pos, src_idx) in self.hosts.iter().enumerate() {
            let preds = bfs(&adj, *src_idx, self.net_nodes);
            for (dst_pos, dst_idx) in self.hosts.iter().enumerate() {
                if src_idx == dst_idx {
                    continue;
                }
                if let Some(route) = trace(&preds, *src_idx, *dst_idx) {
                    routes.push((
                        HostId(src_pos as u32),
                        HostId(dst_pos as u32),
                        Arc::from(route),
                    ));
                }
            }
        }
        TopologyPrototype {
            net_nodes: self.net_nodes,
            hosts: self.hosts.clone(),
            link_ends: self.links.iter().map(|(f, t, _)| (*f, *t)).collect(),
            routes,
        }
    }

    /// As [`NetBuilder::build_with_payload_into`] but installing the
    /// prototype's pre-computed routes instead of re-running BFS: nodes
    /// and links are created exactly as a full build would (same ids,
    /// same per-link RNG fork order, this builder's own parameters), then
    /// each cached route `Arc` is cloned into the route table in recorded
    /// order. The result is bit-identical to a full build; it merely
    /// skips the per-session routing work and its allocations.
    ///
    /// Panics if the prototype was derived from a structurally different
    /// builder (see [`TopologyPrototype::matches`]).
    pub fn build_from_prototype_into<P>(
        self,
        rng: &mut SimRng,
        mut net: Network<P>,
        proto: &TopologyPrototype,
    ) -> Network<P> {
        assert!(
            proto.matches(&self),
            "topology prototype does not match builder structure"
        );
        net.reset_for_rebuild();
        // Node ids are issued sequentially, so builder index == node id —
        // no mapping table needed.
        for idx in 0..self.net_nodes {
            if self.hosts.contains(&idx) {
                net.add_host();
            } else {
                net.add_node();
            }
        }
        for (from, to, params) in &self.links {
            net.add_link(
                NodeId(*from),
                NodeId(*to),
                *params,
                rng.fork(u64::from(*from) << 32 | u64::from(*to)),
            );
        }
        for (src, dst, route) in &proto.routes {
            net.install_route(*src, *dst, Arc::clone(route));
        }
        net
    }

    fn build_onto<P>(self, rng: &mut SimRng, mut net: Network<P>) -> Network<P> {
        // Create nodes in declaration order so ids match handles.
        let mut node_ids: Vec<NodeId> = Vec::with_capacity(self.net_nodes as usize);
        let mut host_ids: Vec<(u32, HostId)> = Vec::new();
        for idx in 0..self.net_nodes {
            if self.hosts.contains(&idx) {
                let h = net.add_host();
                node_ids.push(net.host_node(h));
                host_ids.push((idx, h));
            } else {
                node_ids.push(net.add_node());
            }
        }

        // Create links, remembering adjacency for routing.
        let mut adj: Vec<Vec<(u32, LinkId)>> = vec![Vec::new(); self.net_nodes as usize];
        for (from, to, params) in &self.links {
            let lid = net.add_link(
                node_ids[*from as usize],
                node_ids[*to as usize],
                *params,
                rng.fork(u64::from(*from) << 32 | u64::from(*to)),
            );
            adj[*from as usize].push((*to, lid));
        }

        // BFS from every host to every other host.
        for (src_idx, src_host) in &host_ids {
            let preds = bfs(&adj, *src_idx, self.net_nodes);
            for (dst_idx, dst_host) in &host_ids {
                if src_idx == dst_idx {
                    continue;
                }
                if let Some(route) = trace(&preds, *src_idx, *dst_idx) {
                    net.set_route(*src_host, *dst_host, route);
                }
            }
        }
        net
    }
}

/// A topology's pre-computed routing structure: the BFS shortest-hop
/// route set for one graph shape, shared across every session that builds
/// it. Produced by [`NetBuilder::prototype`], consumed by
/// [`NetBuilder::build_from_prototype_into`].
///
/// Soundness does not rest on any cache key discipline: the prototype
/// records the exact structure (node count, host set, link endpoints) it
/// was derived from, and every build asserts the builder matches before a
/// single cached route is installed. Routes are a pure function of that
/// structure, so a matching build gets bit-identical routing.
#[derive(Debug)]
pub struct TopologyPrototype {
    net_nodes: u32,
    hosts: Vec<u32>,
    link_ends: Vec<(u32, u32)>,
    /// `(src, dst, links)` in exactly the order a full build would have
    /// installed them — route-id assignment order is part of the
    /// determinism contract.
    routes: Vec<(HostId, HostId, Arc<[LinkId]>)>,
}

impl TopologyPrototype {
    /// `true` when `b` declares exactly the structure this prototype was
    /// derived from: same node count, same hosts, same link endpoints in
    /// the same order. Link *parameters* are deliberately not compared —
    /// routing never depends on them.
    pub fn matches(&self, b: &NetBuilder) -> bool {
        self.net_nodes == b.net_nodes
            && self.hosts == b.hosts
            && self.link_ends.len() == b.links.len()
            && self
                .link_ends
                .iter()
                .zip(b.links.iter())
                .all(|(&(f, t), &(bf, bt, _))| f == bf && t == bt)
    }

    /// Number of cached routes.
    pub fn num_routes(&self) -> usize {
        self.routes.len()
    }

    /// The recorded route between two hosts, if one exists. The route
    /// set is a handful of entries, so a linear scan beats any index.
    pub fn route(&self, src: HostId, dst: HostId) -> Option<&[LinkId]> {
        self.routes
            .iter()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map(|(_, _, links)| links.as_ref())
    }
}

/// A worker-owned pool of [`TopologyPrototype`]s, looked up by structural
/// match. Campaign topologies collapse to one shape per replica count, so
/// the pool holds a handful of entries and lookup is a short linear scan
/// over O(links) endpoint comparisons — cheaper than hashing, and immune
/// to key/structure drift by construction.
#[derive(Debug, Default)]
pub struct PrototypeCache {
    entries: Vec<Arc<TopologyPrototype>>,
}

impl PrototypeCache {
    /// The prototype for `b`'s structure, computing and caching it on
    /// first sight.
    pub fn get_or_build(&mut self, b: &NetBuilder) -> Arc<TopologyPrototype> {
        if let Some(p) = self.entries.iter().find(|p| p.matches(b)) {
            return Arc::clone(p);
        }
        let p = Arc::new(b.prototype());
        self.entries.push(Arc::clone(&p));
        p
    }

    /// Number of distinct structures seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no structure has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// BFS over the directed adjacency, recording the (node, link) predecessor.
fn bfs(adj: &[Vec<(u32, LinkId)>], src: u32, n: u32) -> Vec<Option<(u32, LinkId)>> {
    let mut preds: Vec<Option<(u32, LinkId)>> = vec![None; n as usize];
    let mut visited = vec![false; n as usize];
    visited[src as usize] = true;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        for (v, lid) in &adj[u as usize] {
            if !visited[*v as usize] {
                visited[*v as usize] = true;
                preds[*v as usize] = Some((u, *lid));
                q.push_back(*v);
            }
        }
    }
    preds
}

/// Reconstructs the link sequence from `src` to `dst`, if reachable.
fn trace(preds: &[Option<(u32, LinkId)>], src: u32, dst: u32) -> Option<Vec<LinkId>> {
    let mut route = Vec::new();
    let mut at = dst;
    while at != src {
        let (prev, lid) = preds[at as usize]?;
        route.push(lid);
        at = prev;
    }
    route.reverse();
    Some(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, Packet};
    use rv_sim::{SimDuration, SimTime};

    #[test]
    fn builds_dumbbell_and_routes() {
        let mut b = NetBuilder::new();
        let server = b.host();
        let client = b.host();
        let r1 = b.router();
        let r2 = b.router();
        let fast = LinkParams::lan()
            .rate(1e9)
            .delay(SimDuration::from_millis(1));
        b.duplex(server, r1, fast);
        b.duplex(r1, r2, fast);
        b.duplex(r2, client, fast);
        let mut rng = SimRng::seed_from_u64(2);
        let mut net = b.build_with_payload::<u32>(&mut rng);

        let (s, c) = (HostId(0), HostId(1));
        assert!(net.has_route(s, c));
        assert!(net.has_route(c, s));
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(s, 1), Addr::new(c, 1), 100, 42u32),
        );
        net.poll(SimTime::from_millis(10));
        assert_eq!(net.recv(c).unwrap().payload, 42);
    }

    #[test]
    fn disconnected_hosts_have_no_route() {
        let mut b = NetBuilder::new();
        let _a = b.host();
        let _b = b.host();
        let mut rng = SimRng::seed_from_u64(3);
        let net = b.build(&mut rng);
        assert!(!net.has_route(HostId(0), HostId(1)));
    }

    #[test]
    fn one_way_link_gives_one_way_route() {
        let mut b = NetBuilder::new();
        let a = b.host();
        let c = b.host();
        b.link(a, c, LinkParams::lan());
        let mut rng = SimRng::seed_from_u64(4);
        let net = b.build(&mut rng);
        assert!(net.has_route(HostId(0), HostId(1)));
        assert!(!net.has_route(HostId(1), HostId(0)));
    }

    #[test]
    fn bfs_prefers_fewest_hops() {
        // a -> c directly and a -> r -> c; route must use the direct link.
        let mut b = NetBuilder::new();
        let a = b.host();
        let c = b.host();
        let r = b.router();
        b.link(a, c, LinkParams::lan().delay(SimDuration::from_millis(1)));
        b.link(a, r, LinkParams::lan());
        b.link(r, c, LinkParams::lan());
        let mut rng = SimRng::seed_from_u64(5);
        let mut net = b.build_with_payload::<u8>(&mut rng);
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(HostId(0), 1), Addr::new(HostId(1), 1), 100, 1u8),
        );
        net.poll(SimTime::from_millis(2));
        // Direct link: ~1 ms propagation. Two-hop would be ~10 ms.
        assert_eq!(net.inbox_len(HostId(1)), 1);
    }

    #[test]
    fn asymmetric_duplex_uses_each_direction() {
        let mut b = NetBuilder::new();
        let a = b.host();
        let c = b.host();
        let down = LinkParams::lan().rate(500_000.0);
        let up = LinkParams::lan().rate(50_000.0);
        b.duplex_asym(a, c, down, up);
        let mut rng = SimRng::seed_from_u64(6);
        let mut net = b.build_with_payload::<u8>(&mut rng);
        // 1250 bytes: 20 ms down at 500 kbps, 200 ms up at 50 kbps.
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(HostId(0), 1), Addr::new(HostId(1), 1), 1250, 0),
        );
        net.send(
            SimTime::ZERO,
            Packet::new(Addr::new(HostId(1), 1), Addr::new(HostId(0), 1), 1250, 0),
        );
        net.poll(SimTime::from_millis(26));
        assert_eq!(net.inbox_len(HostId(1)), 1);
        assert_eq!(net.inbox_len(HostId(0)), 0);
        net.poll(SimTime::from_millis(206));
        assert_eq!(net.inbox_len(HostId(0)), 1);
    }
}
