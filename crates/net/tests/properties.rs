//! Property-based tests for network-layer conservation laws: packets are
//! never created from nothing, FIFO order survives any load pattern, and
//! link accounting always balances.

use proptest::prelude::*;
use rv_net::{Addr, HostId, LinkId, LinkParams, NetBuilder, Packet};
use rv_sim::{OutagePolicy, SimDuration, SimRng, SimTime};

/// Two hosts, one duplex link with the given parameters.
fn two_hosts(params: LinkParams, seed: u64) -> rv_net::Network<u32> {
    let mut b = NetBuilder::new();
    let a = b.host();
    let z = b.host();
    b.duplex(a, z, params);
    let mut rng = SimRng::seed_from_u64(seed);
    b.build_with_payload::<u32>(&mut rng)
}

proptest! {
    /// Conservation: delivered + dropped == offered, under any mix of
    /// packet sizes, send times, loss rate, and queue size.
    #[test]
    fn packets_are_conserved(
        sends in prop::collection::vec((1u32..3000, 0u64..5_000), 1..200),
        loss in 0.0f64..0.3,
        queue_kb in 1u32..64,
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(10))
            .queue(queue_kb * 1024)
            .loss(loss);
        let mut net = two_hosts(params, seed);
        let (a, z) = (HostId(0), HostId(1));
        let mut accepted = 0u64;
        for (i, (size, at_ms)) in sends.iter().enumerate() {
            let t = SimTime::from_millis(*at_ms);
            net.poll(t);
            if net.send(t, Packet::new(Addr::new(a, 1), Addr::new(z, 1), *size, i as u32)) {
                accepted += 1;
            }
        }
        net.poll(SimTime::from_secs(600));
        let mut received = 0u64;
        while net.recv(z).is_some() {
            received += 1;
        }
        // Everything the first link accepted must arrive (single hop, no
        // further loss points).
        prop_assert_eq!(received, accepted);
        prop_assert_eq!(net.delivered(), accepted);
        let stats = net.link_stats(rv_net::LinkId(0));
        prop_assert_eq!(stats.enqueued, accepted);
        prop_assert_eq!(
            stats.enqueued + stats.dropped_queue + stats.dropped_loss,
            sends.len() as u64
        );
    }

    /// FIFO: whatever arrives, arrives in send order on a lossless link.
    #[test]
    fn fifo_order_is_preserved(
        sends in prop::collection::vec((1u32..3000, 0u64..2_000), 1..150),
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(500_000.0)
            .delay(SimDuration::from_millis(20))
            .queue(u32::MAX);
        let mut net = two_hosts(params, seed);
        let (a, z) = (HostId(0), HostId(1));
        let mut sorted_sends = sends.clone();
        sorted_sends.sort_by_key(|(_, t)| *t);
        for (i, (size, at_ms)) in sorted_sends.iter().enumerate() {
            let t = SimTime::from_millis(*at_ms);
            net.poll(t);
            net.send(t, Packet::new(Addr::new(a, 1), Addr::new(z, 1), *size, i as u32));
        }
        net.poll(SimTime::from_secs(600));
        let mut prev = None;
        while let Some(p) = net.recv(z) {
            if let Some(prev) = prev {
                prop_assert!(p.payload > prev, "out of order: {} after {prev}", p.payload);
            }
            prev = Some(p.payload);
        }
    }

    /// Latency sanity: delivery is never earlier than serialization +
    /// propagation allows.
    #[test]
    fn no_faster_than_light_delivery(
        size in 1u32..10_000,
        rate_kbps in 10u32..10_000,
        delay_ms in 0u64..500,
    ) {
        let rate = f64::from(rate_kbps) * 1e3;
        let params = LinkParams::lan()
            .rate(rate)
            .delay(SimDuration::from_millis(delay_ms))
            .queue(u32::MAX);
        let mut net = two_hosts(params, 1);
        let (a, z) = (HostId(0), HostId(1));
        net.send(SimTime::ZERO, Packet::new(Addr::new(a, 1), Addr::new(z, 1), size, 0));
        let min_micros =
            (f64::from(size) * 8.0 / rate * 1e6) as u64 + delay_ms * 1000;
        // Just before the bound: nothing may have arrived.
        if min_micros > 1 {
            net.poll(SimTime::from_micros(min_micros - 1));
            prop_assert_eq!(net.inbox_len(z), 0);
        }
        // At (just past) the bound: it must arrive.
        net.poll(SimTime::from_micros(min_micros + 2));
        prop_assert_eq!(net.inbox_len(z), 1);
    }
}

/// A randomized multi-hop world: `nh` hosts hanging off a chain of `nr`
/// routers. Every host pair gets a BFS route through the chain, so routes
/// span 2..=nr+1 links and packets traverse shared interior links.
fn chain_world(nh: usize, nr: usize, params: LinkParams, seed: u64) -> rv_net::Network<u32> {
    let mut b = NetBuilder::new();
    let hosts: Vec<_> = (0..nh).map(|_| b.host()).collect();
    let routers: Vec<_> = (0..nr).map(|_| b.router()).collect();
    for w in routers.windows(2) {
        b.duplex(w[0], w[1], params);
    }
    for (i, h) in hosts.iter().enumerate() {
        b.duplex(*h, routers[i % nr], params);
    }
    let mut rng = SimRng::seed_from_u64(seed);
    b.build_with_payload::<u32>(&mut rng)
}

/// Observable delivery record: which packet reached which host, and at
/// which poll step it became visible.
type Deliveries = Vec<(u64, u32, u32)>;

/// Polls `net` at `at`, then drains every inbox, recording
/// (poll time in µs, host, payload) in drain order.
fn poll_and_drain(
    net: &mut rv_net::Network<u32>,
    nh: usize,
    at: SimTime,
    poll_scan_all: bool,
    out: &mut Deliveries,
) -> usize {
    let moved = if poll_scan_all {
        net.poll_scan_all(at)
    } else {
        net.poll(at)
    };
    for h in 0..nh {
        while let Some(p) = net.recv(HostId(h as u32)) {
            out.push((at.as_micros(), h as u32, p.payload));
        }
    }
    moved
}

proptest! {
    /// The wake-scheduled `Network::poll` is observationally identical to
    /// the retained scan-every-link reference implementation: over
    /// randomized topologies, loss, and traffic, both deliver the same
    /// packets to the same inboxes in the same order at the same poll
    /// steps, with identical aggregate counters. Both worlds are built
    /// from the same seed, so any divergence in per-link RNG draw order
    /// (the determinism contract) also trips the comparison.
    #[test]
    fn wake_scheduled_poll_matches_scan_all(
        nh in 2usize..5,
        nr in 1usize..4,
        sends in prop::collection::vec(
            (0usize..4, 0usize..4, 1u32..1500, 0u64..200),
            1..100,
        ),
        loss in 0.0f64..0.2,
        rate_kbps in 50u32..5_000,
        delay_ms in 0u64..30,
        queue_kb in 2u32..32,
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(f64::from(rate_kbps) * 1e3)
            .delay(SimDuration::from_millis(delay_ms))
            .queue(queue_kb * 1024)
            .loss(loss);
        let mut fast = chain_world(nh, nr, params, seed);
        let mut reference = chain_world(nh, nr, params, seed);

        let mut sends = sends;
        sends.sort_by_key(|(_, _, _, at)| *at);
        let mut fast_log = Deliveries::new();
        let mut ref_log = Deliveries::new();
        for (i, (src, dst, size, at_ms)) in sends.iter().enumerate() {
            let (src, dst) = (HostId((src % nh) as u32), HostId((dst % nh) as u32));
            if src == dst {
                continue;
            }
            let t = SimTime::from_millis(*at_ms);
            let moved_fast = poll_and_drain(&mut fast, nh, t, false, &mut fast_log);
            let moved_ref = poll_and_drain(&mut reference, nh, t, true, &mut ref_log);
            prop_assert_eq!(moved_fast, moved_ref);
            let pkt = Packet::new(Addr::new(src, 1), Addr::new(dst, 1), *size, i as u32);
            let a = fast.send(t, pkt.clone());
            let b = reference.send(t, pkt);
            prop_assert_eq!(a, b);
        }
        // Drain to quiescence in coarse steps so arrival times stay
        // observable, then compare every record.
        for step in 1..=80u64 {
            let t = SimTime::from_millis(200 + step * 50);
            poll_and_drain(&mut fast, nh, t, false, &mut fast_log);
            poll_and_drain(&mut reference, nh, t, true, &mut ref_log);
        }
        prop_assert_eq!(fast_log, ref_log);
        prop_assert_eq!(fast.delivered(), reference.delivered());
        prop_assert_eq!(fast.misrouted(), reference.misrouted());
        prop_assert_eq!(fast.unroutable(), reference.unroutable());
        for l in 0..fast.num_links() {
            prop_assert_eq!(
                fast.link_stats(rv_net::LinkId(l as u32)),
                reference.link_stats(rv_net::LinkId(l as u32))
            );
        }
        prop_assert!(fast.next_wake().is_none(), "drained world still has wakes");
    }

    /// `next_wake` is conservative: polling strictly before it moves
    /// nothing, and polling at it always makes progress — so the reported
    /// wake is never later than an unprocessed due event.
    #[test]
    fn next_wake_never_skips_due_work(
        sends in prop::collection::vec((1u32..2000, 0u64..100), 1..60),
        nr in 1usize..3,
        rate_kbps in 50u32..2_000,
        delay_ms in 0u64..20,
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(f64::from(rate_kbps) * 1e3)
            .delay(SimDuration::from_millis(delay_ms))
            .queue(u32::MAX);
        let mut net = chain_world(2, nr, params, seed);
        let (a, z) = (HostId(0), HostId(1));
        let mut sends = sends;
        sends.sort_by_key(|(_, at)| *at);
        let mut last = SimTime::ZERO;
        for (i, (size, at_ms)) in sends.iter().enumerate() {
            let t = SimTime::from_millis(*at_ms);
            net.poll(t);
            last = t;
            net.send(t, Packet::new(Addr::new(a, 1), Addr::new(z, 1), *size, i as u32));
        }
        let mut guard = 0;
        while let Some(wake) = net.next_wake() {
            guard += 1;
            prop_assert!(guard < 100_000, "wake loop did not converge");
            // A reported wake may never sit in the past: everything due at
            // the last poll time must already have been processed.
            prop_assert!(
                wake > last,
                "next_wake {wake} not after last processed instant {last}"
            );
            let before = SimTime::from_micros(wake.as_micros() - 1);
            if before > last {
                prop_assert_eq!(net.poll(before), 0, "moved before next_wake {wake}");
            }
            prop_assert!(net.poll(wake) > 0, "next_wake {wake} was a dud");
            last = wake;
        }
        // Quiescence (no wake) means nothing is still in flight: every
        // packet that survived the links sits in z's inbox.
        prop_assert_eq!(net.inbox_len(z) as u64, net.delivered());
        prop_assert_eq!(net.misrouted(), 0);
    }
}

/// One step of a randomized fault-and-traffic script; the raw strategy
/// tuple is decoded by [`apply_op`] so both worlds replay the identical
/// sequence.
type ScriptOp = (u64, usize, usize, usize, u32, u32);

/// Everything two equivalent networks must agree on after a script.
type Observables = (Deliveries, u64, u64, u64, Vec<rv_net::LinkStats>);

/// Replays a script of sends, outages, loss bursts, and route changes on a
/// freshly built chain world, polling before every op and then settling to
/// quiescence. `wheel_mode` selects the retained per-packet wheel path —
/// the executable spec the delay lines must match op-for-op.
#[allow(clippy::too_many_arguments)]
fn run_fault_script(
    nh: usize,
    nr: usize,
    params: LinkParams,
    seed: u64,
    ops: &[ScriptOp],
    wheel_mode: bool,
) -> Observables {
    // Rebuild the same builder twice (construction is deterministic) so
    // the prototype's recorded routes are available for route refreshes.
    let mut b = NetBuilder::new();
    let hosts: Vec<_> = (0..nh).map(|_| b.host()).collect();
    let routers: Vec<_> = (0..nr).map(|_| b.router()).collect();
    for w in routers.windows(2) {
        b.duplex(w[0], w[1], params);
    }
    for (i, h) in hosts.iter().enumerate() {
        b.duplex(*h, routers[i % nr], params);
    }
    let proto = b.prototype();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut net = b.build_with_payload::<u32>(&mut rng);
    net.set_inflight_wheel_mode(wheel_mode);

    let mut log = Deliveries::new();
    let mut now_ms = 0u64;
    for (i, &(dt_ms, kind, a, bsel, size, ppm)) in ops.iter().enumerate() {
        now_ms += dt_ms;
        let t = SimTime::from_millis(now_ms);
        poll_and_drain(&mut net, nh, t, false, &mut log);
        match kind % 4 {
            0 => {
                let (src, dst) = (HostId((a % nh) as u32), HostId((bsel % nh) as u32));
                if src != dst {
                    let pkt = Packet::new(Addr::new(src, 1), Addr::new(dst, 1), size, i as u32);
                    net.send(t, pkt);
                }
            }
            1 => {
                let lid = LinkId((a % net.num_links()) as u32);
                if net.link_is_down(lid) {
                    net.set_link_up(t, lid);
                } else if bsel % 2 == 0 {
                    net.set_link_down(lid, OutagePolicy::DropInFlight);
                } else {
                    net.set_link_down(lid, OutagePolicy::CarryInFlight);
                }
            }
            2 => {
                // Loss burst; ppm == 0 restores organic loss exactly.
                let lid = LinkId((a % net.num_links()) as u32);
                net.set_link_extra_loss(lid, ppm);
            }
            _ => {
                // Route refresh: re-installing even the same link sequence
                // issues a fresh route id, stranding every packet already
                // in flight on the old one (they must count `misrouted`).
                let (src, dst) = (HostId((a % nh) as u32), HostId((bsel % nh) as u32));
                if let Some(route) = proto.route(src, dst) {
                    net.set_route(src, dst, route.to_vec());
                }
            }
        }
    }
    // Restore every link so carried queues flush, then settle.
    let end = SimTime::from_millis(now_ms);
    for l in 0..net.num_links() {
        let lid = LinkId(l as u32);
        if net.link_is_down(lid) {
            net.set_link_up(end, lid);
        }
    }
    for step in 1..=120u64 {
        let t = SimTime::from_millis(now_ms + step * 50);
        poll_and_drain(&mut net, nh, t, false, &mut log);
    }
    let stats = (0..net.num_links())
        .map(|l| net.link_stats(LinkId(l as u32)))
        .collect();
    assert!(net.next_wake().is_none(), "world failed to quiesce");
    (
        log,
        net.delivered(),
        net.misrouted(),
        net.unroutable(),
        stats,
    )
}

proptest! {
    /// The per-link delay lines are observationally identical to the
    /// retained per-packet wheel under adversarial conditions the plain
    /// traffic test never reaches: mid-flight outages of both policies,
    /// loss bursts injected and withdrawn, and route refreshes that
    /// strand in-flight packets (which must still count `misrouted`).
    /// Both worlds replay the identical op script and must agree on every
    /// delivery record, aggregate counter, and per-link stat.
    #[test]
    fn delay_lines_match_wheel_reference(
        nh in 2usize..5,
        nr in 1usize..4,
        ops in prop::collection::vec(
            (0u64..40, 0usize..8, 0usize..8, 0usize..8, 1u32..1500, 0u32..400_000),
            1..80,
        ),
        loss in 0.0f64..0.1,
        rate_kbps in 50u32..5_000,
        delay_ms in 0u64..30,
        queue_kb in 2u32..32,
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(f64::from(rate_kbps) * 1e3)
            .delay(SimDuration::from_millis(delay_ms))
            .queue(queue_kb * 1024)
            .loss(loss);
        let lines = run_fault_script(nh, nr, params, seed, &ops, false);
        let wheel = run_fault_script(nh, nr, params, seed, &ops, true);
        prop_assert_eq!(lines.0, wheel.0);
        prop_assert_eq!(lines.1, wheel.1, "delivered diverged");
        prop_assert_eq!(lines.2, wheel.2, "misrouted diverged");
        prop_assert_eq!(lines.3, wheel.3, "unroutable diverged");
        prop_assert_eq!(lines.4, wheel.4);
    }
}
