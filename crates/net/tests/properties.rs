//! Property-based tests for network-layer conservation laws: packets are
//! never created from nothing, FIFO order survives any load pattern, and
//! link accounting always balances.

use proptest::prelude::*;
use rv_net::{Addr, HostId, LinkParams, NetBuilder, Packet};
use rv_sim::{SimDuration, SimRng, SimTime};

/// Two hosts, one duplex link with the given parameters.
fn two_hosts(params: LinkParams, seed: u64) -> rv_net::Network<u32> {
    let mut b = NetBuilder::new();
    let a = b.host();
    let z = b.host();
    b.duplex(a, z, params);
    let mut rng = SimRng::seed_from_u64(seed);
    b.build_with_payload::<u32>(&mut rng)
}

proptest! {
    /// Conservation: delivered + dropped == offered, under any mix of
    /// packet sizes, send times, loss rate, and queue size.
    #[test]
    fn packets_are_conserved(
        sends in prop::collection::vec((1u32..3000, 0u64..5_000), 1..200),
        loss in 0.0f64..0.3,
        queue_kb in 1u32..64,
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(10))
            .queue(queue_kb * 1024)
            .loss(loss);
        let mut net = two_hosts(params, seed);
        let (a, z) = (HostId(0), HostId(1));
        let mut accepted = 0u64;
        for (i, (size, at_ms)) in sends.iter().enumerate() {
            let t = SimTime::from_millis(*at_ms);
            net.poll(t);
            if net.send(t, Packet::new(Addr::new(a, 1), Addr::new(z, 1), *size, i as u32)) {
                accepted += 1;
            }
        }
        net.poll(SimTime::from_secs(600));
        let mut received = 0u64;
        while net.recv(z).is_some() {
            received += 1;
        }
        // Everything the first link accepted must arrive (single hop, no
        // further loss points).
        prop_assert_eq!(received, accepted);
        prop_assert_eq!(net.delivered(), accepted);
        let stats = net.link_stats(rv_net::LinkId(0));
        prop_assert_eq!(stats.enqueued, accepted);
        prop_assert_eq!(
            stats.enqueued + stats.dropped_queue + stats.dropped_loss,
            sends.len() as u64
        );
    }

    /// FIFO: whatever arrives, arrives in send order on a lossless link.
    #[test]
    fn fifo_order_is_preserved(
        sends in prop::collection::vec((1u32..3000, 0u64..2_000), 1..150),
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(500_000.0)
            .delay(SimDuration::from_millis(20))
            .queue(u32::MAX);
        let mut net = two_hosts(params, seed);
        let (a, z) = (HostId(0), HostId(1));
        let mut sorted_sends = sends.clone();
        sorted_sends.sort_by_key(|(_, t)| *t);
        for (i, (size, at_ms)) in sorted_sends.iter().enumerate() {
            let t = SimTime::from_millis(*at_ms);
            net.poll(t);
            net.send(t, Packet::new(Addr::new(a, 1), Addr::new(z, 1), *size, i as u32));
        }
        net.poll(SimTime::from_secs(600));
        let mut prev = None;
        while let Some(p) = net.recv(z) {
            if let Some(prev) = prev {
                prop_assert!(p.payload > prev, "out of order: {} after {prev}", p.payload);
            }
            prev = Some(p.payload);
        }
    }

    /// Latency sanity: delivery is never earlier than serialization +
    /// propagation allows.
    #[test]
    fn no_faster_than_light_delivery(
        size in 1u32..10_000,
        rate_kbps in 10u32..10_000,
        delay_ms in 0u64..500,
    ) {
        let rate = f64::from(rate_kbps) * 1e3;
        let params = LinkParams::lan()
            .rate(rate)
            .delay(SimDuration::from_millis(delay_ms))
            .queue(u32::MAX);
        let mut net = two_hosts(params, 1);
        let (a, z) = (HostId(0), HostId(1));
        net.send(SimTime::ZERO, Packet::new(Addr::new(a, 1), Addr::new(z, 1), size, 0));
        let min_micros =
            (f64::from(size) * 8.0 / rate * 1e6) as u64 + delay_ms * 1000;
        // Just before the bound: nothing may have arrived.
        if min_micros > 1 {
            net.poll(SimTime::from_micros(min_micros - 1));
            prop_assert_eq!(net.inbox_len(z), 0);
        }
        // At (just past) the bound: it must arrive.
        net.poll(SimTime::from_micros(min_micros + 2));
        prop_assert_eq!(net.inbox_len(z), 1);
    }
}
