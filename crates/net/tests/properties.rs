//! Property-based tests for network-layer conservation laws: packets are
//! never created from nothing, FIFO order survives any load pattern, and
//! link accounting always balances.

use proptest::prelude::*;
use rv_net::{Addr, HostId, LinkParams, NetBuilder, Packet};
use rv_sim::{SimDuration, SimRng, SimTime};

/// Two hosts, one duplex link with the given parameters.
fn two_hosts(params: LinkParams, seed: u64) -> rv_net::Network<u32> {
    let mut b = NetBuilder::new();
    let a = b.host();
    let z = b.host();
    b.duplex(a, z, params);
    let mut rng = SimRng::seed_from_u64(seed);
    b.build_with_payload::<u32>(&mut rng)
}

proptest! {
    /// Conservation: delivered + dropped == offered, under any mix of
    /// packet sizes, send times, loss rate, and queue size.
    #[test]
    fn packets_are_conserved(
        sends in prop::collection::vec((1u32..3000, 0u64..5_000), 1..200),
        loss in 0.0f64..0.3,
        queue_kb in 1u32..64,
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(1_000_000.0)
            .delay(SimDuration::from_millis(10))
            .queue(queue_kb * 1024)
            .loss(loss);
        let mut net = two_hosts(params, seed);
        let (a, z) = (HostId(0), HostId(1));
        let mut accepted = 0u64;
        for (i, (size, at_ms)) in sends.iter().enumerate() {
            let t = SimTime::from_millis(*at_ms);
            net.poll(t);
            if net.send(t, Packet::new(Addr::new(a, 1), Addr::new(z, 1), *size, i as u32)) {
                accepted += 1;
            }
        }
        net.poll(SimTime::from_secs(600));
        let mut received = 0u64;
        while net.recv(z).is_some() {
            received += 1;
        }
        // Everything the first link accepted must arrive (single hop, no
        // further loss points).
        prop_assert_eq!(received, accepted);
        prop_assert_eq!(net.delivered(), accepted);
        let stats = net.link_stats(rv_net::LinkId(0));
        prop_assert_eq!(stats.enqueued, accepted);
        prop_assert_eq!(
            stats.enqueued + stats.dropped_queue + stats.dropped_loss,
            sends.len() as u64
        );
    }

    /// FIFO: whatever arrives, arrives in send order on a lossless link.
    #[test]
    fn fifo_order_is_preserved(
        sends in prop::collection::vec((1u32..3000, 0u64..2_000), 1..150),
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(500_000.0)
            .delay(SimDuration::from_millis(20))
            .queue(u32::MAX);
        let mut net = two_hosts(params, seed);
        let (a, z) = (HostId(0), HostId(1));
        let mut sorted_sends = sends.clone();
        sorted_sends.sort_by_key(|(_, t)| *t);
        for (i, (size, at_ms)) in sorted_sends.iter().enumerate() {
            let t = SimTime::from_millis(*at_ms);
            net.poll(t);
            net.send(t, Packet::new(Addr::new(a, 1), Addr::new(z, 1), *size, i as u32));
        }
        net.poll(SimTime::from_secs(600));
        let mut prev = None;
        while let Some(p) = net.recv(z) {
            if let Some(prev) = prev {
                prop_assert!(p.payload > prev, "out of order: {} after {prev}", p.payload);
            }
            prev = Some(p.payload);
        }
    }

    /// Latency sanity: delivery is never earlier than serialization +
    /// propagation allows.
    #[test]
    fn no_faster_than_light_delivery(
        size in 1u32..10_000,
        rate_kbps in 10u32..10_000,
        delay_ms in 0u64..500,
    ) {
        let rate = f64::from(rate_kbps) * 1e3;
        let params = LinkParams::lan()
            .rate(rate)
            .delay(SimDuration::from_millis(delay_ms))
            .queue(u32::MAX);
        let mut net = two_hosts(params, 1);
        let (a, z) = (HostId(0), HostId(1));
        net.send(SimTime::ZERO, Packet::new(Addr::new(a, 1), Addr::new(z, 1), size, 0));
        let min_micros =
            (f64::from(size) * 8.0 / rate * 1e6) as u64 + delay_ms * 1000;
        // Just before the bound: nothing may have arrived.
        if min_micros > 1 {
            net.poll(SimTime::from_micros(min_micros - 1));
            prop_assert_eq!(net.inbox_len(z), 0);
        }
        // At (just past) the bound: it must arrive.
        net.poll(SimTime::from_micros(min_micros + 2));
        prop_assert_eq!(net.inbox_len(z), 1);
    }
}

/// A randomized multi-hop world: `nh` hosts hanging off a chain of `nr`
/// routers. Every host pair gets a BFS route through the chain, so routes
/// span 2..=nr+1 links and packets traverse shared interior links.
fn chain_world(nh: usize, nr: usize, params: LinkParams, seed: u64) -> rv_net::Network<u32> {
    let mut b = NetBuilder::new();
    let hosts: Vec<_> = (0..nh).map(|_| b.host()).collect();
    let routers: Vec<_> = (0..nr).map(|_| b.router()).collect();
    for w in routers.windows(2) {
        b.duplex(w[0], w[1], params);
    }
    for (i, h) in hosts.iter().enumerate() {
        b.duplex(*h, routers[i % nr], params);
    }
    let mut rng = SimRng::seed_from_u64(seed);
    b.build_with_payload::<u32>(&mut rng)
}

/// Observable delivery record: which packet reached which host, and at
/// which poll step it became visible.
type Deliveries = Vec<(u64, u32, u32)>;

/// Polls `net` at `at`, then drains every inbox, recording
/// (poll time in µs, host, payload) in drain order.
fn poll_and_drain(
    net: &mut rv_net::Network<u32>,
    nh: usize,
    at: SimTime,
    poll_scan_all: bool,
    out: &mut Deliveries,
) -> usize {
    let moved = if poll_scan_all {
        net.poll_scan_all(at)
    } else {
        net.poll(at)
    };
    for h in 0..nh {
        while let Some(p) = net.recv(HostId(h as u32)) {
            out.push((at.as_micros(), h as u32, p.payload));
        }
    }
    moved
}

proptest! {
    /// The wake-scheduled `Network::poll` is observationally identical to
    /// the retained scan-every-link reference implementation: over
    /// randomized topologies, loss, and traffic, both deliver the same
    /// packets to the same inboxes in the same order at the same poll
    /// steps, with identical aggregate counters. Both worlds are built
    /// from the same seed, so any divergence in per-link RNG draw order
    /// (the determinism contract) also trips the comparison.
    #[test]
    fn wake_scheduled_poll_matches_scan_all(
        nh in 2usize..5,
        nr in 1usize..4,
        sends in prop::collection::vec(
            (0usize..4, 0usize..4, 1u32..1500, 0u64..200),
            1..100,
        ),
        loss in 0.0f64..0.2,
        rate_kbps in 50u32..5_000,
        delay_ms in 0u64..30,
        queue_kb in 2u32..32,
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(f64::from(rate_kbps) * 1e3)
            .delay(SimDuration::from_millis(delay_ms))
            .queue(queue_kb * 1024)
            .loss(loss);
        let mut fast = chain_world(nh, nr, params, seed);
        let mut reference = chain_world(nh, nr, params, seed);

        let mut sends = sends;
        sends.sort_by_key(|(_, _, _, at)| *at);
        let mut fast_log = Deliveries::new();
        let mut ref_log = Deliveries::new();
        for (i, (src, dst, size, at_ms)) in sends.iter().enumerate() {
            let (src, dst) = (HostId((src % nh) as u32), HostId((dst % nh) as u32));
            if src == dst {
                continue;
            }
            let t = SimTime::from_millis(*at_ms);
            let moved_fast = poll_and_drain(&mut fast, nh, t, false, &mut fast_log);
            let moved_ref = poll_and_drain(&mut reference, nh, t, true, &mut ref_log);
            prop_assert_eq!(moved_fast, moved_ref);
            let pkt = Packet::new(Addr::new(src, 1), Addr::new(dst, 1), *size, i as u32);
            let a = fast.send(t, pkt.clone());
            let b = reference.send(t, pkt);
            prop_assert_eq!(a, b);
        }
        // Drain to quiescence in coarse steps so arrival times stay
        // observable, then compare every record.
        for step in 1..=80u64 {
            let t = SimTime::from_millis(200 + step * 50);
            poll_and_drain(&mut fast, nh, t, false, &mut fast_log);
            poll_and_drain(&mut reference, nh, t, true, &mut ref_log);
        }
        prop_assert_eq!(fast_log, ref_log);
        prop_assert_eq!(fast.delivered(), reference.delivered());
        prop_assert_eq!(fast.misrouted(), reference.misrouted());
        prop_assert_eq!(fast.unroutable(), reference.unroutable());
        for l in 0..fast.num_links() {
            prop_assert_eq!(
                fast.link_stats(rv_net::LinkId(l as u32)),
                reference.link_stats(rv_net::LinkId(l as u32))
            );
        }
        prop_assert!(fast.next_wake().is_none(), "drained world still has wakes");
    }

    /// `next_wake` is conservative: polling strictly before it moves
    /// nothing, and polling at it always makes progress — so the reported
    /// wake is never later than an unprocessed due event.
    #[test]
    fn next_wake_never_skips_due_work(
        sends in prop::collection::vec((1u32..2000, 0u64..100), 1..60),
        nr in 1usize..3,
        rate_kbps in 50u32..2_000,
        delay_ms in 0u64..20,
        seed in any::<u64>(),
    ) {
        let params = LinkParams::lan()
            .rate(f64::from(rate_kbps) * 1e3)
            .delay(SimDuration::from_millis(delay_ms))
            .queue(u32::MAX);
        let mut net = chain_world(2, nr, params, seed);
        let (a, z) = (HostId(0), HostId(1));
        let mut sends = sends;
        sends.sort_by_key(|(_, at)| *at);
        let mut last = SimTime::ZERO;
        for (i, (size, at_ms)) in sends.iter().enumerate() {
            let t = SimTime::from_millis(*at_ms);
            net.poll(t);
            last = t;
            net.send(t, Packet::new(Addr::new(a, 1), Addr::new(z, 1), *size, i as u32));
        }
        let mut guard = 0;
        while let Some(wake) = net.next_wake() {
            guard += 1;
            prop_assert!(guard < 100_000, "wake loop did not converge");
            // A reported wake may never sit in the past: everything due at
            // the last poll time must already have been processed.
            prop_assert!(
                wake > last,
                "next_wake {wake} not after last processed instant {last}"
            );
            let before = SimTime::from_micros(wake.as_micros() - 1);
            if before > last {
                prop_assert_eq!(net.poll(before), 0, "moved before next_wake {wake}");
            }
            prop_assert!(net.poll(wake) > 0, "next_wake {wake} was a dud");
            last = wake;
        }
        // Quiescence (no wake) means nothing is still in flight: every
        // packet that survived the links sits in z's inbox.
        prop_assert_eq!(net.inbox_len(z) as u64, net.delivered());
        prop_assert_eq!(net.misrouted(), 0);
    }
}
