//! # rv-player — the RealPlayer core equivalent
//!
//! Consumes media packets from either transport, reassembles frames
//! ([`Assembler`], with XOR-parity FEC recovery), and plays them through a
//! buffered playout engine ([`Playout`]) with prebuffering, 20-second
//! rebuffer halts, a late-frame grace window, and a CPU decode model that
//! makes old PCs drop frames — the mechanisms behind the paper's frame
//! rate (Figs 11–19) and jitter (Figs 20–25) distributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod playout;
mod reassembly;

pub use playout::{DropReason, Playout, PlayoutConfig, PlayoutEvent, PlayoutState, PlayoutStats};
pub use reassembly::{Assembler, CompleteFrame, ReassemblyStats};

use rv_media::MediaPacket;
use rv_sim::{SimDuration, SimTime};

/// A complete receiving player: depacketization + reassembly + playout.
#[derive(Debug)]
pub struct Player {
    assembler: Assembler,
    playout: Playout,
    frame_scratch: Vec<CompleteFrame>,
}

impl Player {
    /// Creates a player; `cpu_power` scales the decode model (1.0 = typical
    /// new 2001 PC).
    pub fn new(cfg: PlayoutConfig, cpu_power: f64) -> Self {
        Player {
            assembler: Assembler::new(),
            playout: Playout::new(cfg, cpu_power),
            frame_scratch: Vec::new(),
        }
    }

    /// Feeds one received media packet.
    pub fn on_packet(&mut self, now: SimTime, pkt: MediaPacket) {
        self.frame_scratch.clear();
        self.assembler
            .on_packet_into(now, pkt, &mut self.frame_scratch);
        for frame in self.frame_scratch.drain(..) {
            self.playout.push_frame(now, frame);
        }
        if self.assembler.eos() {
            self.playout.source_ended();
        }
    }

    /// Signals that the transport was torn down (no more packets).
    pub fn end_of_source(&mut self) {
        self.playout.source_ended();
    }

    /// Advances playout, returning frame events.
    pub fn poll(&mut self, now: SimTime) -> Vec<PlayoutEvent> {
        let mut events = Vec::new();
        self.poll_into(now, &mut events);
        events
    }

    /// [`Player::poll`] appending events to `out`, so a session loop can
    /// reuse one event buffer instead of allocating per poll.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<PlayoutEvent>) {
        let start = out.len();
        self.playout.poll_into(now, out);
        // Partial frames whose deadline passed will never play; drop them.
        if let Some(last) = out[start..]
            .iter()
            .rev()
            .find_map(|e| e.played_at.is_some().then_some(e.pts))
        {
            self.assembler
                .expire_before(last.saturating_sub(SimDuration::from_secs(1)));
        }
    }

    /// Playout state.
    pub fn state(&self) -> PlayoutState {
        self.playout.state()
    }

    /// Playout counters.
    pub fn playout_stats(&self) -> PlayoutStats {
        self.playout.stats()
    }

    /// Receive-side counters.
    pub fn reassembly_stats(&self) -> ReassemblyStats {
        self.assembler.stats()
    }

    /// Buffered media ahead of the playout cursor.
    pub fn buffered_span(&self) -> SimDuration {
        self.playout.buffered_span()
    }

    /// Drains the interval counters for a receiver report:
    /// `(loss_rate, bytes_received)` since the last call.
    pub fn take_interval(&mut self) -> (f64, u64) {
        self.assembler.take_interval()
    }

    /// When the player next needs polling.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        self.playout.next_wake(now)
    }
}
