//! The playout engine: buffering, the playout clock, rebuffer halts, and
//! the CPU decode model.
//!
//! This is where the paper's two headline metrics are produced. A frame's
//! *playout instant* is `max(due time, completion time)` — frames that
//! arrive on time play exactly on their presentation schedule, late frames
//! play late (that is jitter), and frames later than the grace window are
//! dropped. An emptied buffer halts playback for up to 20 seconds while it
//! refills, exactly as RealPlayer did (paper, Section II.B).

use std::collections::VecDeque;

use rv_sim::trace::{self, TraceEvent};
use rv_sim::{SimDuration, SimTime};

use crate::reassembly::CompleteFrame;

/// Playout engine parameters.
#[derive(Debug, Clone, Copy)]
pub struct PlayoutConfig {
    /// Media to accumulate before playout starts.
    pub prebuffer: SimDuration,
    /// Give up waiting and start anyway after this long.
    pub prebuffer_timeout: SimDuration,
    /// Maximum rebuffer halt (RealPlayer: up to 20 s).
    pub rebuffer_halt: SimDuration,
    /// Media to accumulate before resuming from a rebuffer.
    pub rebuffer_target: SimDuration,
    /// How late a frame may be and still play.
    pub late_grace: SimDuration,
    /// Fixed decode cost per frame at cpu_power = 1.
    pub decode_base: SimDuration,
    /// Additional decode cost per KiB of frame data at cpu_power = 1.
    pub decode_per_kib: SimDuration,
}

impl Default for PlayoutConfig {
    fn default() -> Self {
        PlayoutConfig {
            prebuffer: SimDuration::from_secs(8),
            prebuffer_timeout: SimDuration::from_secs(20),
            rebuffer_halt: SimDuration::from_secs(20),
            rebuffer_target: SimDuration::from_secs(4),
            late_grace: SimDuration::from_millis(400),
            decode_base: SimDuration::from_millis(25),
            decode_per_kib: SimDuration::from_millis(2),
        }
    }
}

/// Lifecycle of the playout engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlayoutState {
    /// Filling the initial buffer.
    Buffering,
    /// Playing frames.
    Playing,
    /// Buffer emptied mid-play; halted while it refills.
    Rebuffering,
    /// Source ended and buffer drained.
    Ended,
}

/// One played or dropped frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayoutEvent {
    /// Encoder frame index.
    pub frame_index: u32,
    /// Rung the frame came from.
    pub rung: u8,
    /// Presentation timestamp.
    pub pts: SimDuration,
    /// When it actually played (`None` = dropped).
    pub played_at: Option<SimTime>,
    /// Why it dropped, when it did.
    pub drop_reason: Option<DropReason>,
}

/// Why a frame was not played.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Arrived after its deadline plus grace.
    Late,
    /// CPU still busy decoding the previous frame.
    Decode,
}

/// Playout counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlayoutStats {
    /// Frames played.
    pub frames_played: u64,
    /// Frames dropped for lateness.
    pub dropped_late: u64,
    /// Frames dropped because the CPU could not keep up.
    pub dropped_decode: u64,
    /// Rebuffer halts.
    pub rebuffer_events: u64,
    /// Total wall time spent halted.
    pub rebuffer_time: SimDuration,
    /// Wall time the playout clock started, if it did.
    pub playback_started_at: Option<SimTime>,
    /// Accumulated decode busy time (CPU utilization numerator).
    pub decode_busy: SimDuration,
}

#[derive(Debug, Clone, Copy)]
struct Buffered {
    frame: CompleteFrame,
}

/// The playout engine.
#[derive(Debug)]
pub struct Playout {
    cfg: PlayoutConfig,
    /// Relative decode speed: 1.0 = typical new PC, lower = slower.
    cpu_power: f64,
    state: PlayoutState,
    /// Frames awaiting playout, sorted by pts micros. Frames arrive
    /// near-ordered and leave strictly from the front, so a sorted ring
    /// buffer (binary-search insert near the back, `pop_front` drain)
    /// replaces a `BTreeMap` with zero steady-state allocation.
    buffer: VecDeque<(u64, Buffered)>,
    session_start: Option<SimTime>,
    /// Wall instant corresponding to `origin` media time.
    epoch: SimTime,
    origin: SimDuration,
    /// Media pts of the last frame handed to playout (for span math).
    cursor: SimDuration,
    rebuffer_since: Option<SimTime>,
    decode_ready_at: SimTime,
    source_ended: bool,
    stats: PlayoutStats,
}

impl Playout {
    /// Creates an engine; `cpu_power` scales decode speed (1.0 = modern
    /// 2001 PC, ~0.1 = an old Pentium MMX with scarce RAM).
    pub fn new(cfg: PlayoutConfig, cpu_power: f64) -> Self {
        assert!(cpu_power > 0.0, "cpu_power must be positive");
        Playout {
            cfg,
            cpu_power,
            state: PlayoutState::Buffering,
            buffer: VecDeque::new(),
            session_start: None,
            epoch: SimTime::ZERO,
            origin: SimDuration::ZERO,
            cursor: SimDuration::ZERO,
            rebuffer_since: None,
            decode_ready_at: SimTime::ZERO,
            source_ended: false,
            stats: PlayoutStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> PlayoutState {
        self.state
    }

    /// Counters.
    pub fn stats(&self) -> PlayoutStats {
        self.stats
    }

    /// Frames waiting in the buffer.
    pub fn buffered_frames(&self) -> usize {
        self.buffer.len()
    }

    /// Media span buffered ahead of the cursor.
    pub fn buffered_span(&self) -> SimDuration {
        match self.buffer.back() {
            Some(&(last, _)) => SimDuration::from_micros(last).saturating_sub(self.cursor),
            None => SimDuration::ZERO,
        }
    }

    /// Tells the engine no more frames will arrive.
    pub fn source_ended(&mut self) {
        self.source_ended = true;
    }

    /// Accepts a completed frame.
    pub fn push_frame(&mut self, now: SimTime, frame: CompleteFrame) {
        if self.session_start.is_none() {
            self.session_start = Some(now);
        }
        // Duplicate pts (e.g. rung-switch overlap): first one wins.
        let pts_us = frame.pts.as_micros();
        let pos = self.buffer.partition_point(|(p, _)| *p < pts_us);
        if self.buffer.get(pos).is_none_or(|(p, _)| *p != pts_us) {
            self.buffer.insert(pos, (pts_us, Buffered { frame }));
        }
    }

    /// Media time currently due, when playing.
    fn media_clock(&self, now: SimTime) -> SimDuration {
        self.origin + now.saturating_since(self.epoch)
    }

    /// Advances the engine, emitting playout events.
    pub fn poll(&mut self, now: SimTime) -> Vec<PlayoutEvent> {
        let mut events = Vec::new();
        self.poll_into(now, &mut events);
        events
    }

    /// [`Playout::poll`] appending events to `out`, so a driver loop can
    /// reuse one buffer for the whole session.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<PlayoutEvent>) {
        match self.state {
            PlayoutState::Buffering => self.poll_buffering(now),
            PlayoutState::Playing => self.poll_playing(now, out),
            PlayoutState::Rebuffering => self.poll_rebuffering(now),
            PlayoutState::Ended => {}
        }
    }

    fn poll_buffering(&mut self, now: SimTime) {
        let Some(start) = self.session_start else {
            return; // nothing arrived yet
        };
        let span = self.buffered_span();
        let timed_out = now.saturating_since(start) >= self.cfg.prebuffer_timeout;
        if span >= self.cfg.prebuffer || (timed_out && !self.buffer.is_empty()) {
            // Playout begins at the earliest buffered frame.
            let first = SimDuration::from_micros(self.buffer.front().expect("nonempty").0);
            self.origin = first;
            self.cursor = first;
            self.epoch = now;
            self.state = PlayoutState::Playing;
            self.stats.playback_started_at = Some(now);
        } else if self.source_ended && self.buffer.is_empty() {
            self.state = PlayoutState::Ended;
        }
    }

    fn poll_playing(&mut self, now: SimTime, events: &mut Vec<PlayoutEvent>) {
        let clock = self.media_clock(now);

        while let Some(&(pts_us, _)) = self.buffer.front() {
            let pts = SimDuration::from_micros(pts_us);
            if pts > clock {
                break;
            }
            let (_, Buffered { frame }) = self.buffer.pop_front().expect("present");
            self.cursor = pts;
            let due_wall = self.epoch + (pts - self.origin);
            // The frame plays when due and present: the later of its
            // deadline and its arrival-completion time.
            let play_at = due_wall.max(frame.completed_at);

            if play_at.saturating_since(due_wall) > self.cfg.late_grace {
                self.stats.dropped_late += 1;
                events.push(PlayoutEvent {
                    frame_index: frame.index,
                    rung: frame.rung,
                    pts,
                    played_at: None,
                    drop_reason: Some(DropReason::Late),
                });
                continue;
            }
            // Decode model: a slow CPU still busy with the previous frame
            // drops this one (RealPlayer's scalable-video client behavior).
            if play_at < self.decode_ready_at {
                self.stats.dropped_decode += 1;
                events.push(PlayoutEvent {
                    frame_index: frame.index,
                    rung: frame.rung,
                    pts,
                    played_at: None,
                    drop_reason: Some(DropReason::Decode),
                });
                continue;
            }
            let decode = (self.cfg.decode_base
                + self
                    .cfg
                    .decode_per_kib
                    .mul_f64(f64::from(frame.size) / 1024.0))
            .mul_f64(1.0 / self.cpu_power);
            self.decode_ready_at = play_at + decode;
            self.stats.decode_busy += decode;
            self.stats.frames_played += 1;
            events.push(PlayoutEvent {
                frame_index: frame.index,
                rung: frame.rung,
                pts,
                played_at: Some(play_at),
                drop_reason: None,
            });
        }

        if self.buffer.is_empty() {
            if self.source_ended {
                self.state = PlayoutState::Ended;
            } else if clock > self.cursor + self.cfg.late_grace {
                // Nothing left although the clock marched past the last
                // frame: the buffer starved.
                self.state = PlayoutState::Rebuffering;
                self.rebuffer_since = Some(now);
                self.stats.rebuffer_events += 1;
                trace::emit(now, || TraceEvent::RebufferStart);
            }
        }
    }

    fn poll_rebuffering(&mut self, now: SimTime) {
        let since = self.rebuffer_since.expect("set on entry");
        let halted = now.saturating_since(since);
        let span = self.buffered_span();
        if span >= self.cfg.rebuffer_target
            || (halted >= self.cfg.rebuffer_halt && !self.buffer.is_empty())
        {
            // Resume: the playout clock skips the halt.
            let first = SimDuration::from_micros(self.buffer.front().expect("nonempty").0);
            self.origin = first;
            self.cursor = first;
            self.epoch = now;
            self.stats.rebuffer_time += halted;
            self.rebuffer_since = None;
            self.state = PlayoutState::Playing;
            trace::emit(now, || TraceEvent::RebufferEnd {
                stalled_us: halted.as_micros(),
            });
        } else if self.source_ended && self.buffer.is_empty() {
            self.stats.rebuffer_time += halted;
            self.rebuffer_since = None;
            self.state = PlayoutState::Ended;
            trace::emit(now, || TraceEvent::RebufferEnd {
                stalled_us: halted.as_micros(),
            });
        }
    }

    /// When the engine next needs polling.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        match self.state {
            PlayoutState::Buffering => self
                .session_start
                .map(|s| (s + self.cfg.prebuffer_timeout).max(now + SimDuration::from_millis(50))),
            PlayoutState::Playing => self.buffer.front().map(|&(pts_us, _)| {
                // A straggler that arrived with pts earlier than the playout
                // origin is already overdue; saturating keeps its wake-up in
                // the present instead of panicking on time underflow.
                let ahead = SimDuration::from_micros(pts_us).saturating_sub(self.origin);
                (self.epoch + ahead).max(now + SimDuration::from_millis(1))
            }),
            PlayoutState::Rebuffering => self
                .rebuffer_since
                .map(|s| (s + self.cfg.rebuffer_halt).max(now + SimDuration::from_millis(50))),
            PlayoutState::Ended => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(pts_ms: u64, completed_at: SimTime) -> CompleteFrame {
        CompleteFrame {
            index: pts_ms as u32,
            rung: 0,
            pts: SimDuration::from_millis(pts_ms),
            size: 1000,
            key: false,
            completed_at,
        }
    }

    fn engine() -> Playout {
        Playout::new(
            PlayoutConfig {
                prebuffer: SimDuration::from_secs(2),
                prebuffer_timeout: SimDuration::from_secs(10),
                rebuffer_target: SimDuration::from_secs(1),
                ..PlayoutConfig::default()
            },
            1.0,
        )
    }

    /// Feeds frames at 10 fps, completed as they "arrive" in real time.
    fn feed(p: &mut Playout, start_ms: u64, count: u64, arrive_offset_ms: u64) {
        for i in 0..count {
            let pts = start_ms + i * 100;
            let arrival = SimTime::from_millis(pts + arrive_offset_ms);
            p.push_frame(arrival, frame(pts, arrival));
        }
    }

    #[test]
    fn starts_after_prebuffer_fills() {
        let mut p = engine();
        assert_eq!(p.state(), PlayoutState::Buffering);
        // 2 s of media arrive instantly.
        for i in 0..21 {
            p.push_frame(
                SimTime::from_millis(10),
                frame(i * 100, SimTime::from_millis(10)),
            );
        }
        p.poll(SimTime::from_millis(20));
        assert_eq!(p.state(), PlayoutState::Playing);
        assert_eq!(
            p.stats().playback_started_at,
            Some(SimTime::from_millis(20))
        );
    }

    #[test]
    fn prebuffer_timeout_forces_start() {
        let mut p = engine();
        p.push_frame(SimTime::from_millis(5), frame(0, SimTime::from_millis(5)));
        p.poll(SimTime::from_secs(5));
        assert_eq!(p.state(), PlayoutState::Buffering);
        p.poll(SimTime::from_secs(11));
        assert_eq!(p.state(), PlayoutState::Playing);
    }

    #[test]
    fn on_time_frames_play_on_schedule() {
        let mut p = engine();
        feed(&mut p, 0, 30, 0); // all present from t=pts
        p.poll(SimTime::from_millis(100)); // starts: epoch=100ms, origin=0
        let events = p.poll(SimTime::from_millis(1100));
        // Frames with pts <= 1s have played exactly at epoch + pts.
        let played: Vec<_> = events.iter().filter(|e| e.played_at.is_some()).collect();
        assert!(played.len() >= 9, "played {}", played.len());
        for e in &played {
            assert_eq!(
                e.played_at.unwrap(),
                SimTime::from_millis(100) + (e.pts - SimDuration::ZERO)
            );
        }
    }

    #[test]
    fn late_frame_plays_late_within_grace() {
        let mut p = engine();
        feed(&mut p, 0, 21, 0);
        p.poll(SimTime::from_millis(0));
        assert_eq!(p.state(), PlayoutState::Playing);
        // A frame due at 2.1 s arrives 200 ms late (grace is 400 ms).
        let arrival = SimTime::from_millis(2100 + 200);
        p.push_frame(arrival, frame(2100, arrival));
        let events = p.poll(SimTime::from_millis(2400));
        let late = events
            .iter()
            .find(|e| e.pts == SimDuration::from_millis(2100))
            .unwrap();
        assert_eq!(late.played_at, Some(arrival));
    }

    #[test]
    fn very_late_frame_drops() {
        let mut p = engine();
        feed(&mut p, 0, 21, 0);
        p.poll(SimTime::from_millis(0));
        let arrival = SimTime::from_millis(2100 + 900); // 900 ms late
        p.push_frame(arrival, frame(2100, arrival));
        let events = p.poll(SimTime::from_secs(4));
        let e = events
            .iter()
            .find(|e| e.pts == SimDuration::from_millis(2100))
            .unwrap();
        assert_eq!(e.drop_reason, Some(DropReason::Late));
        assert!(p.stats().dropped_late >= 1);
    }

    #[test]
    fn starving_buffer_rebuffers_and_resumes() {
        let mut p = engine();
        feed(&mut p, 0, 21, 0); // 2 s of media
        p.poll(SimTime::ZERO);
        assert_eq!(p.state(), PlayoutState::Playing);
        // Play everything out, then the clock marches on with no data.
        p.poll(SimTime::from_secs(3));
        assert_eq!(p.state(), PlayoutState::Rebuffering);
        assert_eq!(p.stats().rebuffer_events, 1);
        // New data arrives: 1 s span triggers resume.
        for i in 0..11 {
            let t = SimTime::from_secs(4);
            p.push_frame(t, frame(5000 + i * 100, t));
        }
        p.poll(SimTime::from_secs(4));
        assert_eq!(p.state(), PlayoutState::Playing);
        assert!(p.stats().rebuffer_time >= SimDuration::from_millis(900));
        // Subsequent playout uses the shifted clock.
        let events = p.poll(SimTime::from_secs(5));
        assert!(events.iter().any(|e| e.played_at.is_some()));
    }

    #[test]
    fn slow_cpu_drops_decode_frames() {
        let cfg = PlayoutConfig {
            prebuffer: SimDuration::from_secs(2),
            ..PlayoutConfig::default()
        };
        let mut slow = Playout::new(cfg, 0.12); // ~25ms+2ms/KiB over 0.12 → >200ms per frame
        feed(&mut slow, 0, 100, 0); // 10 fps
        slow.poll(SimTime::ZERO);
        slow.poll(SimTime::from_secs(12));
        let s = slow.stats();
        assert!(s.dropped_decode > 0, "slow CPU should drop frames");
        // Effective rate well under the 10 fps offered.
        assert!(
            s.frames_played < 60,
            "slow CPU played {} of 100",
            s.frames_played
        );
    }

    #[test]
    fn fast_cpu_plays_everything() {
        let mut p = engine();
        feed(&mut p, 0, 100, 0);
        p.poll(SimTime::ZERO);
        p.source_ended();
        p.poll(SimTime::from_secs(12));
        assert_eq!(p.stats().dropped_decode, 0);
        assert_eq!(p.stats().frames_played, 100);
        assert_eq!(p.state(), PlayoutState::Ended);
    }

    #[test]
    fn ends_when_source_ends_and_drains() {
        let mut p = engine();
        feed(&mut p, 0, 21, 0);
        p.poll(SimTime::ZERO);
        p.source_ended();
        p.poll(SimTime::from_secs(3));
        assert_eq!(p.state(), PlayoutState::Ended);
        assert!(p.poll(SimTime::from_secs(4)).is_empty());
    }

    #[test]
    fn duplicate_pts_keeps_first() {
        let mut p = engine();
        let t = SimTime::from_millis(1);
        let mut f1 = frame(100, t);
        f1.rung = 1;
        let mut f2 = frame(100, t);
        f2.rung = 2;
        p.push_frame(t, f1);
        p.push_frame(t, f2);
        assert_eq!(p.buffered_frames(), 1);
    }
}
