//! Frame reassembly, FEC recovery, and receive-side loss accounting.
//!
//! Media packets arrive fragmented, reordered (UDP), and with gaps; the
//! assembler reconstructs complete frames, applies the parity packets'
//! single-loss recovery, and keeps the sequence-gap statistics the player
//! reports back to the server's rate controller.

use std::collections::{BTreeMap, HashMap, HashSet};

use rv_media::{MediaPacket, PacketKind};
use rv_sim::{SimDuration, SimTime};

/// A fully reassembled video frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteFrame {
    /// Encoder frame index.
    pub index: u32,
    /// SureStream rung it was encoded at.
    pub rung: u8,
    /// Presentation time.
    pub pts: SimDuration,
    /// Total frame bytes.
    pub size: u32,
    /// Keyframe flag.
    pub key: bool,
    /// When the last fragment (or FEC recovery) completed the frame.
    pub completed_at: SimTime,
}

/// Counters for the receive side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Data/audio/parity packets received.
    pub packets_received: u64,
    /// Estimated packets lost (sequence gaps).
    pub packets_lost: u64,
    /// Media payload bytes received.
    pub bytes_received: u64,
    /// Frames completed normally.
    pub frames_completed: u64,
    /// Frames completed only thanks to a parity packet.
    pub frames_recovered: u64,
    /// Audio packets received.
    pub audio_packets: u64,
}

#[derive(Debug)]
struct PartialFrame {
    got: Vec<bool>,
    /// FEC groups this frame has fragments in (tiny: a fragment run spans
    /// at most a couple of groups), so completion can drop the frame from
    /// exactly those groups instead of scanning the whole group map.
    member_of: Vec<u32>,
    received: u16,
    bytes: u32,
    pts: SimDuration,
    key: bool,
}

#[derive(Debug, Default)]
struct FecGroup {
    data_received: u16,
    parity: Option<u16>, // group size announced by the parity packet
    /// Size of the largest member fragment, from the parity packet: the
    /// best available estimate for a recovered fragment's size.
    parity_len: u16,
    /// Incomplete frames that have fragments in this group. A plain Vec:
    /// membership is a handful of frames, and the backing allocation is
    /// recycled when the group retires.
    frames: Vec<(u8, u32)>,
}

/// Reassembles frames from media packets.
#[derive(Debug)]
pub struct Assembler {
    partial: HashMap<(u8, u32), PartialFrame>,
    /// Retired fragment bitmaps, recycled so steady-state reassembly
    /// allocates nothing per frame.
    spare_got: Vec<Vec<bool>>,
    /// Retired group-membership lists, recycled with the bitmaps.
    spare_member: Vec<Vec<u32>>,
    /// Retired FEC-group frame lists, recycled as groups die.
    spare_frames: Vec<Vec<(u8, u32)>>,
    /// Reused key buffer for `expire_before`.
    expire_scratch: Vec<(u8, u32)>,
    /// Frames already delivered; re-received fragments must not rebuild them.
    completed: HashSet<(u8, u32)>,
    groups: BTreeMap<u32, FecGroup>,
    /// Highest transport sequence seen, for loss estimation.
    max_seq: Option<u32>,
    seen_count: u64,
    /// Interval accounting for receiver reports.
    interval_bytes: u64,
    interval_max_seq: Option<u32>,
    interval_seen: u64,
    interval_base_seq: Option<u32>,
    /// Where the next interval's sequence window starts (max seen + 1).
    next_interval_base: u32,
    eos: bool,
    stats: ReassemblyStats,
}

impl Default for Assembler {
    fn default() -> Self {
        Self::new()
    }
}

impl Assembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Assembler {
            partial: HashMap::new(),
            spare_got: Vec::new(),
            spare_member: Vec::new(),
            spare_frames: Vec::new(),
            expire_scratch: Vec::new(),
            completed: HashSet::new(),
            groups: BTreeMap::new(),
            max_seq: None,
            seen_count: 0,
            interval_bytes: 0,
            interval_max_seq: None,
            interval_seen: 0,
            interval_base_seq: None,
            next_interval_base: 0,
            eos: false,
            stats: ReassemblyStats::default(),
        }
    }

    /// Lifetime counters (loss estimate updated on the fly).
    pub fn stats(&self) -> ReassemblyStats {
        let mut s = self.stats;
        s.packets_lost = self.estimated_lost();
        s
    }

    /// `true` once the end-of-stream marker arrived.
    pub fn eos(&self) -> bool {
        self.eos
    }

    /// Sequence-gap loss estimate over the whole session.
    fn estimated_lost(&self) -> u64 {
        match self.max_seq {
            Some(max) => (u64::from(max) + 1).saturating_sub(self.seen_count),
            None => 0,
        }
    }

    /// Processes one packet; returns any frames it completed (usually 0–1,
    /// more after an FEC recovery).
    pub fn on_packet(&mut self, now: SimTime, pkt: MediaPacket) -> Vec<CompleteFrame> {
        let mut out = Vec::new();
        self.on_packet_into(now, pkt, &mut out);
        out
    }

    /// [`Assembler::on_packet`] appending completed frames to `out`, so a
    /// receive loop can reuse one buffer across every packet it feeds.
    pub fn on_packet_into(&mut self, now: SimTime, pkt: MediaPacket, out: &mut Vec<CompleteFrame>) {
        self.stats.packets_received += 1;
        self.stats.bytes_received += pkt.wire_len() as u64;
        self.interval_bytes += pkt.wire_len() as u64;
        self.seen_count += 1;
        self.interval_seen += 1;
        self.max_seq = Some(self.max_seq.map_or(pkt.seq, |m| m.max(pkt.seq)));
        self.interval_max_seq = Some(self.interval_max_seq.map_or(pkt.seq, |m| m.max(pkt.seq)));
        if self.interval_base_seq.is_none() {
            // Anchor at the stream's continuation point, not the first seq
            // seen this interval: a reordered packet from the previous
            // interval would otherwise inflate the expected count and
            // report phantom loss.
            self.interval_base_seq = Some(pkt.seq.min(self.next_interval_base));
        }

        match pkt.kind {
            PacketKind::Audio => {
                self.stats.audio_packets += 1;
            }
            PacketKind::EndOfStream => {
                self.eos = true;
            }
            PacketKind::Video => self.on_video(now, pkt, out),
            PacketKind::Parity => self.on_parity(now, pkt, out),
        }
    }

    fn on_video(&mut self, now: SimTime, pkt: MediaPacket, out: &mut Vec<CompleteFrame>) {
        let key = (pkt.rung, pkt.frame_index);
        if self.completed.contains(&key) {
            return; // duplicate of an already-delivered frame
        }
        let entry = match self.partial.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let mut got = self.spare_got.pop().unwrap_or_default();
                got.clear();
                got.resize(usize::from(pkt.frag_count), false);
                let mut member_of = self.spare_member.pop().unwrap_or_default();
                member_of.clear();
                v.insert(PartialFrame {
                    got,
                    member_of,
                    received: 0,
                    bytes: 0,
                    pts: SimDuration::from_micros(pkt.pts_micros),
                    key: pkt.key,
                })
            }
        };
        let idx = usize::from(pkt.frag_index);
        if idx >= entry.got.len() || entry.got[idx] {
            return; // duplicate or malformed
        }
        entry.got[idx] = true;
        entry.received += 1;
        entry.bytes += u32::from(pkt.payload_len);

        let spare_frames = &mut self.spare_frames;
        let group = self.groups.entry(pkt.group_id).or_insert_with(|| FecGroup {
            frames: spare_frames.pop().unwrap_or_default(),
            ..FecGroup::default()
        });
        group.data_received += 1;

        if entry.received == entry.got.len() as u16 {
            let mut done = self.partial.remove(&key).expect("present");
            self.spare_got.push(std::mem::take(&mut done.got));
            self.completed.insert(key);
            self.stats.frames_completed += 1;
            // The frame left the partial set; drop it from group tracking.
            for gid in done.member_of.drain(..) {
                if let Some(g) = self.groups.get_mut(&gid) {
                    g.frames.retain(|k| *k != key);
                }
            }
            self.spare_member.push(done.member_of);
            out.push(CompleteFrame {
                index: pkt.frame_index,
                rung: pkt.rung,
                pts: done.pts,
                size: done.bytes,
                key: done.key,
                completed_at: now,
            });
        } else {
            if !group.frames.contains(&key) {
                group.frames.push(key);
            }
            if !entry.member_of.contains(&pkt.group_id) {
                entry.member_of.push(pkt.group_id);
            }
            self.try_recover(now, pkt.group_id, out);
        }
    }

    fn on_parity(&mut self, now: SimTime, pkt: MediaPacket, out: &mut Vec<CompleteFrame>) {
        let group = self.groups.entry(pkt.group_id).or_default();
        group.parity = Some(pkt.frag_count);
        group.parity_len = pkt.payload_len;
        self.try_recover(now, pkt.group_id, out);
    }

    /// XOR-parity semantics: if the parity packet arrived and exactly one
    /// data packet of the group is missing, the missing fragment is
    /// reconstructible. In the simulation the fragment's *content* is not
    /// carried, so recovery completes the unique frame in the group that is
    /// one fragment short.
    fn try_recover(&mut self, now: SimTime, group_id: u32, out: &mut Vec<CompleteFrame>) {
        let Some(group) = self.groups.get(&group_id) else {
            return;
        };
        let Some(size) = group.parity else {
            return;
        };
        if group.data_received + 1 != size {
            return;
        }
        // Find the unique one-fragment-short frame touched by this group.
        let mut candidate = None;
        for k in &group.frames {
            let short = self
                .partial
                .get(k)
                .is_some_and(|p| p.received + 1 == p.got.len() as u16);
            if short {
                if candidate.is_some() {
                    return; // ambiguous: more than one frame is short
                }
                candidate = Some(*k);
            }
        }
        let Some(key) = candidate else {
            return;
        };
        let recovered_len = self.groups[&group_id].parity_len;
        let mut done = self.partial.remove(&key).expect("candidate exists");
        self.spare_got.push(std::mem::take(&mut done.got));
        self.completed.insert(key);
        if let Some(mut dead) = self.groups.remove(&group_id) {
            dead.frames.clear();
            self.spare_frames.push(dead.frames);
        }
        for gid in done.member_of.drain(..) {
            if let Some(g) = self.groups.get_mut(&gid) {
                g.frames.retain(|k| *k != key);
            }
        }
        self.spare_member.push(done.member_of);
        self.stats.frames_completed += 1;
        self.stats.frames_recovered += 1;
        // The recovered fragment's bytes are synthesized; the parity
        // packet's length (the largest member) is the best size estimate.
        let recovered = if recovered_len > 0 {
            u32::from(recovered_len)
        } else {
            done.bytes / u32::from(done.received.max(1))
        };
        out.push(CompleteFrame {
            index: key.1,
            rung: key.0,
            pts: done.pts,
            size: done.bytes + recovered,
            key: done.key,
            completed_at: now,
        });
    }

    /// Drains the per-interval receiver-report counters, returning
    /// `(loss_rate, received_bytes)` since the previous call.
    pub fn take_interval(&mut self) -> (f64, u64) {
        let loss = match (self.interval_base_seq, self.interval_max_seq) {
            (Some(base), Some(max)) => {
                let expected = u64::from(max) - u64::from(base) + 1;
                let lost = expected.saturating_sub(self.interval_seen);
                lost as f64 / expected as f64
            }
            _ => 0.0,
        };
        let bytes = self.interval_bytes;
        self.next_interval_base = self
            .interval_max_seq
            .map_or(self.next_interval_base, |m| m.saturating_add(1));
        self.interval_bytes = 0;
        self.interval_seen = 0;
        self.interval_base_seq = None;
        self.interval_max_seq = None;
        (loss, bytes)
    }

    /// Number of frames currently awaiting fragments.
    pub fn pending_frames(&self) -> usize {
        self.partial.len()
    }

    /// Discards partial frames older than `horizon` (their playout deadline
    /// passed; holding them forever would leak).
    pub fn expire_before(&mut self, horizon: SimDuration) {
        let mut stale = std::mem::take(&mut self.expire_scratch);
        stale.clear();
        stale.extend(
            self.partial
                .iter()
                .filter(|(_, p)| p.pts < horizon)
                .map(|(k, _)| *k),
        );
        for key in stale.drain(..) {
            if let Some(mut dead) = self.partial.remove(&key) {
                self.spare_got.push(std::mem::take(&mut dead.got));
                for gid in dead.member_of.drain(..) {
                    if let Some(g) = self.groups.get_mut(&gid) {
                        g.frames.retain(|k| *k != key);
                    }
                }
                self.spare_member.push(dead.member_of);
            }
        }
        self.expire_scratch = stale;
        // Old FEC groups with no live frames can go too, their frame-list
        // backings returned to the spare pool.
        let mut spare_frames = std::mem::take(&mut self.spare_frames);
        self.groups.retain(|_, g| {
            let keep = !g.frames.is_empty() || g.parity.is_none();
            if !keep {
                spare_frames.push(std::mem::take(&mut g.frames));
            }
            keep
        });
        self.spare_frames = spare_frames;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_media::{packetize_frame, parity_packet, Frame};

    fn frame(index: u32, size: u32) -> Frame {
        Frame {
            index,
            pts: SimDuration::from_millis(u64::from(index) * 100),
            size,
            key: index.is_multiple_of(10),
        }
    }

    fn seq_packets(frames: &[Frame], group: u32) -> Vec<MediaPacket> {
        let mut seq = 0;
        let mut out = Vec::new();
        for f in frames {
            for mut p in packetize_frame(f, 0, group) {
                p.seq = seq;
                seq += 1;
                out.push(p);
            }
        }
        out
    }

    #[test]
    fn single_fragment_frame_completes_immediately() {
        let mut a = Assembler::new();
        let pkts = seq_packets(&[frame(0, 500)], 0);
        let done = a.on_packet(SimTime::from_millis(5), pkts[0]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].index, 0);
        assert_eq!(done[0].size, 500);
        assert!(done[0].key);
        assert_eq!(done[0].completed_at, SimTime::from_millis(5));
        assert_eq!(a.stats().frames_completed, 1);
    }

    #[test]
    fn multi_fragment_frame_waits_for_all() {
        let mut a = Assembler::new();
        let pkts = seq_packets(&[frame(1, 3000)], 0);
        assert_eq!(pkts.len(), 3);
        assert!(a.on_packet(SimTime::ZERO, pkts[0]).is_empty());
        assert!(a.on_packet(SimTime::ZERO, pkts[2]).is_empty());
        let done = a.on_packet(SimTime::from_millis(9), pkts[1]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].size, 3000);
        assert_eq!(a.pending_frames(), 0);
    }

    #[test]
    fn reordering_is_tolerated() {
        let mut a = Assembler::new();
        let mut pkts = seq_packets(&[frame(1, 2800), frame(2, 700)], 0);
        pkts.reverse();
        let mut done = Vec::new();
        for p in pkts {
            done.extend(a.on_packet(SimTime::ZERO, p));
        }
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn duplicates_ignored() {
        let mut a = Assembler::new();
        let pkts = seq_packets(&[frame(1, 500)], 0);
        assert_eq!(a.on_packet(SimTime::ZERO, pkts[0]).len(), 1);
        assert_eq!(a.on_packet(SimTime::ZERO, pkts[0]).len(), 0);
        assert_eq!(a.stats().frames_completed, 1);
    }

    #[test]
    fn fec_recovers_single_loss() {
        let mut a = Assembler::new();
        let f = frame(1, 3000); // 3 fragments
        let mut pkts = packetize_frame(&f, 0, 7);
        for (i, p) in pkts.iter_mut().enumerate() {
            p.seq = i as u32;
        }
        let mut parity = parity_packet(7, &pkts);
        parity.seq = 3;
        // Lose fragment 1.
        assert!(a.on_packet(SimTime::ZERO, pkts[0]).is_empty());
        assert!(a.on_packet(SimTime::ZERO, pkts[2]).is_empty());
        let done = a.on_packet(SimTime::from_millis(3), parity);
        assert_eq!(done.len(), 1, "parity should complete the frame");
        assert_eq!(a.stats().frames_recovered, 1);
        // Size approximates the original.
        assert!(
            done[0].size >= 2800 && done[0].size <= 3200,
            "size {}",
            done[0].size
        );
    }

    #[test]
    fn fec_cannot_recover_double_loss() {
        let mut a = Assembler::new();
        let f = frame(1, 4200); // 3 fragments
        let mut pkts = packetize_frame(&f, 0, 9);
        for (i, p) in pkts.iter_mut().enumerate() {
            p.seq = i as u32;
        }
        let mut parity = parity_packet(9, &pkts);
        parity.seq = 3;
        assert!(a.on_packet(SimTime::ZERO, pkts[0]).is_empty());
        assert!(a.on_packet(SimTime::ZERO, parity).is_empty());
        assert_eq!(a.stats().frames_recovered, 0);
    }

    #[test]
    fn loss_estimate_from_seq_gaps() {
        let mut a = Assembler::new();
        let frames: Vec<Frame> = (0..10).map(|i| frame(i, 500)).collect();
        let pkts = seq_packets(&frames, 0);
        // Drop packets 3 and 7.
        for (i, p) in pkts.iter().enumerate() {
            if i != 3 && i != 7 {
                a.on_packet(SimTime::ZERO, *p);
            }
        }
        assert_eq!(a.stats().packets_lost, 2);
        let (loss, bytes) = a.take_interval();
        assert!((loss - 0.2).abs() < 1e-9, "loss {loss}");
        assert!(bytes > 0);
        // Interval counters reset.
        let (loss2, bytes2) = a.take_interval();
        assert_eq!(loss2, 0.0);
        assert_eq!(bytes2, 0);
    }

    #[test]
    fn eos_flag() {
        let mut a = Assembler::new();
        let mut p = packetize_frame(&frame(0, 100), 0, 0)[0];
        p.kind = PacketKind::EndOfStream;
        a.on_packet(SimTime::ZERO, p);
        assert!(a.eos());
    }

    #[test]
    fn audio_counted_not_assembled() {
        let mut a = Assembler::new();
        let mut p = packetize_frame(&frame(0, 100), 0, 0)[0];
        p.kind = PacketKind::Audio;
        assert!(a.on_packet(SimTime::ZERO, p).is_empty());
        assert_eq!(a.stats().audio_packets, 1);
        assert_eq!(a.pending_frames(), 0);
    }

    #[test]
    fn expiry_drops_stale_partials() {
        let mut a = Assembler::new();
        let pkts = seq_packets(&[frame(1, 2800)], 0);
        a.on_packet(SimTime::ZERO, pkts[0]); // 1 of 2 fragments
        assert_eq!(a.pending_frames(), 1);
        a.expire_before(SimDuration::from_secs(10));
        assert_eq!(a.pending_frames(), 0);
    }
}
