//! # rv-rtsp — RTSP-like streaming control plane
//!
//! The control connection of a RealVideo session: a text-protocol
//! [`Message`] codec robust to arbitrary TCP segmentation ([`Decoder`]),
//! client/server [session state machines](`ClientSession`) with CSeq
//! bookkeeping, and the data-transport [negotiation](`negotiate`) whose
//! outcome the paper reports in Figure 16 (~56 % UDP / ~44 % TCP).
//!
//! PNA (Progressive Networks Audio), RealServer's legacy control protocol,
//! is modeled only as a [`ControlProtocol`] tag: the paper observed
//! essentially all sessions on RTSP, so PNA carries no distinct behavior.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod message;
mod session;
mod smallstr;
mod transport;

pub use message::{DecodeError, Decoder, Message, Method, Status};
pub use session::{ClientEvent, ClientSession, ClientState, ServerHandler, ServerSession};
pub use smallstr::SmallStr;
pub use transport::{
    negotiate, FirewallPolicy, NegotiationError, TransportKind, TransportPreference, TransportSpec,
};

/// Which control protocol a session speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlProtocol {
    /// RTSP (essentially all sessions in the 2001 study).
    Rtsp,
    /// PNA, RealServer's legacy protocol, retained for backward compat.
    Pna,
}
