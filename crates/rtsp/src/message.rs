//! RTSP message model and text codec.
//!
//! RealServer spoke RTSP (RFC 2326) on its control connection. The codec
//! here parses and serializes the realistic wire format — request line,
//! headers, CRLF framing, optional body with Content-Length — because the
//! control connection runs over the simulated TCP byte stream and must
//! survive arbitrary segmentation.

use std::fmt;
use std::fmt::Write as _;

use crate::smallstr::SmallStr;

/// RTSP request methods used by the streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Capability query.
    Options,
    /// Retrieve the clip's presentation description (SureStream ladder).
    Describe,
    /// Establish a transport for a stream.
    Setup,
    /// Start playout.
    Play,
    /// Pause playout.
    Pause,
    /// End the session.
    Teardown,
    /// Mid-session parameter change (stream switches, reports).
    SetParameter,
}

impl Method {
    /// All methods, for iteration in tests.
    pub const ALL: [Method; 7] = [
        Method::Options,
        Method::Describe,
        Method::Setup,
        Method::Play,
        Method::Pause,
        Method::Teardown,
        Method::SetParameter,
    ];

    fn as_str(self) -> &'static str {
        match self {
            Method::Options => "OPTIONS",
            Method::Describe => "DESCRIBE",
            Method::Setup => "SETUP",
            Method::Play => "PLAY",
            Method::Pause => "PAUSE",
            Method::Teardown => "TEARDOWN",
            Method::SetParameter => "SET_PARAMETER",
        }
    }

    fn from_str(s: &str) -> Option<Method> {
        Some(match s {
            "OPTIONS" => Method::Options,
            "DESCRIBE" => Method::Describe,
            "SETUP" => Method::Setup,
            "PLAY" => Method::Play,
            "PAUSE" => Method::Pause,
            "TEARDOWN" => Method::Teardown,
            "SET_PARAMETER" => Method::SetParameter,
            _ => return None,
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An RTSP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// 200 OK.
    pub const OK: Status = Status(200);
    /// 404: the clip is not available.
    pub const NOT_FOUND: Status = Status(404);
    /// 453: server out of capacity.
    pub const NOT_ENOUGH_BANDWIDTH: Status = Status(453);
    /// 461: requested transport not supported.
    pub const UNSUPPORTED_TRANSPORT: Status = Status(461);

    /// Human-readable reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            404 => "Not Found",
            453 => "Not Enough Bandwidth",
            461 => "Unsupported Transport",
            _ => "Unknown",
        }
    }

    /// `true` for 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An RTSP message: request or response, headers, optional body.
///
/// Headers live in a `Vec` in insertion order with [`SmallStr`]
/// name/value storage: building or parsing a typical control message
/// costs one allocation (the header vector) instead of a `String` pair
/// plus a map node per header. Lookup stays case-insensitive; setting an
/// existing name replaces its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A client request.
    Request {
        /// The method.
        method: Method,
        /// The target URL, e.g. `rtsp://server/clip.rm`.
        url: SmallStr,
        /// Header fields (names case-preserved, lookup case-insensitive).
        headers: Vec<(SmallStr, SmallStr)>,
        /// Message body.
        body: Vec<u8>,
    },
    /// A server response.
    Response {
        /// Status code.
        status: Status,
        /// Header fields.
        headers: Vec<(SmallStr, SmallStr)>,
        /// Message body.
        body: Vec<u8>,
    },
}

impl Message {
    /// Builds a bodyless request.
    pub fn request(method: Method, url: &str) -> Message {
        Message::Request {
            method,
            url: SmallStr::from(url),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Builds a bodyless response.
    pub fn response(status: Status) -> Message {
        Message::Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn set_header(&mut self, name: &str, value: SmallStr) {
        let headers = self.headers_mut();
        match headers.iter_mut().find(|(k, _)| k.as_str() == name) {
            Some((_, v)) => *v = value,
            None => headers.push((SmallStr::from(name), value)),
        }
    }

    /// Adds a header (builder style). Setting a name twice replaces the
    /// first value. Accepts `&str` or an owned [`SmallStr`] (the latter
    /// moves in without re-copying a spilled value).
    pub fn with_header(mut self, name: &str, value: impl Into<SmallStr>) -> Message {
        self.set_header(name, value.into());
        self
    }

    /// Adds a header rendering `value` through [`fmt::Display`] — the
    /// `CSeq`/`Bandwidth` path, with no intermediate `String`.
    pub fn with_header_display(mut self, name: &str, value: impl fmt::Display) -> Message {
        self.set_header(name, SmallStr::from_display(value));
        self
    }

    /// Sets the body and Content-Length (builder style).
    pub fn with_body(mut self, body: Vec<u8>) -> Message {
        self.set_header("Content-Length", SmallStr::from_display(body.len()));
        match &mut self {
            Message::Request { body: b, .. } | Message::Response { body: b, .. } => *b = body,
        }
        self
    }

    /// The message headers, in insertion (and wire) order.
    pub fn headers(&self) -> &[(SmallStr, SmallStr)] {
        match self {
            Message::Request { headers, .. } | Message::Response { headers, .. } => headers,
        }
    }

    fn headers_mut(&mut self) -> &mut Vec<(SmallStr, SmallStr)> {
        match self {
            Message::Request { headers, .. } | Message::Response { headers, .. } => headers,
        }
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers()
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The message body.
    pub fn body(&self) -> &[u8] {
        match self {
            Message::Request { body, .. } | Message::Response { body, .. } => body,
        }
    }

    /// Serializes to the RTSP wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Serializes onto the end of `out`, so a send loop can reuse one
    /// staging buffer across messages.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut text = WriteBytes(out);
        match self {
            Message::Request { method, url, .. } => {
                write!(text, "{method} {url} RTSP/1.0\r\n").expect("Vec write never errors");
            }
            Message::Response { status, .. } => {
                write!(text, "RTSP/1.0 {} {}\r\n", status.0, status.reason())
                    .expect("Vec write never errors");
            }
        }
        for (k, v) in self.headers() {
            write!(text, "{k}: {v}\r\n").expect("Vec write never errors");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(self.body());
    }
}

/// `fmt::Write` adapter over a byte buffer (RTSP text is ASCII; UTF-8
/// passes through byte-for-byte).
struct WriteBytes<'a>(&'a mut Vec<u8>);

impl fmt::Write for WriteBytes<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// Errors the decoder can report for malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The start line was not a valid request or response line.
    BadStartLine(String),
    /// A header line had no colon.
    BadHeader(String),
    /// Content-Length was not a number.
    BadContentLength(String),
    /// The method is not one we speak.
    UnknownMethod(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadStartLine(l) => write!(f, "bad start line: {l:?}"),
            DecodeError::BadHeader(l) => write!(f, "bad header line: {l:?}"),
            DecodeError::BadContentLength(v) => write!(f, "bad Content-Length: {v:?}"),
            DecodeError::UnknownMethod(m) => write!(f, "unknown method: {m:?}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Incremental decoder over a TCP byte stream: feed bytes in arbitrary
/// chunks, pop complete messages.
///
/// Consumed bytes are tracked with a cursor rather than drained per
/// message, so a burst of pipelined messages walks the buffer once
/// instead of memmoving the tail after each one.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards all buffered bytes, keeping the buffer's capacity — a
    /// reset decoder behaves like a fresh one but feeds into warm memory.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }

    /// Appends received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 {
            // Compact a long-consumed prefix so a perpetually incomplete
            // tail cannot grow the buffer without bound.
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet forming a complete message.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Attempts to decode one complete message. Returns `Ok(None)` when more
    /// bytes are needed.
    pub fn next_message(&mut self) -> Result<Option<Message>, DecodeError> {
        let buf = &self.buf[self.pos..];
        // Find the header/body separator.
        let Some(header_end) = find_crlf_crlf(buf) else {
            return Ok(None);
        };
        // Borrowed when the header block is valid UTF-8 (always, for our
        // own encoder's output); lossily copied only for invalid input.
        let header_text = String::from_utf8_lossy(&buf[..header_end]);
        let mut lines = header_text.split("\r\n");
        let start = lines.next().unwrap_or_default();

        let mut headers: Vec<(SmallStr, SmallStr)> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(DecodeError::BadHeader(line.to_string()));
            };
            let (name, value) = (name.trim(), value.trim());
            match headers.iter_mut().find(|(k, _)| k.as_str() == name) {
                Some((_, v)) => *v = SmallStr::from(value),
                None => headers.push((SmallStr::from(name), SmallStr::from(value))),
            }
        }

        let content_length = match headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| DecodeError::BadContentLength(v.to_string()))?,
            None => 0,
        };

        let body_start = header_end + 4;
        if buf.len() < body_start + content_length {
            return Ok(None); // body incomplete
        }
        let body = buf[body_start..body_start + content_length].to_vec();

        // Parse the start line.
        let msg = if let Some(rest) = start.strip_prefix("RTSP/1.0 ") {
            let mut parts = rest.splitn(2, ' ');
            match parts.next().and_then(|c| c.parse::<u16>().ok()) {
                Some(code) => Ok(Message::Response {
                    status: Status(code),
                    headers,
                    body,
                }),
                None => Err(DecodeError::BadStartLine(start.to_string())),
            }
        } else {
            let mut parts = start.split(' ');
            let method_str = parts.next().unwrap_or_default();
            match (parts.next(), parts.next()) {
                (Some(url), Some("RTSP/1.0")) => match Method::from_str(method_str) {
                    Some(method) => Ok(Message::Request {
                        method,
                        url: SmallStr::from(url),
                        headers,
                        body,
                    }),
                    None => Err(DecodeError::UnknownMethod(method_str.to_string())),
                },
                _ => Err(DecodeError::BadStartLine(start.to_string())),
            }
        };
        self.pos += body_start + content_length;
        msg.map(Some)
    }
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let msg = Message::request(Method::Describe, "rtsp://srv/clip.rm")
            .with_header("CSeq", "1")
            .with_header("User-Agent", "RealTracer/1.0");
        let bytes = msg.encode();
        let mut dec = Decoder::new();
        dec.feed(&bytes);
        let got = dec.next_message().unwrap().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn response_with_body_round_trips() {
        let msg = Message::response(Status::OK)
            .with_header("CSeq", "2")
            .with_body(b"v=0\r\nm=video".to_vec());
        let bytes = msg.encode();
        let mut dec = Decoder::new();
        dec.feed(&bytes);
        let got = dec.next_message().unwrap().unwrap();
        assert_eq!(got.body(), b"v=0\r\nm=video");
        assert_eq!(got.header("content-length"), Some("12"));
    }

    #[test]
    fn decoder_handles_arbitrary_segmentation() {
        let msg = Message::request(Method::Setup, "rtsp://s/c")
            .with_header("Transport", "udp;client_port=5000")
            .with_body(b"0123456789".to_vec());
        let bytes = msg.encode();
        // Feed one byte at a time.
        let mut dec = Decoder::new();
        let mut decoded = None;
        for b in &bytes {
            dec.feed(std::slice::from_ref(b));
            if let Some(m) = dec.next_message().unwrap() {
                decoded = Some(m);
            }
        }
        assert_eq!(decoded.unwrap(), msg);
    }

    #[test]
    fn decoder_handles_pipelined_messages() {
        let a = Message::request(Method::Play, "rtsp://s/c").with_header("CSeq", "3");
        let b = Message::request(Method::Teardown, "rtsp://s/c").with_header("CSeq", "4");
        let mut bytes = a.encode();
        bytes.extend(b.encode());
        let mut dec = Decoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_message().unwrap().unwrap(), a);
        assert_eq!(dec.next_message().unwrap().unwrap(), b);
        assert_eq!(dec.next_message().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn incomplete_message_returns_none() {
        let mut dec = Decoder::new();
        dec.feed(b"DESCRIBE rtsp://s/c RTSP/1.0\r\nCSeq: 1\r\n");
        assert_eq!(dec.next_message().unwrap(), None);
        dec.feed(b"\r\n");
        assert!(dec.next_message().unwrap().is_some());
    }

    #[test]
    fn bad_inputs_are_errors() {
        let mut dec = Decoder::new();
        dec.feed(b"NONSENSE\r\n\r\n");
        assert!(matches!(
            dec.next_message(),
            Err(DecodeError::BadStartLine(_))
        ));

        let mut dec = Decoder::new();
        dec.feed(b"FETCH rtsp://s/c RTSP/1.0\r\n\r\n");
        assert!(matches!(
            dec.next_message(),
            Err(DecodeError::UnknownMethod(_))
        ));

        let mut dec = Decoder::new();
        dec.feed(b"PLAY rtsp://s/c RTSP/1.0\r\nContent-Length: abc\r\n\r\n");
        assert!(matches!(
            dec.next_message(),
            Err(DecodeError::BadContentLength(_))
        ));

        let mut dec = Decoder::new();
        dec.feed(b"PLAY rtsp://s/c RTSP/1.0\r\nno-colon-here\r\n\r\n");
        assert!(matches!(dec.next_message(), Err(DecodeError::BadHeader(_))));
    }

    #[test]
    fn all_methods_round_trip() {
        for m in Method::ALL {
            let msg = Message::request(m, "rtsp://s/c");
            let mut dec = Decoder::new();
            dec.feed(&msg.encode());
            assert_eq!(dec.next_message().unwrap().unwrap(), msg);
        }
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let msg = Message::request(Method::Options, "rtsp://s/c").with_header("CSeq", "9");
        assert_eq!(msg.header("cseq"), Some("9"));
        assert_eq!(msg.header("CSEQ"), Some("9"));
        assert_eq!(msg.header("missing"), None);
    }

    #[test]
    fn status_helpers() {
        assert!(Status::OK.is_success());
        assert!(!Status::NOT_FOUND.is_success());
        assert_eq!(Status::NOT_FOUND.reason(), "Not Found");
        assert_eq!(Status(599).reason(), "Unknown");
    }
}
