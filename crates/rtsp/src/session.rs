//! Client and server RTSP session state machines.
//!
//! These machines own CSeq bookkeeping and legal-transition enforcement;
//! the application layers (rv-server, rv-tracer) supply the decisions via
//! [`ServerHandler`] and drive the client through explicit request methods.

use crate::message::{Message, Method, Status};
use crate::smallstr::SmallStr;
use crate::transport::TransportSpec;

/// Progress of a client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// Nothing sent yet.
    Init,
    /// DESCRIBE outstanding.
    Describing,
    /// Description received; SETUP outstanding.
    SettingUp,
    /// Transport agreed; PLAY outstanding.
    Starting,
    /// Stream is playing.
    Playing,
    /// TEARDOWN outstanding.
    TearingDown,
    /// Session over.
    Done,
    /// Server refused or protocol violation.
    Failed,
}

/// What a client learned from a server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// DESCRIBE succeeded; body is the presentation description.
    Described(Vec<u8>),
    /// The clip is unavailable (404 and friends).
    Unavailable(Status),
    /// SETUP succeeded with the final transport.
    SetUp(TransportSpec),
    /// PLAY succeeded; data will flow.
    Started,
    /// TEARDOWN acknowledged.
    TornDown,
    /// The response violated the protocol or arrived out of order.
    ProtocolError(String),
}

/// Client-side RTSP session.
#[derive(Debug)]
pub struct ClientSession {
    url: String,
    state: ClientState,
    cseq: u32,
    /// CSeq of the outstanding request, if any.
    pending: Option<(u32, Method)>,
    session_id: Option<String>,
}

impl ClientSession {
    /// Creates a session for `url`.
    pub fn new(url: &str) -> Self {
        ClientSession {
            url: url.to_string(),
            state: ClientState::Init,
            cseq: 0,
            pending: None,
            session_id: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// The session id the server assigned at SETUP.
    pub fn session_id(&self) -> Option<&str> {
        self.session_id.as_deref()
    }

    fn request(&mut self, method: Method) -> Message {
        self.cseq += 1;
        self.pending = Some((self.cseq, method));
        let mut msg = Message::request(method, &self.url).with_header_display("CSeq", self.cseq);
        if let Some(id) = &self.session_id {
            msg = msg.with_header("Session", id);
        }
        msg
    }

    /// Builds the DESCRIBE request. Panics when not in `Init`.
    pub fn describe(&mut self) -> Message {
        assert_eq!(self.state, ClientState::Init, "describe() out of order");
        self.state = ClientState::Describing;
        self.request(Method::Describe)
    }

    /// Builds the SETUP request with the transport the player wants.
    pub fn setup(&mut self, spec: TransportSpec) -> Message {
        assert_eq!(self.state, ClientState::SettingUp, "setup() out of order");
        self.request(Method::Setup)
            .with_header("Transport", spec.encode())
    }

    /// Builds the PLAY request.
    pub fn play(&mut self) -> Message {
        assert_eq!(self.state, ClientState::Starting, "play() out of order");
        self.request(Method::Play)
    }

    /// Builds a SETUP that renegotiates the transport mid-session (the
    /// RealPlayer UDP→TCP fallback). Legal while playing or starting: the
    /// session drops back to `SettingUp`, the server answers with a fresh
    /// session id, and the client must PLAY again before data resumes.
    pub fn resetup(&mut self, spec: TransportSpec) -> Message {
        assert!(
            matches!(self.state, ClientState::Playing | ClientState::Starting),
            "resetup() outside an active session"
        );
        self.state = ClientState::SettingUp;
        self.setup(spec)
    }

    /// Builds a SET_PARAMETER carrying an application parameter (used for
    /// receiver statistics feedback on UDP sessions). Legal only while
    /// playing; does not change state and expects no meaningful reply.
    pub fn set_parameter(&mut self, name: &str, value: &str) -> Message {
        assert_eq!(
            self.state,
            ClientState::Playing,
            "set_parameter() outside playback"
        );
        self.cseq += 1;
        let mut msg = Message::request(Method::SetParameter, &self.url)
            .with_header_display("CSeq", self.cseq)
            .with_header(name, value);
        if let Some(id) = &self.session_id {
            msg = msg.with_header("Session", id);
        }
        msg
    }

    /// Builds the TEARDOWN request (legal from any active state).
    pub fn teardown(&mut self) -> Message {
        self.state = ClientState::TearingDown;
        self.request(Method::Teardown)
    }

    /// Processes a server response, advancing the state machine.
    pub fn on_response(&mut self, msg: &Message) -> ClientEvent {
        let Message::Response { status, .. } = msg else {
            self.state = ClientState::Failed;
            return ClientEvent::ProtocolError("request received where response expected".into());
        };
        // CSeq must match the outstanding request; unsolicited OK responses
        // to SET_PARAMETER are tolerated (pending is None for those).
        let cseq: Option<u32> = msg.header("CSeq").and_then(|v| v.parse().ok());
        let Some((want, method)) = self.pending else {
            return ClientEvent::ProtocolError("unsolicited response".into());
        };
        if cseq != Some(want) {
            // A reply to SET_PARAMETER or a stale response: ignore politely.
            return ClientEvent::ProtocolError(format!("CSeq mismatch: want {want} got {cseq:?}"));
        }
        self.pending = None;

        match (method, status.is_success()) {
            (Method::Describe, true) => {
                self.state = ClientState::SettingUp;
                ClientEvent::Described(msg.body().to_vec())
            }
            (Method::Describe, false) => {
                self.state = ClientState::Failed;
                ClientEvent::Unavailable(*status)
            }
            (Method::Setup, true) => {
                self.session_id = msg.header("Session").map(str::to_string);
                match msg.header("Transport").and_then(TransportSpec::parse) {
                    Some(spec) => {
                        self.state = ClientState::Starting;
                        ClientEvent::SetUp(spec)
                    }
                    None => {
                        self.state = ClientState::Failed;
                        ClientEvent::ProtocolError("SETUP reply without transport".into())
                    }
                }
            }
            (Method::Setup, false) => {
                self.state = ClientState::Failed;
                ClientEvent::Unavailable(*status)
            }
            (Method::Play, true) => {
                self.state = ClientState::Playing;
                ClientEvent::Started
            }
            (Method::Play, false) => {
                self.state = ClientState::Failed;
                ClientEvent::Unavailable(*status)
            }
            (Method::Teardown, _) => {
                self.state = ClientState::Done;
                ClientEvent::TornDown
            }
            (m, ok) => {
                self.state = ClientState::Failed;
                ClientEvent::ProtocolError(format!("unexpected response to {m} (ok={ok})"))
            }
        }
    }
}

/// The server application's decisions, invoked by [`ServerSession`].
pub trait ServerHandler {
    /// Returns the presentation description for `url`, or `None` → 404.
    fn describe(&mut self, url: &str) -> Option<Vec<u8>>;
    /// Observes the client's advertised maximum bandwidth (the RealPlayer
    /// "connection speed" setting, sent as a Bandwidth header). Default: ignore.
    fn client_bandwidth(&mut self, _bps: u32) {}
    /// Decides the final transport (may downgrade UDP→TCP), or an error
    /// status refusing the setup.
    fn setup(&mut self, url: &str, requested: TransportSpec) -> Result<TransportSpec, Status>;
    /// Starts streaming. Always succeeds in this model.
    fn play(&mut self, url: &str);
    /// Receives a client parameter (receiver reports etc.).
    fn set_parameter(&mut self, url: &str, name: &str, value: &str);
    /// Stops streaming.
    fn teardown(&mut self, url: &str);
}

/// Server-side RTSP session: validates requests and produces responses,
/// delegating decisions to a [`ServerHandler`].
#[derive(Debug, Default)]
pub struct ServerSession {
    session_counter: u32,
    session_id: Option<String>,
}

impl ServerSession {
    /// A fresh server session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles one request, returning the response to send.
    pub fn on_request<H: ServerHandler>(&mut self, handler: &mut H, msg: &Message) -> Message {
        let Message::Request {
            method,
            url,
            headers,
            ..
        } = msg
        else {
            return Message::response(Status(400));
        };
        let cseq = SmallStr::from(msg.header("CSeq").unwrap_or("0"));
        if let Some(bw) = msg.header("Bandwidth").and_then(|v| v.parse().ok()) {
            handler.client_bandwidth(bw);
        }
        let respond = |status: Status| Message::response(status).with_header("CSeq", &cseq);

        match method {
            Method::Options => respond(Status::OK).with_header(
                "Public",
                "DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN, SET_PARAMETER",
            ),
            Method::Describe => match handler.describe(url) {
                Some(body) => respond(Status::OK).with_body(body),
                None => respond(Status::NOT_FOUND),
            },
            Method::Setup => {
                let Some(requested) = msg.header("Transport").and_then(TransportSpec::parse) else {
                    return respond(Status::UNSUPPORTED_TRANSPORT);
                };
                match handler.setup(url, requested) {
                    Ok(spec) => {
                        self.session_counter += 1;
                        let id = format!("sess-{}", self.session_counter);
                        self.session_id = Some(id.clone());
                        respond(Status::OK)
                            .with_header("Session", id.as_str())
                            .with_header("Transport", spec.encode())
                    }
                    Err(status) => respond(status),
                }
            }
            Method::Play => {
                if self.session_matches(msg.header("Session")) {
                    handler.play(url);
                    respond(Status::OK)
                } else {
                    respond(Status(454)) // Session Not Found
                }
            }
            Method::Pause => respond(Status::OK),
            Method::SetParameter => {
                // Every non-CSeq/Session header is an application parameter.
                for (k, v) in headers {
                    if !k.eq_ignore_ascii_case("cseq") && !k.eq_ignore_ascii_case("session") {
                        handler.set_parameter(url, k, v);
                    }
                }
                respond(Status::OK)
            }
            Method::Teardown => {
                handler.teardown(url);
                self.session_id = None;
                respond(Status::OK)
            }
        }
    }

    fn session_matches(&self, got: Option<&str>) -> bool {
        match (&self.session_id, got) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportKind;

    /// A scripted handler for tests.
    struct TestHandler {
        clip_exists: bool,
        force_tcp: bool,
        played: bool,
        torn_down: bool,
        params: Vec<(String, String)>,
    }

    impl Default for TestHandler {
        fn default() -> Self {
            TestHandler {
                clip_exists: true,
                force_tcp: false,
                played: false,
                torn_down: false,
                params: Vec::new(),
            }
        }
    }

    impl ServerHandler for TestHandler {
        fn describe(&mut self, _url: &str) -> Option<Vec<u8>> {
            self.clip_exists.then(|| b"sdp-body".to_vec())
        }
        fn setup(&mut self, _url: &str, requested: TransportSpec) -> Result<TransportSpec, Status> {
            if self.force_tcp {
                Ok(TransportSpec::tcp())
            } else {
                Ok(TransportSpec {
                    server_port: Some(6970),
                    ..requested
                })
            }
        }
        fn play(&mut self, _url: &str) {
            self.played = true;
        }
        fn set_parameter(&mut self, _url: &str, name: &str, value: &str) {
            self.params.push((name.to_string(), value.to_string()));
        }
        fn teardown(&mut self, _url: &str) {
            self.torn_down = true;
        }
    }

    fn full_handshake(handler: &mut TestHandler) -> (ClientSession, ServerSession) {
        let mut client = ClientSession::new("rtsp://srv/clip.rm");
        let mut server = ServerSession::new();

        let resp = server.on_request(handler, &client.describe());
        assert_eq!(
            client.on_response(&resp),
            ClientEvent::Described(b"sdp-body".to_vec())
        );

        let resp = server.on_request(handler, &client.setup(TransportSpec::udp(5002)));
        match client.on_response(&resp) {
            ClientEvent::SetUp(_) => {}
            other => panic!("expected SetUp, got {other:?}"),
        }

        let resp = server.on_request(handler, &client.play());
        assert_eq!(client.on_response(&resp), ClientEvent::Started);
        assert_eq!(client.state(), ClientState::Playing);
        (client, server)
    }

    #[test]
    fn full_session_lifecycle() {
        let mut h = TestHandler::default();
        let (mut client, mut server) = full_handshake(&mut h);
        assert!(h.played);

        let resp = server.on_request(&mut h, &client.teardown());
        assert_eq!(client.on_response(&resp), ClientEvent::TornDown);
        assert_eq!(client.state(), ClientState::Done);
        assert!(h.torn_down);
    }

    #[test]
    fn missing_clip_gives_unavailable() {
        let mut h = TestHandler {
            clip_exists: false,
            ..TestHandler::default()
        };
        let mut client = ClientSession::new("rtsp://srv/missing.rm");
        let mut server = ServerSession::new();
        let resp = server.on_request(&mut h, &client.describe());
        assert_eq!(
            client.on_response(&resp),
            ClientEvent::Unavailable(Status::NOT_FOUND)
        );
        assert_eq!(client.state(), ClientState::Failed);
    }

    #[test]
    fn server_can_downgrade_to_tcp() {
        let mut h = TestHandler {
            force_tcp: true,
            ..TestHandler::default()
        };
        let mut client = ClientSession::new("rtsp://srv/clip.rm");
        let mut server = ServerSession::new();
        let resp = server.on_request(&mut h, &client.describe());
        client.on_response(&resp);
        let resp = server.on_request(&mut h, &client.setup(TransportSpec::udp(5002)));
        match client.on_response(&resp) {
            ClientEvent::SetUp(spec) => assert_eq!(spec.kind, TransportKind::Tcp),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resetup_renegotiates_transport_midstream() {
        let mut h = TestHandler {
            force_tcp: true,
            ..TestHandler::default()
        };
        let (mut client, mut server) = full_handshake(&mut h);
        let old_id = client.session_id().unwrap().to_string();

        // Black-holed UDP: the player re-SETUPs over the live control channel.
        let resp = server.on_request(&mut h, &client.resetup(TransportSpec::tcp()));
        match client.on_response(&resp) {
            ClientEvent::SetUp(spec) => assert_eq!(spec.kind, TransportKind::Tcp),
            other => panic!("{other:?}"),
        }
        let new_id = client.session_id().unwrap().to_string();
        assert_ne!(old_id, new_id, "re-SETUP must mint a fresh session id");

        h.played = false;
        let resp = server.on_request(&mut h, &client.play());
        assert_eq!(client.on_response(&resp), ClientEvent::Started);
        assert_eq!(client.state(), ClientState::Playing);
        assert!(h.played);
    }

    #[test]
    fn play_without_setup_session_is_rejected() {
        let mut h = TestHandler::default();
        let mut server = ServerSession::new();
        // Forge a PLAY with a bogus session header.
        let req = Message::request(Method::Play, "rtsp://srv/clip.rm")
            .with_header("CSeq", "9")
            .with_header("Session", "sess-999");
        let resp = server.on_request(&mut h, &req);
        match resp {
            Message::Response { status, .. } => assert_eq!(status, Status(454)),
            _ => panic!("expected response"),
        }
        assert!(!h.played);
    }

    #[test]
    fn set_parameter_reaches_handler() {
        let mut h = TestHandler::default();
        let (mut client, mut server) = full_handshake(&mut h);
        let msg = client.set_parameter("x-loss-rate", "0.031");
        server.on_request(&mut h, &msg);
        assert_eq!(
            h.params,
            vec![("x-loss-rate".to_string(), "0.031".to_string())]
        );
        // Still playing: feedback must not disturb the session.
        assert_eq!(client.state(), ClientState::Playing);
    }

    #[test]
    fn cseq_mismatch_is_flagged() {
        let mut client = ClientSession::new("rtsp://srv/c");
        let _ = client.describe();
        let bogus = Message::response(Status::OK).with_header("CSeq", "42");
        match client.on_response(&bogus) {
            ClientEvent::ProtocolError(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn setup_before_describe_panics() {
        let mut client = ClientSession::new("rtsp://srv/c");
        let _ = client.setup(TransportSpec::udp(5002));
    }

    #[test]
    fn options_lists_methods() {
        let mut h = TestHandler::default();
        let mut server = ServerSession::new();
        let req = Message::request(Method::Options, "*").with_header("CSeq", "1");
        let resp = server.on_request(&mut h, &req);
        assert!(resp.header("Public").unwrap().contains("SETUP"));
    }
}
