//! A small-string type for RTSP header names and values.
//!
//! Control-channel messages are built and parsed roughly once a second
//! per session (receiver reports), and almost every header name and value
//! is under a couple dozen bytes ("CSeq", "sess-3", "0.013200:87214.5").
//! Storing them inline keeps steady-state RTSP traffic allocation-free;
//! the rare long value (the OPTIONS Public list, a Transport spec) spills
//! to a heap `String` transparently.

use std::fmt;
use std::ops::Deref;

/// Bytes storable without a heap allocation.
const INLINE_CAP: usize = 31;

/// An immutable string that stores up to [`INLINE_CAP`] bytes inline.
#[derive(Clone)]
pub enum SmallStr {
    /// Inline storage: `len` valid bytes of `buf`.
    Inline {
        /// Number of valid bytes.
        len: u8,
        /// Inline byte storage (valid UTF-8 in `..len`).
        buf: [u8; INLINE_CAP],
    },
    /// Spilled storage for strings longer than [`INLINE_CAP`].
    Heap(String),
}

impl SmallStr {
    /// An empty string.
    pub const fn new() -> Self {
        SmallStr::Inline {
            len: 0,
            buf: [0; INLINE_CAP],
        }
    }

    /// Builds from a `&str`, inline when it fits.
    fn copy_from(s: &str) -> Self {
        if s.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            SmallStr::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            SmallStr::Heap(s.to_string())
        }
    }

    /// Formats `value` directly into a `SmallStr` — no intermediate
    /// `String` when the rendering fits inline (the `CSeq: 17` case).
    pub fn from_display(value: impl fmt::Display) -> Self {
        let mut out = SmallStr::new();
        fmt::Write::write_fmt(&mut out, format_args!("{value}")).expect("SmallStr never errors");
        out
    }

    /// The string view.
    pub fn as_str(&self) -> &str {
        match self {
            SmallStr::Inline { len, buf } => {
                std::str::from_utf8(&buf[..usize::from(*len)]).expect("always valid UTF-8")
            }
            SmallStr::Heap(s) => s.as_str(),
        }
    }
}

impl fmt::Write for SmallStr {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        match self {
            SmallStr::Inline { len, buf } => {
                let cur = usize::from(*len);
                if cur + s.len() <= INLINE_CAP {
                    buf[cur..cur + s.len()].copy_from_slice(s.as_bytes());
                    *len = (cur + s.len()) as u8;
                } else {
                    let mut heap = String::with_capacity(cur + s.len());
                    heap.push_str(self.as_str());
                    heap.push_str(s);
                    *self = SmallStr::Heap(heap);
                }
            }
            SmallStr::Heap(heap) => heap.push_str(s),
        }
        Ok(())
    }
}

impl Default for SmallStr {
    fn default() -> Self {
        SmallStr::new()
    }
}

impl Deref for SmallStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for SmallStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for SmallStr {
    fn from(s: &str) -> Self {
        SmallStr::copy_from(s)
    }
}

impl From<&String> for SmallStr {
    fn from(s: &String) -> Self {
        SmallStr::copy_from(s)
    }
}

impl From<&SmallStr> for SmallStr {
    fn from(s: &SmallStr) -> Self {
        s.clone()
    }
}

impl From<String> for SmallStr {
    fn from(s: String) -> Self {
        if s.len() <= INLINE_CAP {
            SmallStr::copy_from(&s)
        } else {
            SmallStr::Heap(s)
        }
    }
}

impl PartialEq for SmallStr {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SmallStr {}

impl PartialEq<str> for SmallStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SmallStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_strings_stay_inline() {
        let s = SmallStr::from("CSeq");
        assert!(matches!(s, SmallStr::Inline { .. }));
        assert_eq!(s.as_str(), "CSeq");
        assert_eq!(s, "CSeq");
    }

    #[test]
    fn long_strings_spill() {
        let long = "DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN, SET_PARAMETER";
        let s = SmallStr::from(long);
        assert!(matches!(s, SmallStr::Heap(_)));
        assert_eq!(s.as_str(), long);
    }

    #[test]
    fn boundary_fits_inline() {
        let edge = "a".repeat(INLINE_CAP);
        assert!(matches!(
            SmallStr::from(edge.as_str()),
            SmallStr::Inline { .. }
        ));
        let over = "a".repeat(INLINE_CAP + 1);
        assert!(matches!(SmallStr::from(over.as_str()), SmallStr::Heap(_)));
    }

    #[test]
    fn from_display_renders_inline() {
        let s = SmallStr::from_display(1234u32);
        assert!(matches!(s, SmallStr::Inline { .. }));
        assert_eq!(s, "1234");
    }

    #[test]
    fn incremental_writes_spill_when_needed() {
        use fmt::Write;
        let mut s = SmallStr::new();
        for _ in 0..10 {
            s.write_str("abcd").unwrap();
        }
        assert_eq!(s.as_str().len(), 40);
        assert!(matches!(s, SmallStr::Heap(_)));
    }
}
