//! Data-transport negotiation.
//!
//! RealSystem auto-configured the data channel: players preferred UDP,
//! servers could force TCP interleaving, and firewalls could block UDP or
//! RTSP entirely. The paper (Figure 16) observed ~56 % UDP / ~44 % TCP as
//! the net result. This module models the Transport header and the
//! negotiation outcome.

use std::fmt;
use std::fmt::Write as _;

use crate::smallstr::SmallStr;

/// The transport finally carrying stream data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Datagrams on a dedicated UDP port pair.
    Udp,
    /// Interleaved on the control TCP connection (or a second TCP stream).
    Tcp,
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Udp => "UDP",
            TransportKind::Tcp => "TCP",
        })
    }
}

/// What the player asks for (the RealPlayer "auto configuration" default
/// lets the endpoints decide; users could override).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportPreference {
    /// Try UDP first, fall back to TCP.
    Auto,
    /// Only UDP.
    ForceUdp,
    /// Only TCP.
    ForceTcp,
}

/// What the client-side network permits (NAT/firewall behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirewallPolicy {
    /// Everything passes.
    Open,
    /// Inbound UDP dropped; TCP fine (common corporate firewall).
    BlockUdp,
    /// RTSP itself blocked — the session cannot even start. The paper
    /// excluded such users from analysis.
    BlockRtsp,
}

/// A parsed/serializable RTSP Transport header value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportSpec {
    /// Chosen or requested transport.
    pub kind: TransportKind,
    /// The client's data port (UDP) or 0 for interleaved TCP.
    pub client_port: u16,
    /// The server's data port, filled in by the server's reply.
    pub server_port: Option<u16>,
}

impl TransportSpec {
    /// A client UDP request.
    pub fn udp(client_port: u16) -> Self {
        TransportSpec {
            kind: TransportKind::Udp,
            client_port,
            server_port: None,
        }
    }

    /// A client TCP (interleaved) request.
    pub fn tcp() -> Self {
        TransportSpec {
            kind: TransportKind::Tcp,
            client_port: 0,
            server_port: None,
        }
    }

    /// Serializes to a Transport header value, e.g.
    /// `x-real-rdt/udp;client_port=5002;server_port=6970`.
    pub fn encode(&self) -> SmallStr {
        let mut s = SmallStr::new();
        match self.kind {
            TransportKind::Udp => write!(s, "x-real-rdt/udp;client_port={}", self.client_port),
            TransportKind::Tcp => write!(s, "x-real-rdt/tcp;interleaved"),
        }
        .expect("SmallStr never errors");
        if let Some(sp) = self.server_port {
            write!(s, ";server_port={sp}").expect("SmallStr never errors");
        }
        s
    }

    /// Parses a Transport header value.
    pub fn parse(value: &str) -> Option<TransportSpec> {
        let mut parts = value.split(';');
        let proto = parts.next()?.to_ascii_lowercase();
        let kind = if proto.ends_with("/udp") {
            TransportKind::Udp
        } else if proto.ends_with("/tcp") {
            TransportKind::Tcp
        } else {
            return None;
        };
        let mut spec = TransportSpec {
            kind,
            client_port: 0,
            server_port: None,
        };
        for part in parts {
            if let Some(v) = part.strip_prefix("client_port=") {
                spec.client_port = v.parse().ok()?;
            } else if let Some(v) = part.strip_prefix("server_port=") {
                spec.server_port = Some(v.parse().ok()?);
            }
            // "interleaved" and unknown parameters are tolerated.
        }
        Some(spec)
    }
}

/// Why a session could not be established at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegotiationError {
    /// The firewall blocks RTSP: no session, user excluded from the study.
    RtspBlocked,
    /// Client insisted on UDP but the path forbids it.
    UdpImpossible,
    /// Client insisted on TCP but the server only serves UDP (rare).
    TcpImpossible,
}

/// Resolves the data transport, mirroring RealSystem's auto-configuration:
/// the client proposes, the firewall constrains, the server disposes.
///
/// `server_prefers_udp` models the server-side choice for Auto clients —
/// RealServer picked UDP when it believed the path supported it.
pub fn negotiate(
    pref: TransportPreference,
    firewall: FirewallPolicy,
    server_prefers_udp: bool,
) -> Result<TransportKind, NegotiationError> {
    if firewall == FirewallPolicy::BlockRtsp {
        return Err(NegotiationError::RtspBlocked);
    }
    let udp_possible = firewall != FirewallPolicy::BlockUdp;
    match pref {
        TransportPreference::ForceUdp => {
            if udp_possible {
                Ok(TransportKind::Udp)
            } else {
                Err(NegotiationError::UdpImpossible)
            }
        }
        TransportPreference::ForceTcp => Ok(TransportKind::Tcp),
        TransportPreference::Auto => {
            if udp_possible && server_prefers_udp {
                Ok(TransportKind::Udp)
            } else {
                Ok(TransportKind::Tcp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_udp() {
        let spec = TransportSpec {
            kind: TransportKind::Udp,
            client_port: 5002,
            server_port: Some(6970),
        };
        assert_eq!(TransportSpec::parse(&spec.encode()), Some(spec));
    }

    #[test]
    fn spec_round_trips_tcp() {
        let spec = TransportSpec::tcp();
        let parsed = TransportSpec::parse(&spec.encode()).unwrap();
        assert_eq!(parsed.kind, TransportKind::Tcp);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(TransportSpec::parse("rtp/avp"), None);
        assert_eq!(TransportSpec::parse(""), None);
        assert_eq!(TransportSpec::parse("x/udp;client_port=notanumber"), None);
    }

    #[test]
    fn auto_prefers_udp_when_open() {
        assert_eq!(
            negotiate(TransportPreference::Auto, FirewallPolicy::Open, true),
            Ok(TransportKind::Udp)
        );
    }

    #[test]
    fn auto_falls_back_to_tcp_behind_udp_block() {
        assert_eq!(
            negotiate(TransportPreference::Auto, FirewallPolicy::BlockUdp, true),
            Ok(TransportKind::Tcp)
        );
    }

    #[test]
    fn auto_respects_server_tcp_choice() {
        assert_eq!(
            negotiate(TransportPreference::Auto, FirewallPolicy::Open, false),
            Ok(TransportKind::Tcp)
        );
    }

    #[test]
    fn forced_udp_fails_behind_firewall() {
        assert_eq!(
            negotiate(
                TransportPreference::ForceUdp,
                FirewallPolicy::BlockUdp,
                true
            ),
            Err(NegotiationError::UdpImpossible)
        );
        assert_eq!(
            negotiate(TransportPreference::ForceUdp, FirewallPolicy::Open, false),
            Ok(TransportKind::Udp)
        );
    }

    #[test]
    fn rtsp_block_kills_everything() {
        for pref in [
            TransportPreference::Auto,
            TransportPreference::ForceTcp,
            TransportPreference::ForceUdp,
        ] {
            assert_eq!(
                negotiate(pref, FirewallPolicy::BlockRtsp, true),
                Err(NegotiationError::RtspBlocked)
            );
        }
    }

    #[test]
    fn forced_tcp_always_works_when_rtsp_passes() {
        assert_eq!(
            negotiate(
                TransportPreference::ForceTcp,
                FirewallPolicy::BlockUdp,
                true
            ),
            Ok(TransportKind::Tcp)
        );
    }
}
