//! The server's clip catalog.
//!
//! A RealServer hosted a set of clips addressed by URL path. The paper
//! found ~10 % of clip requests failed although the server itself was up
//! ("general RealVideo clip availability", Figure 10); the catalog models
//! that with a per-clip availability flag the study toggles per request.

use std::collections::BTreeMap;

use rv_media::Clip;

/// A collection of clips served by one server.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    clips: BTreeMap<String, CatalogEntry>,
}

#[derive(Debug, Clone)]
struct CatalogEntry {
    clip: Clip,
    available: bool,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a clip (available by default). Replaces any same-named clip.
    pub fn add(&mut self, clip: Clip) {
        self.clips.insert(
            clip.name.clone(),
            CatalogEntry {
                clip,
                available: true,
            },
        );
    }

    /// Looks up an *available* clip.
    pub fn get(&self, name: &str) -> Option<&Clip> {
        self.clips
            .get(name)
            .filter(|e| e.available)
            .map(|e| &e.clip)
    }

    /// Looks up a clip regardless of availability.
    pub fn get_any(&self, name: &str) -> Option<&Clip> {
        self.clips.get(name).map(|e| &e.clip)
    }

    /// Marks a clip (un)available; returns `false` if unknown.
    pub fn set_available(&mut self, name: &str, available: bool) -> bool {
        match self.clips.get_mut(name) {
            Some(e) => {
                e.available = available;
                true
            }
            None => false,
        }
    }

    /// Number of clips.
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// `true` when the catalog has no clips.
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// Clip names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.clips.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_media::ContentKind;
    use rv_sim::SimDuration;

    fn clip(name: &str) -> Clip {
        Clip::new(name, SimDuration::from_secs(120), ContentKind::News)
    }

    #[test]
    fn add_and_get() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.add(clip("a.rm"));
        c.add(clip("b.rm"));
        assert_eq!(c.len(), 2);
        assert!(c.get("a.rm").is_some());
        assert!(c.get("missing.rm").is_none());
        assert_eq!(c.names().collect::<Vec<_>>(), vec!["a.rm", "b.rm"]);
    }

    #[test]
    fn availability_gates_get() {
        let mut c = Catalog::new();
        c.add(clip("a.rm"));
        assert!(c.set_available("a.rm", false));
        assert!(c.get("a.rm").is_none());
        assert!(c.get_any("a.rm").is_some());
        assert!(c.set_available("a.rm", true));
        assert!(c.get("a.rm").is_some());
        assert!(!c.set_available("nope.rm", false));
    }

    #[test]
    fn replace_same_name() {
        let mut c = Catalog::new();
        c.add(clip("a.rm"));
        let mut longer = clip("a.rm");
        longer.duration = SimDuration::from_secs(999);
        c.add(longer);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a.rm").unwrap().duration, SimDuration::from_secs(999));
    }
}
