//! Replica-cluster bookkeeping: the state a gateway consults when it
//! routes a session to one of a site's server replicas.
//!
//! A [`ServerCluster`] does not own the replica processes themselves (the
//! session harness drives each [`RealServer`](crate::RealServer) and its
//! stack); it is the cluster's control-plane ledger — per-replica
//! liveness, standing load, and admission capacity — plus the admission
//! math every gateway policy shares. Keeping the ledger here, next to the
//! server, means the study's destination selectors and the harness agree
//! on one definition of "this replica can take the session".

/// One replica's control-plane state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaState {
    /// `false` after a crash, until restart.
    pub alive: bool,
    /// Sessions currently occupying the replica (background load).
    pub load: u32,
    /// Admission limit; `0` means unlimited.
    pub capacity: u32,
}

impl ReplicaState {
    /// Whether a new SETUP would be admitted right now: the replica is
    /// up and has a free slot (or no limit).
    pub fn admits(&self) -> bool {
        self.alive && (self.capacity == 0 || self.load < self.capacity)
    }
}

/// The ledger for one site's replica set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerCluster {
    replicas: Vec<ReplicaState>,
}

impl ServerCluster {
    /// A cluster of `replicas` live, empty replicas sharing one
    /// admission `capacity` (0 = unlimited).
    pub fn new(replicas: u8, capacity: u32) -> Self {
        ServerCluster {
            replicas: vec![
                ReplicaState {
                    alive: true,
                    load: 0,
                    capacity,
                };
                usize::from(replicas.max(1))
            ],
        }
    }

    /// Number of replicas in the cluster.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// `true` for a degenerate zero-replica ledger (never constructed by
    /// [`ServerCluster::new`], which clamps to one).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Replica `i`'s state.
    pub fn replica(&self, i: u8) -> ReplicaState {
        self.replicas[usize::from(i)]
    }

    /// Sets replica `i`'s standing load.
    pub fn set_load(&mut self, i: u8, load: u32) {
        self.replicas[usize::from(i)].load = load;
    }

    /// Marks replica `i` crashed.
    pub fn mark_crashed(&mut self, i: u8) {
        self.replicas[usize::from(i)].alive = false;
    }

    /// Marks replica `i` restarted.
    pub fn mark_restarted(&mut self, i: u8) {
        self.replicas[usize::from(i)].alive = true;
    }

    /// Whether replica `i` would admit a new session.
    pub fn admits(&self, i: u8) -> bool {
        self.replicas[usize::from(i)].admits()
    }

    /// Indices of replicas that would admit a session, ascending.
    pub fn admitting(&self) -> impl Iterator<Item = u8> + '_ {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.admits())
            .map(|(i, _)| i as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cluster_admits_everywhere() {
        let c = ServerCluster::new(3, 0);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.admitting().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn capacity_and_load_gate_admission() {
        let mut c = ServerCluster::new(2, 4);
        c.set_load(0, 4); // full
        c.set_load(1, 3); // one slot left
        assert!(!c.admits(0));
        assert!(c.admits(1));
        assert_eq!(c.admitting().collect::<Vec<_>>(), vec![1]);
        // Unlimited capacity never refuses for load.
        let mut u = ServerCluster::new(1, 0);
        u.set_load(0, 1_000);
        assert!(u.admits(0));
    }

    #[test]
    fn crash_and_restart_flip_liveness() {
        let mut c = ServerCluster::new(2, 0);
        c.mark_crashed(0);
        assert!(!c.admits(0));
        assert_eq!(c.admitting().collect::<Vec<_>>(), vec![1]);
        c.mark_restarted(0);
        assert!(c.admits(0));
    }

    #[test]
    fn zero_replica_request_clamps_to_one() {
        let c = ServerCluster::new(0, 0);
        assert_eq!(c.len(), 1);
    }
}
