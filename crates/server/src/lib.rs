//! # rv-server — the RealServer equivalent
//!
//! Serves a clip [`Catalog`] over RTSP: transport negotiation, SureStream
//! rung selection and mid-stream switching, buffer-lead pacing,
//! scalable-video frame thinning, XOR-parity FEC on UDP, and a TFRC-like
//! [`TfrcController`] that keeps UDP streams responsive to congestion — the
//! mechanism behind the paper's observation (Figure 18) that RealVideo UDP
//! bandwidth tracks TCP bandwidth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod cluster;
mod ratecontrol;
mod server;

pub use catalog::Catalog;
pub use cluster::{ReplicaState, ServerCluster};
pub use ratecontrol::{ReceiverReport, TfrcConfig, TfrcController, TokenBucket};
pub use server::{
    RealServer, ScheduleCache, ServerConfig, ServerScratch, ServerStats, REPORT_PARAM,
};
