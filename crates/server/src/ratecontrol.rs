//! Application-layer congestion control for UDP streams.
//!
//! RealSystem's UDP streams responded to congestion at the application
//! layer — the paper's Figure 18 shows UDP session bandwidth tracking TCP's
//! closely (slightly above it, i.e. "responsive but perhaps not strictly
//! TCP-friendly"). We model that with a TFRC-style controller: the client
//! reports loss and receive rate roughly once a second; the server computes
//! the TCP-equation throughput for the measured RTT and loss and caps the
//! stream rate there, probing gently upward when the path is clean.

use rv_rtsp::SmallStr;
use rv_sim::{SimDuration, SimTime};

/// A receiver report, carried on the control channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverReport {
    /// Fraction of packets lost in the report interval, `[0, 1]`.
    pub loss_rate: f64,
    /// Application receive rate over the interval, bits/second.
    pub recv_rate_bps: f64,
}

impl ReceiverReport {
    /// Serializes as `loss:recv` for a SET_PARAMETER header value. The
    /// rendering fits [`SmallStr`] inline, so the once-a-second report
    /// path does not allocate.
    pub fn encode(&self) -> SmallStr {
        SmallStr::from_display(format_args!(
            "{:.6}:{:.1}",
            self.loss_rate, self.recv_rate_bps
        ))
    }

    /// Parses the `loss:recv` form.
    pub fn parse(s: &str) -> Option<ReceiverReport> {
        let (loss, rate) = s.split_once(':')?;
        let loss_rate: f64 = loss.parse().ok()?;
        let recv_rate_bps: f64 = rate.parse().ok()?;
        if !(0.0..=1.0).contains(&loss_rate) || !recv_rate_bps.is_finite() || recv_rate_bps < 0.0 {
            return None;
        }
        Some(ReceiverReport {
            loss_rate,
            recv_rate_bps,
        })
    }
}

/// Controller parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfrcConfig {
    /// Packet size used in the throughput equation, bytes.
    pub packet_bytes: f64,
    /// Lower bound on the allowed rate (one packet per RTT floor stands in
    /// for TCP's one-segment minimum), bits/second.
    pub min_rate_bps: f64,
    /// Upper bound on the allowed rate, bits/second.
    pub max_rate_bps: f64,
    /// Multiplicative probe step per clean report (no loss).
    pub probe_gain: f64,
    /// EWMA weight of the newest loss sample.
    pub loss_smoothing: f64,
}

impl Default for TfrcConfig {
    fn default() -> Self {
        TfrcConfig {
            packet_bytes: 1_000.0,
            min_rate_bps: 10_000.0,
            max_rate_bps: 600_000.0,
            probe_gain: 1.22,
            loss_smoothing: 0.4,
        }
    }
}

/// TFRC-like sender rate controller.
#[derive(Debug, Clone)]
pub struct TfrcController {
    cfg: TfrcConfig,
    allowed_bps: f64,
    smoothed_loss: f64,
    /// TFRC slow-start: double per clean report until the first loss.
    slow_start: bool,
    last_report: Option<SimTime>,
}

impl TfrcController {
    /// Creates a controller starting at `initial_bps`.
    ///
    /// If the configured bounds cross (a per-session cap below the floor,
    /// e.g. a low-bandwidth client), the floor wins and the controller
    /// degenerates to a fixed rate.
    pub fn new(cfg: TfrcConfig, initial_bps: f64) -> Self {
        let cfg = TfrcConfig {
            max_rate_bps: cfg.max_rate_bps.max(cfg.min_rate_bps),
            ..cfg
        };
        TfrcController {
            cfg,
            allowed_bps: initial_bps.clamp(cfg.min_rate_bps, cfg.max_rate_bps),
            smoothed_loss: 0.0,
            slow_start: true,
            last_report: None,
        }
    }

    /// `true` while still in the initial slow-start phase.
    pub fn in_slow_start(&self) -> bool {
        self.slow_start
    }

    /// The current allowed sending rate, bits/second.
    pub fn allowed_bps(&self) -> f64 {
        self.allowed_bps
    }

    /// The smoothed loss estimate.
    pub fn smoothed_loss(&self) -> f64 {
        self.smoothed_loss
    }

    /// The TCP throughput equation (simplified Mathis form):
    /// `rate = 1.22 * MSS / (RTT * sqrt(p))`, in bits/second.
    pub fn tcp_equation(&self, rtt: SimDuration, loss: f64) -> f64 {
        let rtt_s = rtt.as_secs_f64().max(0.005);
        let p = loss.max(1e-4);
        1.22 * self.cfg.packet_bytes * 8.0 / (rtt_s * p.sqrt())
    }

    /// Applies a receiver report with the current RTT estimate (taken from
    /// the control connection's SRTT). Returns the new allowed rate.
    pub fn on_report(&mut self, now: SimTime, report: ReceiverReport, rtt: SimDuration) -> f64 {
        self.last_report = Some(now);
        let w = self.cfg.loss_smoothing;
        self.smoothed_loss = (1.0 - w) * self.smoothed_loss + w * report.loss_rate;

        if self.smoothed_loss > 0.005 {
            // Congestion: leave slow-start and cap at the TCP-equation
            // rate, never far above what the receiver actually saw arrive.
            self.slow_start = false;
            let eq = self.tcp_equation(rtt, self.smoothed_loss);
            // Never above what actually arrived: sending faster than the
            // bottleneck delivers only builds queues.
            let ceiling = report.recv_rate_bps;
            self.allowed_bps = eq.min(ceiling.max(self.cfg.min_rate_bps));
        } else if self.slow_start {
            // Slow-start: double per clean report, like TFRC's initial
            // phase (the paper's Figure 1 initial bandwidth burst).
            let base = self.allowed_bps.max(report.recv_rate_bps);
            self.allowed_bps = base * 2.0;
        } else {
            // Steady state: gentle multiplicative probe.
            let base = self.allowed_bps.max(report.recv_rate_bps);
            self.allowed_bps = base * self.cfg.probe_gain;
        }
        self.allowed_bps = self
            .allowed_bps
            .clamp(self.cfg.min_rate_bps, self.cfg.max_rate_bps);
        self.allowed_bps
    }

    /// Halves the rate when reports stop arriving (feedback starvation is
    /// itself a congestion signal), at most once per `interval`.
    pub fn on_report_timeout(&mut self) {
        self.slow_start = false;
        self.allowed_bps = (self.allowed_bps / 2.0).max(self.cfg.min_rate_bps);
    }

    /// Time of the most recent report.
    pub fn last_report(&self) -> Option<SimTime> {
        self.last_report
    }
}

/// A byte-granularity token bucket used to pace UDP packets at the allowed
/// rate.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: f64,
    burst_bytes: f64,
    tokens: f64,
    last_fill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket with the given rate and burst (in bytes).
    pub fn new(rate_bps: f64, burst_bytes: f64) -> Self {
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes,
            last_fill: SimTime::ZERO,
        }
    }

    /// Updates the fill rate.
    pub fn set_rate(&mut self, rate_bps: f64) {
        self.rate_bps = rate_bps.max(0.0);
    }

    /// The current rate.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_fill).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bps / 8.0).min(self.burst_bytes);
        self.last_fill = now;
    }

    /// Attempts to spend `bytes`; `true` on success.
    pub fn try_consume(&mut self, now: SimTime, bytes: u32) -> bool {
        self.refill(now);
        let need = f64::from(bytes);
        if self.tokens >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }

    /// When enough tokens for `bytes` will have accumulated.
    pub fn next_ready(&self, now: SimTime, bytes: u32) -> SimTime {
        let deficit = f64::from(bytes) - self.tokens;
        if deficit <= 0.0 || self.rate_bps <= 0.0 {
            return now;
        }
        now + SimDuration::from_secs_f64(deficit * 8.0 / self.rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips() {
        let r = ReceiverReport {
            loss_rate: 0.031,
            recv_rate_bps: 123_456.7,
        };
        assert_eq!(ReceiverReport::parse(&r.encode()), Some(r));
    }

    #[test]
    fn report_parse_rejects_garbage() {
        assert!(ReceiverReport::parse("").is_none());
        assert!(ReceiverReport::parse("abc:1").is_none());
        assert!(ReceiverReport::parse("1.5:100").is_none()); // loss > 1
        assert!(ReceiverReport::parse("0.1:-5").is_none());
        assert!(ReceiverReport::parse("0.1").is_none());
    }

    #[test]
    fn clean_reports_probe_upward() {
        let mut c = TfrcController::new(TfrcConfig::default(), 20_000.0);
        assert!(c.in_slow_start());
        // Slow-start doubles per clean report until the configured ceiling.
        let r1 = c.on_report(
            SimTime::from_secs(1),
            ReceiverReport {
                loss_rate: 0.0,
                recv_rate_bps: 20_000.0,
            },
            SimDuration::from_millis(80),
        );
        assert!((r1 - 40_000.0).abs() < 1.0, "doubled: {r1}");
        let mut last = r1;
        for i in 2..8 {
            let rate = c.on_report(
                SimTime::from_secs(i),
                ReceiverReport {
                    loss_rate: 0.0,
                    recv_rate_bps: last,
                },
                SimDuration::from_millis(80),
            );
            assert!(
                rate >= last,
                "never decreases on clean reports: {rate} vs {last}"
            );
            last = rate;
        }
        // ...and saturates at the ceiling.
        assert!((last - TfrcConfig::default().max_rate_bps).abs() < 1.0);
    }

    #[test]
    fn loss_caps_at_tcp_equation() {
        let mut c = TfrcController::new(TfrcConfig::default(), 400_000.0);
        let rtt = SimDuration::from_millis(100);
        // Repeated 5% loss reports.
        let mut rate = 0.0;
        for i in 0..8 {
            rate = c.on_report(
                SimTime::from_secs(i),
                ReceiverReport {
                    loss_rate: 0.05,
                    recv_rate_bps: 300_000.0,
                },
                rtt,
            );
        }
        let eq = c.tcp_equation(rtt, c.smoothed_loss());
        assert!(rate <= eq * 1.01, "rate {rate} above equation {eq}");
        assert!(rate < 400_000.0, "must back off from initial");
    }

    #[test]
    fn rate_respects_bounds() {
        let cfg = TfrcConfig::default();
        let mut c = TfrcController::new(cfg, 1e9);
        assert!(c.allowed_bps() <= cfg.max_rate_bps);
        for i in 0..30 {
            c.on_report(
                SimTime::from_secs(i),
                ReceiverReport {
                    loss_rate: 0.5,
                    recv_rate_bps: 100.0,
                },
                SimDuration::from_secs(2),
            );
        }
        assert!(c.allowed_bps() >= cfg.min_rate_bps);
    }

    #[test]
    fn crossed_bounds_degenerate_to_fixed_rate() {
        // A per-session cap below the configured floor must not panic
        // (f64::clamp panics when min > max); the floor wins.
        let cfg = TfrcConfig {
            min_rate_bps: 350_000.0,
            max_rate_bps: 326_000.0,
            ..TfrcConfig::default()
        };
        let mut c = TfrcController::new(cfg, 400_000.0);
        assert_eq!(c.allowed_bps(), 350_000.0);
        c.on_report(
            SimTime::from_secs(1),
            ReceiverReport {
                loss_rate: 0.1,
                recv_rate_bps: 100_000.0,
            },
            SimDuration::from_millis(100),
        );
        assert_eq!(c.allowed_bps(), 350_000.0);
    }

    #[test]
    fn report_timeout_halves() {
        let mut c = TfrcController::new(TfrcConfig::default(), 200_000.0);
        c.on_report_timeout();
        assert!((c.allowed_bps() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn equation_decreases_with_rtt_and_loss() {
        let c = TfrcController::new(TfrcConfig::default(), 1.0);
        let base = c.tcp_equation(SimDuration::from_millis(50), 0.01);
        assert!(c.tcp_equation(SimDuration::from_millis(200), 0.01) < base);
        assert!(c.tcp_equation(SimDuration::from_millis(50), 0.04) < base);
        // 4x loss → ~2x lower (sqrt).
        let quarter = c.tcp_equation(SimDuration::from_millis(50), 0.04);
        assert!((base / quarter - 2.0).abs() < 0.05);
    }

    #[test]
    fn token_bucket_paces_rate() {
        let mut tb = TokenBucket::new(80_000.0, 2_000.0); // 10 KB/s, 2 KB burst
        let t0 = SimTime::from_secs(1);
        // Burst drains first.
        assert!(tb.try_consume(t0, 1000));
        assert!(tb.try_consume(t0, 1000));
        assert!(!tb.try_consume(t0, 1000));
        // After 100 ms, 1 KB refilled.
        let t1 = t0 + SimDuration::from_millis(100);
        assert!(tb.try_consume(t1, 1000));
        assert!(!tb.try_consume(t1, 1));
    }

    #[test]
    fn next_ready_predicts_refill() {
        let mut tb = TokenBucket::new(80_000.0, 1_000.0);
        let t0 = SimTime::from_secs(1);
        assert!(tb.try_consume(t0, 1000));
        let ready = tb.next_ready(t0, 500);
        assert_eq!(ready, t0 + SimDuration::from_millis(50));
        assert!(!tb.try_consume(ready - SimDuration::from_millis(1), 500));
        assert!(tb.try_consume(ready, 500));
    }

    #[test]
    fn rate_change_applies() {
        let mut tb = TokenBucket::new(8_000.0, 2_000.0);
        let t0 = SimTime::from_secs(1);
        assert!(tb.try_consume(t0, 2_000));
        tb.set_rate(80_000.0);
        // At 80 kbps, 1000 bytes refill in 100 ms (old rate would give 100).
        let t1 = t0 + SimDuration::from_millis(100);
        assert!(
            tb.try_consume(t1, 1000),
            "new rate should refill 1000 bytes in 100ms"
        );
        assert!(!tb.try_consume(t1, 100));
    }
}
