//! The streaming server: session control, SureStream switching, pacing,
//! scalable-video thinning, FEC, and UDP rate control.
//!
//! One [`RealServer`] serves one streaming session (the study runs every
//! session in its own simulated world; server-side contention is modeled by
//! cross traffic on the server's access link). The server:
//!
//! * answers RTSP on the control TCP connection (DESCRIBE/SETUP/PLAY/...),
//! * streams media packets over the negotiated transport, running ahead of
//!   real time by `buffer_lead` to fill the player's buffer (the initial
//!   bandwidth burst visible in the paper's Figure 1),
//! * adapts: picks the SureStream rung fitting the measured throughput
//!   (TFRC reports on UDP, delivered-byte rate on TCP), switching with
//!   hysteresis, and thins non-key frames when even the lowest rung
//!   exceeds the available rate (Scalable Video Technology),
//! * protects UDP data with one XOR-parity packet per FEC group.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rv_media::{packetize_frame_into, parity_packet, Clip, FrameSchedule, MediaPacket, PacketKind};
use rv_net::Addr;
use rv_rtsp::{Decoder, ServerHandler, ServerSession, Status, TransportKind, TransportSpec};
use rv_sim::trace::{self, TraceEvent};
use rv_sim::{PayloadPool, SimDuration, SimTime};
use rv_transport::{Stack, TcpHandle, UdpHandle};

use crate::catalog::Catalog;
use crate::ratecontrol::{ReceiverReport, TfrcConfig, TfrcController, TokenBucket};

/// The SET_PARAMETER header carrying receiver reports.
pub const REPORT_PARAM: &str = "x-receiver-report";

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Whether this server picks UDP for auto-configured clients.
    pub prefers_udp: bool,
    /// Server-side UDP data port.
    pub data_udp_port: u16,
    /// How far ahead of the playout clock the server pushes media.
    pub buffer_lead: SimDuration,
    /// Data packets per FEC group on UDP (0 disables parity).
    pub fec_group: usize,
    /// UDP rate controller parameters.
    pub tfrc: TfrcConfig,
    /// Minimum spacing between upward rung switches.
    pub switch_hold: SimDuration,
    /// Rate re-evaluation period.
    pub rate_eval_period: SimDuration,
    /// Halve the UDP rate when no report arrives for this long.
    pub report_timeout: SimDuration,
    /// Spacing of audio packets.
    pub audio_interval: SimDuration,
    /// Maximum concurrent sessions this replica admits. `0` means
    /// unlimited — SETUP never refuses for load.
    pub capacity: u32,
    /// Sessions already occupying this replica when the world starts
    /// (cluster background load, drawn deterministically by the gateway).
    /// A SETUP arriving while `background_sessions >= capacity` is
    /// refused with 453 Not Enough Bandwidth.
    pub background_sessions: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            prefers_udp: true,
            data_udp_port: 6970,
            buffer_lead: SimDuration::from_secs(13),
            fec_group: 8,
            tfrc: TfrcConfig::default(),
            switch_hold: SimDuration::from_secs(5),
            rate_eval_period: SimDuration::from_secs(1),
            report_timeout: SimDuration::from_secs(3),
            audio_interval: SimDuration::from_millis(100),
            capacity: 0,
            background_sessions: 0,
        }
    }
}

/// Server lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Video data packets sent.
    pub video_packets: u64,
    /// Audio packets sent.
    pub audio_packets: u64,
    /// FEC parity packets sent.
    pub parity_packets: u64,
    /// Media payload bytes sent (headers included).
    pub bytes_sent: u64,
    /// Video frames fully transmitted.
    pub frames_sent: u64,
    /// Frames skipped by scalable-video thinning.
    pub frames_thinned: u64,
    /// Downward rung switches.
    pub switches_down: u64,
    /// Upward rung switches.
    pub switches_up: u64,
    /// Malformed control messages dropped.
    pub control_errors: u64,
    /// Process crashes injected by the fault plan. Survives restarts,
    /// like the rest of the lifetime counters.
    pub crashes: u64,
    /// SETUPs refused because the replica was at capacity (453 Busy).
    pub admission_rejects: u64,
}

/// Decisions + state shared with the RTSP handler callbacks.
#[derive(Debug)]
struct ServerCore {
    catalog: Catalog,
    prefers_udp: bool,
    data_udp_port: u16,
    /// Admission limit (0 = unlimited) and standing occupancy; a SETUP
    /// with no free slot gets 453 instead of a silently degraded stream.
    capacity: u32,
    occupancy: u32,
    admission_rejects: u64,
    client_max_bps: Option<u32>,
    negotiated: Option<TransportSpec>,
    pending_play: Option<String>,
    pending_teardown: bool,
    pending_reports: Vec<ReceiverReport>,
}

impl ServerHandler for ServerCore {
    fn describe(&mut self, url: &str) -> Option<Vec<u8>> {
        let name = clip_name(url);
        self.catalog.get(name).map(Clip::describe)
    }

    fn client_bandwidth(&mut self, bps: u32) {
        self.client_max_bps = Some(bps);
    }

    fn setup(&mut self, _url: &str, requested: TransportSpec) -> Result<TransportSpec, Status> {
        if self.capacity > 0 && self.occupancy >= self.capacity {
            self.admission_rejects += 1;
            return Err(Status::NOT_ENOUGH_BANDWIDTH);
        }
        let spec = match requested.kind {
            TransportKind::Udp if self.prefers_udp => TransportSpec {
                server_port: Some(self.data_udp_port),
                ..requested
            },
            // Client asked for TCP, or this server downgrades UDP to TCP.
            _ => TransportSpec::tcp(),
        };
        self.negotiated = Some(spec);
        Ok(spec)
    }

    fn play(&mut self, url: &str) {
        self.pending_play = Some(clip_name(url).to_string());
    }

    fn set_parameter(&mut self, _url: &str, name: &str, value: &str) {
        if name.eq_ignore_ascii_case(REPORT_PARAM) {
            if let Some(report) = ReceiverReport::parse(value) {
                self.pending_reports.push(report);
            }
        }
    }

    fn teardown(&mut self, _url: &str) {
        self.pending_teardown = true;
    }
}

/// Extracts the clip name from an rtsp:// URL (the final path component).
fn clip_name(url: &str) -> &str {
    url.rsplit('/').next().unwrap_or(url)
}

/// One active outbound stream.
#[derive(Debug)]
struct ActiveStream {
    clip: Clip,
    transport: TransportKind,
    client_udp: Option<Addr>,
    rung: usize,
    /// Highest rung this client's bandwidth setting allows. SureStream
    /// never serves above the player's configured connection speed — the
    /// headroom between rung rate and path rate is what keeps the buffer
    /// full and playout smooth.
    max_rung: usize,
    schedule: Arc<FrameSchedule>,
    /// Schedules already generated for this stream, one slot per rung.
    /// SureStream oscillates between adjacent rungs for the life of a
    /// stream, and [`FrameSchedule::generate`] is pure in (encoding,
    /// content, duration, seed) — so each rung's schedule is computed at
    /// most once per PLAY and shared from here on every revisit.
    schedules: Vec<Option<Arc<FrameSchedule>>>,
    next_frame: usize,
    play_epoch: SimTime,
    /// High-water mark of transmitted presentation time.
    sent_until: SimDuration,
    next_audio: SimDuration,
    audio_seq: u32,
    fec_buf: Vec<MediaPacket>,
    group_id: u32,
    thin_debt: f64,
    /// Persistent pacing bucket for UDP (rate follows the TFRC controller).
    bucket: TokenBucket,
    eos_sent: bool,
    last_rate_eval: SimTime,
    last_switch: SimTime,
    tcp_bytes_acked_prev: u64,
    last_timeout_check: SimTime,
}

/// Exact generation inputs of one frame schedule. [`FrameSchedule::generate`]
/// is pure in these, so two lookups with equal keys are guaranteed the
/// same schedule bit for bit — which is why a cache hit can never perturb
/// a dump.
type ScheduleKey = (u64, u32, u32, u64, u32, rv_media::ContentKind, u64);

/// Schedules the cache holds before it wipes itself: a session touches at
/// most a ladder's worth of rungs per server, so this bounds steady-state
/// memory without ever evicting an entry a live stream is about to revisit.
const SCHEDULE_CACHE_CAP: usize = 32;

/// A worker-wide frame-schedule cache, shared by every server (primary
/// and replicas) a worker builds over a campaign.
///
/// Keys are the **exact** inputs of [`FrameSchedule::generate`] — seed
/// included. Seeds are derived per server from the session seed, so
/// distinct sessions never collide and a hit returns exactly the schedule
/// the server would have generated; the cache converts regenerations with
/// identical inputs (rung revisits after a re-SETUP, session retries,
/// crash/restart cycles) into `Arc` clones. It holds no RNG and draws
/// nothing: sharing it across sessions cannot shift any random stream.
#[derive(Debug, Clone, Default)]
pub struct ScheduleCache {
    inner: Arc<Mutex<HashMap<ScheduleKey, Arc<FrameSchedule>>>>,
}

impl ScheduleCache {
    /// The schedule for these generation inputs, computing and caching it
    /// on first sight.
    pub fn get_or_generate(
        &self,
        enc: &rv_media::Encoding,
        content: rv_media::ContentKind,
        duration: SimDuration,
        seed: u64,
    ) -> Arc<FrameSchedule> {
        let key = (
            seed,
            enc.total_bps,
            enc.audio_bps,
            enc.frame_rate.to_bits(),
            enc.keyframe_interval,
            content,
            duration.as_micros(),
        );
        let mut map = self.inner.lock().expect("schedule cache poisoned");
        if let Some(s) = map.get(&key) {
            return Arc::clone(s);
        }
        let s = Arc::new(FrameSchedule::generate(enc, content, duration, seed));
        if map.len() >= SCHEDULE_CACHE_CAP {
            // Entries from retired sessions can never hit again (their
            // seeds are gone with the session), so a full wipe only costs
            // the live session its handful of warm rungs once in a while.
            map.clear();
        }
        map.insert(key, Arc::clone(&s));
        s
    }

    /// Number of cached schedules.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("schedule cache poisoned").len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Recyclable server storage harvested from a retired session's server.
///
/// Everything here is capacity, not state: a server built from scratch
/// behaves bit-identically to one built fresh — its staging buffers and
/// payload pool simply start warm, so steady-state streaming allocates
/// nothing. The payload pool is the big win: its working set of recycled
/// backings (sized by how long TCP holds sent bytes for retransmit) is
/// paid for once per worker instead of once per session.
#[derive(Debug)]
pub struct ServerScratch {
    decoder: Decoder,
    txbuf: Vec<u8>,
    udp_scratch: Vec<u8>,
    udp_bounds: Vec<(Addr, usize, usize)>,
    pkt_scratch: Vec<MediaPacket>,
    payload_pool: PayloadPool,
    ctrl_buf: Vec<u8>,
    pending_reports: Vec<ReceiverReport>,
    /// The worker-wide schedule cache, threaded through the scratch so
    /// consecutive sessions on one worker share it (a handle, not
    /// capacity: see [`ScheduleCache`]).
    schedules: ScheduleCache,
}

impl Default for ServerScratch {
    fn default() -> Self {
        ServerScratch {
            decoder: Decoder::new(),
            txbuf: Vec::new(),
            udp_scratch: Vec::new(),
            udp_bounds: Vec::new(),
            pkt_scratch: Vec::new(),
            payload_pool: PayloadPool::new(),
            ctrl_buf: Vec::new(),
            pending_reports: Vec::new(),
            schedules: ScheduleCache::default(),
        }
    }
}

/// The streaming server for one session.
#[derive(Debug)]
pub struct RealServer {
    cfg: ServerConfig,
    core: ServerCore,
    rtsp: ServerSession,
    decoder: Decoder,
    ctrl: TcpHandle,
    data_tcp: TcpHandle,
    udp: UdpHandle,
    stream: Option<ActiveStream>,
    tfrc: TfrcController,
    next_seq: u32,
    clip_seed: u64,
    stats: ServerStats,
    alive: bool,
    /// Staging buffer for the TCP data path: one pump's packets are
    /// encoded here back-to-back and pushed to the socket as a single
    /// large chunk, so segmentization slices one backing allocation
    /// instead of straddling per-packet buffers.
    txbuf: Vec<u8>,
    /// Staging buffer for the UDP data path: one pump's datagrams are
    /// encoded here back-to-back and sent as zero-copy slices of a single
    /// shared backing allocation.
    udp_scratch: Vec<u8>,
    /// Datagram boundaries within `udp_scratch`: `(dst, start, len)`.
    udp_bounds: Vec<(Addr, usize, usize)>,
    /// Reusable packetization scratch (one frame's packets).
    pkt_scratch: Vec<MediaPacket>,
    /// Recycled payload backings for the pump flushes: once warm, staging
    /// a pump's bytes onto the wire allocates nothing.
    payload_pool: PayloadPool,
    /// Reused staging buffer for outgoing control responses.
    ctrl_buf: Vec<u8>,
    /// Worker-wide frame-schedule cache (see [`ScheduleCache`]).
    schedule_cache: ScheduleCache,
}

impl RealServer {
    /// Creates a server. `ctrl` and `data_tcp` must be listening TCP
    /// sockets; `udp` the server's data socket. `clip_seed` makes clip
    /// encodings deterministic per server.
    pub fn new(
        cfg: ServerConfig,
        catalog: Catalog,
        ctrl: TcpHandle,
        data_tcp: TcpHandle,
        udp: UdpHandle,
        clip_seed: u64,
    ) -> Self {
        Self::with_scratch(
            cfg,
            catalog,
            ctrl,
            data_tcp,
            udp,
            clip_seed,
            ServerScratch::default(),
        )
    }

    /// As [`RealServer::new`] but reusing a retired server's storage (see
    /// [`ServerScratch`]). Behavior is identical to a fresh server.
    pub fn with_scratch(
        cfg: ServerConfig,
        catalog: Catalog,
        ctrl: TcpHandle,
        data_tcp: TcpHandle,
        udp: UdpHandle,
        clip_seed: u64,
        scratch: ServerScratch,
    ) -> Self {
        RealServer {
            core: ServerCore {
                catalog,
                prefers_udp: cfg.prefers_udp,
                data_udp_port: cfg.data_udp_port,
                capacity: cfg.capacity,
                occupancy: cfg.background_sessions,
                admission_rejects: 0,
                client_max_bps: None,
                negotiated: None,
                pending_play: None,
                pending_teardown: false,
                pending_reports: scratch.pending_reports,
            },
            rtsp: ServerSession::new(),
            decoder: scratch.decoder,
            ctrl,
            data_tcp,
            udp,
            stream: None,
            tfrc: TfrcController::new(cfg.tfrc, 100_000.0),
            next_seq: 0,
            clip_seed,
            stats: ServerStats::default(),
            alive: true,
            txbuf: scratch.txbuf,
            udp_scratch: scratch.udp_scratch,
            udp_bounds: scratch.udp_bounds,
            pkt_scratch: scratch.pkt_scratch,
            payload_pool: scratch.payload_pool,
            ctrl_buf: scratch.ctrl_buf,
            schedule_cache: scratch.schedules,
            cfg,
        }
    }

    /// A handle to this server's schedule cache, for sharing with replica
    /// servers of the same world (see [`ScheduleCache`]).
    pub fn schedule_cache(&self) -> ScheduleCache {
        self.schedule_cache.clone()
    }

    /// Points this server at a shared schedule cache. Call before any
    /// stream starts; schedules already cached under other servers' seeds
    /// are invisible to this one, so sharing is behavior-neutral.
    pub fn share_schedule_cache(&mut self, cache: ScheduleCache) {
        self.schedule_cache = cache;
    }

    /// Tears the server down, harvesting its reusable storage for the
    /// next session (capacity only — no session state survives).
    pub fn into_scratch(mut self) -> ServerScratch {
        self.decoder.reset();
        self.txbuf.clear();
        self.udp_scratch.clear();
        self.udp_bounds.clear();
        self.pkt_scratch.clear();
        self.ctrl_buf.clear();
        self.core.pending_reports.clear();
        ServerScratch {
            decoder: self.decoder,
            txbuf: self.txbuf,
            udp_scratch: self.udp_scratch,
            udp_bounds: self.udp_bounds,
            pkt_scratch: self.pkt_scratch,
            payload_pool: self.payload_pool,
            ctrl_buf: self.ctrl_buf,
            pending_reports: self.core.pending_reports,
            schedules: self.schedule_cache,
        }
    }

    /// `true` unless [`RealServer::crash`] has taken the process down.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Simulates the server process dying: every connection is torn down
    /// with an RST on the wire and all session state vanishes. While down
    /// the host answers further segments with RSTs (no listener), so a
    /// reconnecting client fails fast as "refused" rather than timing out.
    pub fn crash(&mut self, stack: &mut Stack) {
        self.alive = false;
        self.stats.crashes += 1;
        self.stream = None;
        self.core.negotiated = None;
        self.core.client_max_bps = None;
        self.core.pending_play = None;
        self.core.pending_teardown = false;
        self.core.pending_reports.clear();
        self.rtsp = ServerSession::new();
        self.decoder = Decoder::new();
        self.txbuf.clear();
        self.udp_scratch.clear();
        self.udp_bounds.clear();
        stack.tcp(self.ctrl).abort();
        stack.tcp(self.data_tcp).abort();
    }

    /// Brings a crashed server back up with fresh listening sockets. The
    /// catalog and lifetime stats survive the restart; session state does
    /// not (clients must DESCRIBE/SETUP/PLAY from scratch).
    pub fn restart(&mut self, stack: &mut Stack) {
        assert!(!self.alive, "restart on a live server");
        self.alive = true;
        stack.tcp(self.ctrl).reset();
        stack.tcp(self.data_tcp).reset();
        stack.tcp(self.ctrl).listen();
        stack.tcp(self.data_tcp).listen();
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admission_rejects: self.core.admission_rejects,
            ..self.stats
        }
    }

    /// The rung currently streaming, if any.
    pub fn current_rung(&self) -> Option<usize> {
        self.stream.as_ref().map(|s| s.rung)
    }

    /// The UDP rate controller's current allowed rate.
    pub fn allowed_bps(&self) -> f64 {
        self.tfrc.allowed_bps()
    }

    /// `true` while a stream is active.
    pub fn is_streaming(&self) -> bool {
        self.stream.is_some()
    }

    /// Debug snapshot: (rung, next_frame, schedule len, sent_until ms).
    pub fn debug_stream(&self) -> Option<(usize, usize, usize, u64)> {
        self.stream.as_ref().map(|s| {
            (
                s.rung,
                s.next_frame,
                s.schedule.len(),
                s.sent_until.as_millis(),
            )
        })
    }

    /// Debug: the rate controller's smoothed loss estimate.
    pub fn debug_loss(&self) -> f64 {
        self.tfrc.smoothed_loss()
    }

    /// Runs the server at `now`: control-plane processing then data pump.
    /// Returns how many units of work it performed (control messages
    /// handled, control events applied, media packets emitted) so drivers
    /// can feed server progress into their settle fixed point the same way
    /// they feed stack and network progress.
    pub fn poll(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        if !self.alive {
            return 0; // dead processes do no work; the stack still RSTs
        }
        let mut work = self.recover_connections(stack);
        let unadmitted = self.core.negotiated.is_none();
        work += self.pump_control(stack);
        if unadmitted {
            if let Some(spec) = self.core.negotiated {
                trace::emit(now, || TraceEvent::ServerAdmit {
                    transport: match spec.kind {
                        TransportKind::Udp => "udp",
                        TransportKind::Tcp => "tcp",
                    },
                });
            }
        }
        work += self.apply_control_events(now, stack);
        let pumped = self.pump_data(now, stack);
        if pumped > 0 {
            trace::emit(now, || TraceEvent::ServerPump {
                packets: pumped as u32,
            });
        }
        work + pumped
    }

    /// A client that aborted (RST) kills its session: the daemon recycles
    /// the connection state and returns to listening for a fresh client.
    /// Fault-free sessions never RST, so this never fires without faults.
    fn recover_connections(&mut self, stack: &mut Stack) -> usize {
        let mut work = 0;
        if stack.tcp(self.ctrl).take_error().is_some() {
            // The control connection died: the whole session is gone.
            self.stream = None;
            self.core.negotiated = None;
            self.core.client_max_bps = None;
            self.core.pending_play = None;
            self.core.pending_teardown = false;
            self.core.pending_reports.clear();
            self.rtsp = ServerSession::new();
            self.decoder = Decoder::new();
            stack.tcp(self.ctrl).reset();
            stack.tcp(self.ctrl).listen();
            work += 1;
        }
        if stack.tcp(self.data_tcp).take_error().is_some() {
            if self
                .stream
                .as_ref()
                .is_some_and(|s| s.transport == TransportKind::Tcp)
            {
                self.stream = None;
            }
            stack.tcp(self.data_tcp).reset();
            stack.tcp(self.data_tcp).listen();
            work += 1;
        }
        work
    }

    /// When the server next needs attention.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        if !self.alive {
            return None;
        }
        // While streaming, pacing and rate evaluation need a steady tick;
        // idle servers are woken by control-connection arrivals.
        self.stream
            .as_ref()
            .map(|_| now + SimDuration::from_millis(20))
    }

    fn pump_control(&mut self, stack: &mut Stack) -> usize {
        let mut handled = 0;
        let decoder = &mut self.decoder;
        stack
            .tcp(self.ctrl)
            .recv_with(usize::MAX, &mut |chunk| decoder.feed(chunk));
        loop {
            match self.decoder.next_message() {
                Ok(Some(msg)) => {
                    let resp = self.rtsp.on_request(&mut self.core, &msg);
                    self.ctrl_buf.clear();
                    resp.encode_into(&mut self.ctrl_buf);
                    stack.tcp(self.ctrl).send(&self.ctrl_buf);
                    handled += 1;
                }
                Ok(None) => break,
                Err(_) => {
                    self.stats.control_errors += 1;
                    break;
                }
            }
        }
        handled
    }

    fn apply_control_events(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        let mut applied = 0;
        if self.core.pending_teardown {
            self.core.pending_teardown = false;
            self.stream = None;
            applied += 1;
        }
        if let Some(clip_name) = self.core.pending_play.take() {
            self.start_stream(now, stack, &clip_name);
            applied += 1;
        }
        let rtt = stack
            .tcp_ref(self.ctrl)
            .srtt()
            .unwrap_or(SimDuration::from_millis(200));
        for report in self.core.pending_reports.drain(..) {
            self.tfrc.on_report(now, report, rtt);
            applied += 1;
        }
        applied
    }

    fn start_stream(&mut self, now: SimTime, stack: &mut Stack, clip_name: &str) {
        let Some(clip) = self.core.catalog.get(clip_name).cloned() else {
            return; // vanished between DESCRIBE and PLAY
        };
        let Some(spec) = self.core.negotiated else {
            return; // PLAY without SETUP: session machine already rejected
        };
        // Initial rung: what the client says its connection supports,
        // moderated by what TFRC currently believes.
        let client_bps = f64::from(self.core.client_max_bps.unwrap_or(300_000));
        let max_rung = clip.ladder.select(client_bps * 0.9);
        let initial = clip.ladder.select(client_bps * 0.8).min(max_rung);
        let rung_bps = f64::from(clip.ladder.rungs()[initial].total_bps);
        // Cap the rate controller at the top rung (plus pacing headroom):
        // a media server has nothing to gain from probing beyond the
        // encoded rate, and doing so only manufactures queue loss.
        let top_bps = f64::from(
            clip.ladder
                .rungs()
                .last()
                .expect("ladder nonempty")
                .total_bps,
        );
        // ... and never above the client's stated connection speed: pushing
        // past the access link only fills its queue with loss and delay.
        let tfrc_cfg = crate::ratecontrol::TfrcConfig {
            max_rate_bps: self
                .cfg
                .tfrc
                .max_rate_bps
                .min(top_bps * 1.25)
                // 0.85: leave room for FEC (+1/8), audio, and headers so
                // the wire rate stays under the client's access link.
                .min(client_bps * 0.85),
            ..self.cfg.tfrc
        };
        self.tfrc = TfrcController::new(tfrc_cfg, rung_bps.max(20_000.0) * 1.5);

        let client_udp = match spec.kind {
            TransportKind::Udp => {
                let host = stack
                    .tcp_ref(self.ctrl)
                    .remote()
                    .map(|a| a.host)
                    .expect("control connection is established");
                Some(Addr::new(host, spec.client_port))
            }
            TransportKind::Tcp => None,
        };

        let mut schedules: Vec<Option<Arc<FrameSchedule>>> = vec![None; clip.ladder.len()];
        let schedule = self.schedule_for(&clip, initial);
        schedules[initial] = Some(Arc::clone(&schedule));
        self.stream = Some(ActiveStream {
            transport: spec.kind,
            client_udp,
            rung: initial,
            max_rung,
            schedule,
            schedules,
            next_frame: 0,
            play_epoch: now,
            sent_until: SimDuration::ZERO,
            next_audio: SimDuration::ZERO,
            audio_seq: 0,
            fec_buf: Vec::new(),
            group_id: 0,
            thin_debt: 0.0,
            bucket: {
                // The burst must exceed the largest single frame (a
                // low-action keyframe at the top rung can reach ~16 KB);
                // a frame bigger than the burst could never be sent and
                // would livelock the stream.
                let mut b = TokenBucket::new(self.tfrc.allowed_bps(), 32_000.0);
                // Anchor refills to the stream start, not time zero.
                b.try_consume(now, 0);
                b
            },
            eos_sent: false,
            last_rate_eval: now,
            last_switch: now,
            tcp_bytes_acked_prev: 0,
            last_timeout_check: now,
            clip,
        });
    }

    fn schedule_for(&self, clip: &Clip, rung: usize) -> Arc<FrameSchedule> {
        let enc = &clip.ladder.rungs()[rung];
        let seed = self
            .clip_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(hash_name(&clip.name))
            .wrapping_add(rung as u64);
        self.schedule_cache
            .get_or_generate(enc, clip.content, clip.duration, seed)
    }

    fn pump_data(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        let Some(mut stream) = self.stream.take() else {
            return 0;
        };
        let mut emitted = 0;
        self.evaluate_rate(now, stack, &mut stream);

        let media_clock = now.saturating_since(stream.play_epoch);
        let horizon = media_clock + self.cfg.buffer_lead;
        let rung_bps = f64::from(stream.clip.ladder.rungs()[stream.rung].total_bps);
        // Scalable Video Technology thinning applies to the rate-controlled
        // UDP path; TCP is governed by its own backpressure. Thinning to
        // ~85 % of the allowed rate leaves delivery margin so the surviving
        // frames arrive ahead of their deadlines and play smoothly —
        // "reduce the frame rate in a controlled fashion to maintain smooth
        // video" (paper, Section II.C).
        let thin_ratio = match stream.transport {
            TransportKind::Udp => (0.85 * self.tfrc.allowed_bps() / rung_bps).clamp(0.0, 1.0),
            TransportKind::Tcp => 1.0,
        };
        // UDP pacing follows the rate controller; TCP paces itself.
        stream.bucket.set_rate(self.tfrc.allowed_bps().max(8_000.0));

        // --- audio track (constant rate) ---
        let audio_bps = stream.clip.ladder.rungs()[stream.rung].audio_bps;
        let audio_bytes =
            (f64::from(audio_bps) * self.cfg.audio_interval.as_secs_f64() / 8.0) as u16;
        while stream.next_audio <= horizon && stream.next_audio < stream.clip.duration {
            let pkt = MediaPacket {
                kind: PacketKind::Audio,
                key: false,
                rung: stream.rung as u8,
                frame_index: stream.audio_seq,
                frag_index: 0,
                frag_count: 1,
                pts_micros: stream.next_audio.as_micros(),
                group_id: 0,
                seq: 0,
                payload_len: audio_bytes.max(8),
            };
            let wire = pkt.wire_len() as u32;
            let can_send = match stream.transport {
                TransportKind::Udp => stream.bucket.try_consume(now, wire),
                TransportKind::Tcp => {
                    // Staged bytes count against the socket window exactly
                    // as if each packet had been written eagerly.
                    stack.tcp_ref(self.data_tcp).send_capacity_left()
                        >= wire as usize + self.txbuf.len()
                }
            };
            if !can_send {
                break;
            }
            let mut pkt = pkt;
            pkt.seq = self.bump_seq();
            self.transmit(&stream, pkt);
            self.stats.audio_packets += 1;
            emitted += 1;
            stream.audio_seq += 1;
            stream.next_audio += self.cfg.audio_interval;
        }

        // --- video frames ---
        while stream.next_frame < stream.schedule.len() {
            let frame = stream.schedule.frames()[stream.next_frame];
            if frame.pts > horizon {
                break;
            }
            // Scalable Video Technology: drop non-key frames when the
            // allowed rate is meaningfully below the rung's rate (small
            // transient dips are absorbed by the playout buffer).
            if !frame.key && thin_ratio < 0.90 {
                stream.thin_debt += 1.0 - thin_ratio;
                if stream.thin_debt >= 1.0 {
                    stream.thin_debt -= 1.0;
                    stream.next_frame += 1;
                    stream.sent_until = frame.pts;
                    self.stats.frames_thinned += 1;
                    emitted += 1;
                    continue;
                }
            }
            self.pkt_scratch.clear();
            packetize_frame_into(
                &frame,
                stream.rung as u8,
                stream.group_id,
                &mut self.pkt_scratch,
            );
            let wire: u32 = self.pkt_scratch.iter().map(|p| p.wire_len() as u32).sum();
            // Charge the FEC parity share up front so the pacing budget
            // covers every byte that will hit the wire.
            let wire_with_fec = if self.cfg.fec_group > 0 && stream.transport == TransportKind::Udp
            {
                wire + wire / self.cfg.fec_group as u32 + 8
            } else {
                wire
            };
            let can_send = match stream.transport {
                TransportKind::Udp => stream.bucket.try_consume(now, wire_with_fec),
                TransportKind::Tcp => {
                    stack.tcp_ref(self.data_tcp).send_capacity_left()
                        >= wire as usize + self.txbuf.len()
                }
            };
            if !can_send {
                break;
            }
            for i in 0..self.pkt_scratch.len() {
                let mut pkt = self.pkt_scratch[i];
                pkt.seq = self.bump_seq();
                self.transmit(&stream, pkt);
                if self.cfg.fec_group > 0 && stream.transport == TransportKind::Udp {
                    stream.fec_buf.push(pkt);
                    if stream.fec_buf.len() >= self.cfg.fec_group {
                        let mut parity = parity_packet(stream.group_id, &stream.fec_buf);
                        parity.seq = self.bump_seq();
                        self.transmit(&stream, parity);
                        self.stats.parity_packets += 1;
                        stream.fec_buf.clear();
                        stream.group_id += 1;
                    }
                }
            }
            self.stats.frames_sent += 1;
            emitted += 1;
            stream.next_frame += 1;
            stream.sent_until = frame.pts;
        }

        // --- end of stream ---
        if !stream.eos_sent
            && stream.next_frame >= stream.schedule.len()
            && stream.next_audio >= stream.clip.duration
        {
            let mut pkt = MediaPacket {
                kind: PacketKind::EndOfStream,
                key: false,
                rung: stream.rung as u8,
                frame_index: 0,
                frag_index: 0,
                frag_count: 1,
                pts_micros: stream.clip.duration.as_micros(),
                group_id: 0,
                seq: 0,
                payload_len: 0,
            };
            pkt.seq = self.bump_seq();
            self.transmit(&stream, pkt);
            stream.eos_sent = true;
            emitted += 1;
        }

        self.flush_txbuf(stack);
        self.flush_udp(stack);
        self.stream = Some(stream);
        emitted
    }

    /// Hands the pump's staged TCP bytes to the socket as one shared
    /// chunk. Capacity was reserved per packet as it was staged, so the
    /// socket accepts the whole buffer (modulo the same tail truncation an
    /// unchecked eager write would have hit).
    fn flush_txbuf(&mut self, stack: &mut Stack) {
        if self.txbuf.is_empty() {
            return;
        }
        let chunk = self.payload_pool.copy_in(&self.txbuf);
        stack.tcp(self.data_tcp).send_bytes(chunk);
        self.txbuf.clear();
    }

    /// Sends the pump's staged datagrams: one shared backing allocation,
    /// each datagram a zero-copy slice of it. Queue order and simulated
    /// time are exactly those of per-packet eager sends.
    fn flush_udp(&mut self, stack: &mut Stack) {
        if self.udp_bounds.is_empty() {
            return;
        }
        let backing = self.payload_pool.copy_in(&self.udp_scratch);
        for (dst, start, len) in self.udp_bounds.drain(..) {
            stack
                .udp(self.udp)
                .send_to(dst, backing.slice(start..start + len));
        }
        self.udp_scratch.clear();
    }

    fn evaluate_rate(&mut self, now: SimTime, stack: &mut Stack, stream: &mut ActiveStream) {
        if now.saturating_since(stream.last_rate_eval) < self.cfg.rate_eval_period {
            return;
        }
        let dt = now.saturating_since(stream.last_rate_eval).as_secs_f64();
        stream.last_rate_eval = now;

        // Feedback starvation on UDP halves the rate.
        if stream.transport == TransportKind::Udp {
            let last = self.tfrc.last_report().unwrap_or(stream.play_epoch);
            if now.saturating_since(last) > self.cfg.report_timeout
                && now.saturating_since(stream.last_timeout_check) > self.cfg.report_timeout
            {
                self.tfrc.on_report_timeout();
                stream.last_timeout_check = now;
            }
        }

        // Rung selection with hysteresis: switch down on clear evidence the
        // current rate cannot be sustained; step up one rung at a time when
        // the path has comfortably supported more for a while.
        let rungs = stream.clip.ladder.rungs();
        let cur_bps = f64::from(rungs[stream.rung].total_bps);
        let next_bps = rungs.get(stream.rung + 1).map(|r| f64::from(r.total_bps));
        let held = now.saturating_since(stream.last_switch) >= self.cfg.switch_hold;

        match stream.transport {
            TransportKind::Udp => {
                let allowed = self.tfrc.allowed_bps();
                if allowed < cur_bps * 0.85 {
                    let desired = stream.clip.ladder.select(allowed);
                    if desired < stream.rung {
                        self.switch_rung(now, stream, desired);
                        self.stats.switches_down += 1;
                    }
                } else if let Some(next_bps) = next_bps {
                    if allowed > next_bps * 1.15 && held && stream.rung < stream.max_rung {
                        let next = stream.rung + 1;
                        self.switch_rung(now, stream, next);
                        self.stats.switches_up += 1;
                    }
                }
            }
            TransportKind::Tcp => {
                let acked = stack.tcp_ref(self.data_tcp).stats().bytes_acked;
                let measured = (acked - stream.tcp_bytes_acked_prev) as f64 * 8.0 / dt.max(0.1);
                stream.tcp_bytes_acked_prev = acked;
                let backlog = stack.tcp_ref(self.data_tcp).unacked_and_unsent();
                // A large standing backlog means TCP cannot drain what we
                // offer: the measured rate is the path's real capacity. An
                // empty backlog means the offered (media) rate understates
                // the path, so the only down-signal is the backlog itself.
                if backlog > 32 * 1024 && measured > 1_000.0 && measured < cur_bps * 0.85 {
                    let desired = stream.clip.ladder.select(measured);
                    if desired < stream.rung {
                        self.switch_rung(now, stream, desired);
                        self.stats.switches_down += 1;
                    }
                } else if backlog < 4 * 1024
                    && next_bps.is_some()
                    && held
                    && stream.rung < stream.max_rung
                {
                    let next = stream.rung + 1;
                    self.switch_rung(now, stream, next);
                    self.stats.switches_up += 1;
                }
            }
        }
    }

    fn switch_rung(&mut self, now: SimTime, stream: &mut ActiveStream, rung: usize) {
        let from = stream.rung as u8;
        trace::emit(now, || TraceEvent::ServerRungSwitch {
            from,
            to: rung as u8,
        });
        stream.rung = rung;
        stream.schedule = match &stream.schedules[rung] {
            Some(s) => Arc::clone(s),
            None => {
                let s = self.schedule_for(&stream.clip, rung);
                stream.schedules[rung] = Some(Arc::clone(&s));
                s
            }
        };
        stream.next_frame = stream.schedule.first_frame_at(stream.sent_until);
        stream.fec_buf.clear();
        stream.thin_debt = 0.0;
        stream.last_switch = now;
    }

    fn transmit(&mut self, stream: &ActiveStream, pkt: MediaPacket) {
        self.stats.bytes_sent += pkt.wire_len() as u64;
        if pkt.kind == PacketKind::Video {
            self.stats.video_packets += 1;
        }
        match stream.transport {
            TransportKind::Udp => {
                let dst = stream.client_udp.expect("UDP stream has client address");
                let start = self.udp_scratch.len();
                pkt.encode_into(&mut self.udp_scratch);
                self.udp_bounds.push((dst, start, pkt.wire_len()));
            }
            TransportKind::Tcp => {
                // Staged; flushed once at the end of the pump.
                pkt.encode_into(&mut self.txbuf);
            }
        }
    }

    fn bump_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_media::ContentKind;

    #[test]
    fn clip_name_takes_last_component() {
        assert_eq!(clip_name("rtsp://srv.example/news/clip1.rm"), "clip1.rm");
        assert_eq!(clip_name("clip1.rm"), "clip1.rm");
    }

    #[test]
    fn hash_name_is_stable_and_distinct() {
        assert_eq!(hash_name("a.rm"), hash_name("a.rm"));
        assert_ne!(hash_name("a.rm"), hash_name("b.rm"));
    }

    #[test]
    fn core_setup_honors_preference() {
        let mut core = ServerCore {
            catalog: Catalog::new(),
            prefers_udp: true,
            data_udp_port: 6970,
            capacity: 0,
            occupancy: 0,
            admission_rejects: 0,
            client_max_bps: None,
            negotiated: None,
            pending_play: None,
            pending_teardown: false,
            pending_reports: Vec::new(),
        };
        let got = core.setup("u", TransportSpec::udp(5002)).unwrap();
        assert_eq!(got.kind, TransportKind::Udp);
        assert_eq!(got.server_port, Some(6970));

        core.prefers_udp = false;
        let got = core.setup("u", TransportSpec::udp(5002)).unwrap();
        assert_eq!(got.kind, TransportKind::Tcp);

        let got = core.setup("u", TransportSpec::tcp()).unwrap();
        assert_eq!(got.kind, TransportKind::Tcp);
    }

    #[test]
    fn setup_at_capacity_refuses_with_453() {
        let mut core = ServerCore {
            catalog: Catalog::new(),
            prefers_udp: true,
            data_udp_port: 6970,
            capacity: 2,
            occupancy: 2,
            admission_rejects: 0,
            client_max_bps: None,
            negotiated: None,
            pending_play: None,
            pending_teardown: false,
            pending_reports: Vec::new(),
        };
        let err = core.setup("u", TransportSpec::udp(5002)).unwrap_err();
        assert_eq!(err, Status::NOT_ENOUGH_BANDWIDTH);
        assert_eq!(core.admission_rejects, 1);
        assert!(core.negotiated.is_none());
        // Freeing a slot admits the retry.
        core.occupancy = 1;
        assert!(core.setup("u", TransportSpec::udp(5002)).is_ok());
        assert_eq!(core.admission_rejects, 1);
    }

    #[test]
    fn core_describe_respects_availability() {
        let mut catalog = Catalog::new();
        catalog.add(Clip::new(
            "c.rm",
            SimDuration::from_secs(60),
            ContentKind::News,
        ));
        catalog.set_available("c.rm", false);
        let mut core = ServerCore {
            catalog,
            prefers_udp: true,
            data_udp_port: 6970,
            capacity: 0,
            occupancy: 0,
            admission_rejects: 0,
            client_max_bps: None,
            negotiated: None,
            pending_play: None,
            pending_teardown: false,
            pending_reports: Vec::new(),
        };
        assert!(core.describe("rtsp://s/c.rm").is_none());
        core.catalog.set_available("c.rm", true);
        assert!(core.describe("rtsp://s/c.rm").is_some());
    }

    #[test]
    fn crash_closes_listeners_and_restart_reopens_them() {
        use rv_net::HostId;
        use rv_transport::TcpState;

        let mut stack = Stack::new(HostId(1));
        let ctrl = stack.tcp_socket(554, rv_transport::TcpConfig::default());
        let data = stack.tcp_socket(555, rv_transport::TcpConfig::default());
        let udp = stack.udp_socket(6970);
        stack.tcp(ctrl).listen();
        stack.tcp(data).listen();

        let mut server =
            RealServer::new(ServerConfig::default(), Catalog::new(), ctrl, data, udp, 7);
        assert!(server.is_alive());

        server.crash(&mut stack);
        assert!(!server.is_alive());
        assert_eq!(stack.tcp_ref(ctrl).state(), TcpState::Closed);
        assert_eq!(stack.tcp_ref(data).state(), TcpState::Closed);
        assert_eq!(server.poll(SimTime::from_secs(1), &mut stack), 0);
        assert_eq!(server.next_wake(SimTime::from_secs(1)), None);

        server.restart(&mut stack);
        assert!(server.is_alive());
        assert_eq!(stack.tcp_ref(ctrl).state(), TcpState::Listen);
        assert_eq!(stack.tcp_ref(data).state(), TcpState::Listen);
    }

    #[test]
    fn core_collects_reports() {
        let mut core = ServerCore {
            catalog: Catalog::new(),
            prefers_udp: true,
            data_udp_port: 6970,
            capacity: 0,
            occupancy: 0,
            admission_rejects: 0,
            client_max_bps: None,
            negotiated: None,
            pending_play: None,
            pending_teardown: false,
            pending_reports: Vec::new(),
        };
        core.set_parameter("u", REPORT_PARAM, "0.050000:120000.0");
        core.set_parameter("u", "x-unrelated", "whatever");
        core.set_parameter("u", REPORT_PARAM, "not a report");
        assert_eq!(core.pending_reports.len(), 1);
        assert!((core.pending_reports[0].loss_rate - 0.05).abs() < 1e-9);
    }
}
