//! Opt-in global-allocator instrumentation (feature `alloc-stats`).
//!
//! A counting wrapper around the system allocator so benchmarks and
//! `repro --bench-out` can report allocation traffic per simulated
//! session, plus a live-bytes gauge with a high-water mark so the
//! constant-memory claim of the streaming results path is measurable
//! without an external profiler. Counters are process-global relaxed
//! atomics: cheap enough to leave in the hot path, and summed correctly
//! across executor worker threads.
//!
//! This is the one module in the workspace that needs `unsafe` (the
//! `GlobalAlloc` contract); the crate-wide `forbid(unsafe_code)` is
//! relaxed to `deny` outside this feature-gated file.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Number of power-of-two size classes tracked by the histogram.
pub const SIZE_CLASSES: usize = 20;

/// Allocation counts by power-of-two size class: bucket `i` counts
/// allocations of `2^(i-1) < size <= 2^i` bytes (bucket 0: 0 or 1 byte),
/// with everything `> 2^(SIZE_CLASSES-2)` in the last bucket. A cheap
/// fingerprint of *what* is allocating when no profiler is available.
static BY_SIZE: [AtomicU64; SIZE_CLASSES] = [const { AtomicU64::new(0) }; SIZE_CLASSES];

fn size_class(size: u64) -> usize {
    (64 - size.leading_zeros() as usize).min(SIZE_CLASSES - 1)
}

/// Raises the high-water mark to at least `live`.
fn update_peak(live: u64) {
    PEAK.fetch_max(live, Ordering::Relaxed);
}

/// Sample one allocation backtrace per this many allocations (0 = off).
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);
static SAMPLES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
const MAX_SAMPLES: usize = 4096;

std::thread_local! {
    /// Reentrancy guard: capturing/formatting a backtrace allocates, and
    /// those allocations must not recurse into the sampler.
    static IN_SAMPLER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Turns on backtrace sampling: every `every`-th allocation records its
/// backtrace (pass 0 to turn sampling off). A profiler of last resort —
/// expensive while on, so only for targeted probes.
pub fn start_sampling(every: u64) {
    SAMPLE_EVERY.store(every, Ordering::Relaxed);
}

/// Drains and returns the `(size, backtrace)` samples collected so far.
pub fn take_samples() -> Vec<(u64, String)> {
    match SAMPLES.lock() {
        Ok(mut v) => std::mem::take(&mut *v),
        Err(_) => Vec::new(),
    }
}

fn maybe_sample(size: u64, count: u64) {
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    if every == 0 || !count.is_multiple_of(every) {
        return;
    }
    IN_SAMPLER.with(|flag| {
        if flag.get() {
            return;
        }
        flag.set(true);
        let bt = std::backtrace::Backtrace::force_capture();
        let text = format!("{bt}");
        if let Ok(mut v) = SAMPLES.lock() {
            if v.len() < MAX_SAMPLES {
                v.push((size, text));
            }
        }
        flag.set(false);
    });
}

fn on_alloc(size: u64) {
    let count = ALLOCS.fetch_add(1, Ordering::Relaxed) + 1;
    BYTES.fetch_add(size, Ordering::Relaxed);
    BY_SIZE[size_class(size)].fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    update_peak(live);
    maybe_sample(size, count);
}

/// A [`GlobalAlloc`] that counts allocations and allocated bytes before
/// delegating to [`System`]. Install with `#[global_allocator]`:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rv_sim::alloc_stats::CountingAlloc = rv_sim::alloc_stats::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`, which upholds
// the GlobalAlloc contract; the added atomic counters have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size() as u64);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh allocation of the new size for accounting
        // purposes (that is what it costs when it cannot grow in place);
        // the live gauge nets out the old block.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        BY_SIZE[size_class(new_size as u64)].fetch_add(1, Ordering::Relaxed);
        let old = layout.size() as u64;
        let new = new_size as u64;
        if new >= old {
            let live = LIVE.fetch_add(new - old, Ordering::Relaxed) + (new - old);
            update_peak(live);
        } else {
            // Saturating, like dealloc: the shrunk block may predate a
            // `reset()`.
            let delta = old - new;
            let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
                Some(live.saturating_sub(delta))
            });
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Saturating: blocks allocated before a `reset()` may outlive the
        // gauge they were counted in.
        let size = layout.size() as u64;
        let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
            Some(live.saturating_sub(size))
        });
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Cumulative allocation counts per power-of-two size class since process
/// start (or the last [`reset`]); bucket `i` covers sizes up to `2^i`
/// bytes (see [`SIZE_CLASSES`]).
pub fn size_histogram() -> [u64; SIZE_CLASSES] {
    let mut out = [0u64; SIZE_CLASSES];
    for (slot, counter) in out.iter_mut().zip(BY_SIZE.iter()) {
        *slot = counter.load(Ordering::Relaxed);
    }
    out
}

/// Cumulative `(allocations, bytes)` since process start (or the last
/// [`reset`]).
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Currently live heap bytes (allocated minus freed).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start (or the last
/// [`reset`]) — the number the campaign's flat-memory acceptance check
/// gates on.
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Zeroes the cumulative counters and re-arms the high-water mark at the
/// current live size (the live gauge itself is left alone so frees of
/// pre-reset blocks keep netting out).
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    for counter in &BY_SIZE {
        counter.store(0, Ordering::Relaxed);
    }
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}
