//! Opt-in global-allocator instrumentation (feature `alloc-stats`).
//!
//! A counting wrapper around the system allocator so benchmarks and
//! `repro --bench-out` can report allocation traffic per simulated
//! session. Counters are process-global relaxed atomics: cheap enough to
//! leave in the hot path, and summed correctly across executor worker
//! threads.
//!
//! This is the one module in the workspace that needs `unsafe` (the
//! `GlobalAlloc` contract); the crate-wide `forbid(unsafe_code)` is
//! relaxed to `deny` outside this feature-gated file.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that counts allocations and allocated bytes before
/// delegating to [`System`]. Install with `#[global_allocator]`:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rv_sim::alloc_stats::CountingAlloc = rv_sim::alloc_stats::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`, which upholds
// the GlobalAlloc contract; the added atomic counters have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh allocation of the new size for accounting
        // purposes (that is what it costs when it cannot grow in place).
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Cumulative `(allocations, bytes)` since process start (or the last
/// [`reset`]).
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Zeroes both counters.
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
}
