//! Opt-in global-allocator instrumentation (feature `alloc-stats`).
//!
//! A counting wrapper around the system allocator so benchmarks and
//! `repro --bench-out` can report allocation traffic per simulated
//! session, plus a live-bytes gauge with a high-water mark so the
//! constant-memory claim of the streaming results path is measurable
//! without an external profiler. Counters are process-global relaxed
//! atomics: cheap enough to leave in the hot path, and summed correctly
//! across executor worker threads.
//!
//! This is the one module in the workspace that needs `unsafe` (the
//! `GlobalAlloc` contract); the crate-wide `forbid(unsafe_code)` is
//! relaxed to `deny` outside this feature-gated file.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Raises the high-water mark to at least `live`.
fn update_peak(live: u64) {
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_alloc(size: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    update_peak(live);
}

/// A [`GlobalAlloc`] that counts allocations and allocated bytes before
/// delegating to [`System`]. Install with `#[global_allocator]`:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rv_sim::alloc_stats::CountingAlloc = rv_sim::alloc_stats::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`, which upholds
// the GlobalAlloc contract; the added atomic counters have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size() as u64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size() as u64);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh allocation of the new size for accounting
        // purposes (that is what it costs when it cannot grow in place);
        // the live gauge nets out the old block.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        let old = layout.size() as u64;
        let new = new_size as u64;
        if new >= old {
            let live = LIVE.fetch_add(new - old, Ordering::Relaxed) + (new - old);
            update_peak(live);
        } else {
            // Saturating, like dealloc: the shrunk block may predate a
            // `reset()`.
            let delta = old - new;
            let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
                Some(live.saturating_sub(delta))
            });
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // Saturating: blocks allocated before a `reset()` may outlive the
        // gauge they were counted in.
        let size = layout.size() as u64;
        let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
            Some(live.saturating_sub(size))
        });
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Cumulative `(allocations, bytes)` since process start (or the last
/// [`reset`]).
pub fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Currently live heap bytes (allocated minus freed).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start (or the last
/// [`reset`]) — the number the campaign's flat-memory acceptance check
/// gates on.
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Zeroes the cumulative counters and re-arms the high-water mark at the
/// current live size (the live gauge itself is left alone so frees of
/// pre-reset blocks keep netting out).
pub fn reset() {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}
