//! Shared, cheaply sliceable byte buffers: the payload currency of the
//! data path.
//!
//! A simulated media session moves the same bytes through many hands —
//! application encode, TCP send buffer, segmentize, retransmit, receive
//! reassembly, depacketize. Carrying `Vec<u8>` forces a heap copy at
//! every hand-off; [`PayloadBytes`] instead carries an `Arc<[u8]>` plus
//! an `(offset, len)` window, so cloning and slicing are pointer
//! arithmetic and a retransmission re-uses the very allocation the
//! application handed in. [`ByteRope`] chains such windows into the
//! byte-offset-indexed buffer TCP needs.
//!
//! The representation is invisible on the wire: segment sizes, timing,
//! and delivered bytes are identical to the `Vec`-backed implementation,
//! which is what keeps campaign dumps bit-identical across the refactor.

use std::collections::VecDeque;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply clonable, cheaply sliceable view into shared immutable bytes.
///
/// `clone` bumps a refcount; [`PayloadBytes::slice`] narrows the window
/// without touching the backing allocation. Equality is by content, so
/// segments carrying these compare like the `Vec<u8>` they replaced.
#[derive(Clone)]
pub struct PayloadBytes {
    buf: Arc<[u8]>,
    off: u32,
    len: u32,
}

fn empty_backing() -> &'static Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..]))
}

impl PayloadBytes {
    /// The empty payload. Allocation-free: every empty segment (SYNs,
    /// pure ACKs, FINs, RSTs) shares one static backing.
    pub fn empty() -> Self {
        PayloadBytes {
            buf: Arc::clone(empty_backing()),
            off: 0,
            len: 0,
        }
    }

    /// Takes ownership of `vec` as shared bytes. This is the one copy a
    /// payload pays on its way into the shared representation
    /// (`Arc<[u8]>` cannot adopt a `Vec`'s allocation); every clone,
    /// slice, and retransmission afterwards is copy-free.
    pub fn from_vec(vec: Vec<u8>) -> Self {
        if vec.is_empty() {
            return PayloadBytes::empty();
        }
        let len = u32::try_from(vec.len()).expect("payload exceeds u32::MAX bytes");
        PayloadBytes {
            buf: Arc::from(vec),
            off: 0,
            len,
        }
    }

    /// Copies `bytes` into a fresh shared backing.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        if bytes.is_empty() {
            return PayloadBytes::empty();
        }
        let len = u32::try_from(bytes.len()).expect("payload exceeds u32::MAX bytes");
        PayloadBytes {
            buf: Arc::from(bytes),
            off: 0,
            len,
        }
    }

    /// Window length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-window of this payload, sharing the same backing allocation
    /// (never copies; see [`PayloadBytes::same_backing`]).
    ///
    /// # Panics
    /// When the range falls outside `0..len`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds for payload of {} bytes",
            self.len()
        );
        PayloadBytes {
            buf: Arc::clone(&self.buf),
            off: self.off + start as u32,
            len: (end - start) as u32,
        }
    }

    /// `true` when both views share one backing allocation — the
    /// observable fact behind the zero-copy guarantee, testable without
    /// exposing the `Arc` itself.
    pub fn same_backing(&self, other: &PayloadBytes) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }
}

impl Deref for PayloadBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.off as usize..(self.off + self.len) as usize]
    }
}

impl AsRef<[u8]> for PayloadBytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for PayloadBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Payloads are bulk data; print shape, not contents.
        write!(f, "PayloadBytes({} bytes)", self.len)
    }
}

impl Default for PayloadBytes {
    fn default() -> Self {
        PayloadBytes::empty()
    }
}

impl From<Vec<u8>> for PayloadBytes {
    fn from(vec: Vec<u8>) -> Self {
        PayloadBytes::from_vec(vec)
    }
}

impl From<&[u8]> for PayloadBytes {
    fn from(bytes: &[u8]) -> Self {
        PayloadBytes::copy_from_slice(bytes)
    }
}

impl<const N: usize> From<&[u8; N]> for PayloadBytes {
    fn from(bytes: &[u8; N]) -> Self {
        PayloadBytes::copy_from_slice(bytes)
    }
}

impl PartialEq for PayloadBytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for PayloadBytes {}

impl PartialEq<[u8]> for PayloadBytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for PayloadBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for PayloadBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PayloadBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == other[..]
    }
}

/// A recycling allocator for [`PayloadBytes`] backings.
///
/// The data path's one unavoidable copy ([`PayloadBytes::copy_from_slice`]
/// on the way into the shared representation) is also its one unavoidable
/// *allocation* — and on a server pumping media every ~20 ms, those add up
/// to thousands per session. The pool removes them: it keeps a small set
/// of fixed-capacity `Arc<[u8]>` backings and copies new payloads into
/// whichever one has no outstanding windows (`Arc` strong count of one —
/// checked via [`Arc::get_mut`], so reuse is possible exactly when no
/// other view of the bytes can exist). Once the working set is warm,
/// [`PayloadPool::copy_in`] allocates nothing.
///
/// Windows handed out are byte-for-byte identical to fresh allocations
/// (length-exact, contents fully overwritten), so pooling is invisible to
/// everything but the allocator.
#[derive(Debug, Default)]
pub struct PayloadPool {
    chunks: Vec<Arc<[u8]>>,
    chunk_capacity: usize,
    /// Rotating scan start. Windows release in roughly FIFO order (ACKed
    /// TCP data, delivered UDP datagrams), so the chunk freed longest ago
    /// sits just past the one most recently claimed; starting the scan
    /// there makes reuse O(1) amortized instead of rescanning the pinned
    /// prefix on every call.
    cursor: usize,
}

/// Default backing capacity: comfortably above one pacing pump's staged
/// bytes at the highest simulated media rates.
const DEFAULT_POOL_CHUNK: usize = 16 * 1024;

impl PayloadPool {
    /// A pool with the default chunk capacity.
    pub fn new() -> Self {
        Self::with_chunk_capacity(DEFAULT_POOL_CHUNK)
    }

    /// A pool whose recycled backings hold up to `capacity` bytes.
    /// Payloads larger than that fall back to a fresh exact allocation.
    pub fn with_chunk_capacity(capacity: usize) -> Self {
        PayloadPool {
            chunks: Vec::new(),
            chunk_capacity: capacity.max(1),
            cursor: 0,
        }
    }

    /// Copies `bytes` into a recycled backing when one is free, a fresh
    /// one otherwise. The returned window is indistinguishable from
    /// [`PayloadBytes::copy_from_slice`].
    pub fn copy_in(&mut self, bytes: &[u8]) -> PayloadBytes {
        if bytes.is_empty() {
            return PayloadBytes::empty();
        }
        let len = u32::try_from(bytes.len()).expect("payload exceeds u32::MAX bytes");
        if bytes.len() > self.chunk_capacity {
            return PayloadBytes::copy_from_slice(bytes);
        }
        let n = self.chunks.len();
        for probe in 0..n {
            let i = (self.cursor + probe) % n;
            // Strong count 1 ⇔ every window into this backing is gone.
            if let Some(buf) = Arc::get_mut(&mut self.chunks[i]) {
                buf[..bytes.len()].copy_from_slice(bytes);
                self.cursor = i + 1;
                return PayloadBytes {
                    buf: Arc::clone(&self.chunks[i]),
                    off: 0,
                    len,
                };
            }
        }
        // Every backing still has live windows: grow the working set.
        let mut fresh = vec![0u8; self.chunk_capacity];
        fresh[..bytes.len()].copy_from_slice(bytes);
        let arc: Arc<[u8]> = Arc::from(fresh);
        self.chunks.push(Arc::clone(&arc));
        self.cursor = 0;
        PayloadBytes {
            buf: arc,
            off: 0,
            len,
        }
    }

    /// Number of backings the pool currently owns (instrumentation/tests).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

/// A byte-offset-indexed chain of [`PayloadBytes`] chunks: the TCP
/// send/receive buffer representation.
///
/// Pushing takes ownership of a chunk without copying. [`ByteRope::slice`]
/// returns a zero-copy sub-window when the requested range lies within
/// one chunk (the common case: the server flushes one chunk per pacing
/// tick, far larger than an MSS) and pays one bounded gather copy when it
/// spans chunks — segment sizes are dictated by MSS/window arithmetic and
/// must not bend to chunk geometry, or the wire trace would change.
#[derive(Debug, Default)]
pub struct ByteRope {
    chunks: VecDeque<PayloadBytes>,
    len: usize,
}

impl ByteRope {
    /// An empty rope.
    pub fn new() -> Self {
        ByteRope::default()
    }

    /// Total buffered bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all buffered bytes.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Appends a chunk, taking ownership (no copy).
    pub fn push(&mut self, chunk: PayloadBytes) {
        if chunk.is_empty() {
            return;
        }
        self.len += chunk.len();
        self.chunks.push_back(chunk);
    }

    /// Appends by copying `bytes` into one fresh chunk.
    pub fn push_slice(&mut self, bytes: &[u8]) {
        self.push(PayloadBytes::copy_from_slice(bytes));
    }

    /// The bytes at `off..off + len` as one payload. Zero-copy when the
    /// range lies within a single chunk; otherwise gathers into a fresh
    /// allocation.
    ///
    /// # Panics
    /// When `off + len` exceeds the buffered length.
    pub fn slice(&self, off: usize, len: usize) -> PayloadBytes {
        assert!(
            off + len <= self.len,
            "slice {off}+{len} out of bounds for rope of {} bytes",
            self.len
        );
        if len == 0 {
            return PayloadBytes::empty();
        }
        let mut start = off;
        let mut iter = self.chunks.iter();
        // Skip chunks wholly before the window.
        let first = loop {
            let chunk = iter.next().expect("offset within rope");
            if start < chunk.len() {
                break chunk;
            }
            start -= chunk.len();
        };
        if start + len <= first.len() {
            return first.slice(start..start + len);
        }
        // Spanning slice: gather. Bounded by the caller's request (an MSS
        // on the TCP transmit path), not by the rope size.
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&first[start..]);
        while out.len() < len {
            let chunk = iter.next().expect("length within rope");
            let take = (len - out.len()).min(chunk.len());
            out.extend_from_slice(&chunk[..take]);
        }
        PayloadBytes::from_vec(out)
    }

    /// Drops the first `n` bytes (acknowledged data leaving a send
    /// buffer). Whole chunks are released; a straddled chunk is narrowed
    /// in place via a zero-copy sub-slice.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance {n} past rope of {} bytes", self.len);
        let mut left = n;
        while left > 0 {
            let head = self.chunks.front_mut().expect("bytes remain");
            if left >= head.len() {
                left -= head.len();
                self.chunks.pop_front();
            } else {
                *head = head.slice(left..);
                left = 0;
            }
        }
        self.len -= n;
    }

    /// Reads and consumes up to `max` bytes from the front, handing each
    /// contiguous chunk to `sink` without copying. Returns bytes consumed.
    pub fn read_with(&mut self, max: usize, sink: &mut dyn FnMut(&[u8])) -> usize {
        let mut read = 0;
        while read < max {
            let Some(head) = self.chunks.front_mut() else {
                break;
            };
            let take = (max - read).min(head.len());
            sink(&head[..take]);
            if take == head.len() {
                self.chunks.pop_front();
            } else {
                *head = head.slice(take..);
            }
            read += take;
        }
        self.len -= read;
        read
    }

    /// Reads and consumes up to `max` bytes into one `Vec` (single walk,
    /// single allocation).
    pub fn read_vec(&mut self, max: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(max.min(self.len));
        self.read_with(max, &mut |chunk| out.extend_from_slice(chunk));
        out
    }

    /// Number of chunks currently chained (instrumentation/tests).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_payloads_share_one_backing() {
        let a = PayloadBytes::empty();
        let b = PayloadBytes::empty();
        assert!(a.same_backing(&b));
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_round_trips_contents() {
        let p = PayloadBytes::from_vec(vec![1, 2, 3, 4]);
        assert_eq!(&*p, &[1, 2, 3, 4]);
        assert_eq!(p.len(), 4);
        assert_eq!(p, vec![1, 2, 3, 4]);
        assert_eq!(p, [1u8, 2, 3, 4]);
        assert_eq!(p, &[1u8, 2, 3, 4][..]);
    }

    #[test]
    fn slice_never_copies() {
        let p = PayloadBytes::from_vec((0..100).collect());
        let s = p.slice(10..60);
        assert!(s.same_backing(&p), "slice must share the backing Arc");
        assert_eq!(s.len(), 50);
        assert_eq!(s[0], 10);
        let s2 = s.slice(5..);
        assert!(s2.same_backing(&p), "slice of slice still shares");
        assert_eq!(s2[0], 15);
        let c = s2.clone();
        assert!(c.same_backing(&p), "clone shares too");
    }

    #[test]
    fn equality_is_by_content_not_backing() {
        let a = PayloadBytes::from_vec(vec![7, 8, 9]);
        let b = PayloadBytes::copy_from_slice(&[7, 8, 9]);
        assert!(!a.same_backing(&b));
        assert_eq!(a, b);
        assert_ne!(a, PayloadBytes::from_vec(vec![7, 8]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        PayloadBytes::from_vec(vec![1, 2]).slice(0..3);
    }

    #[test]
    fn rope_tracks_length_across_push_and_advance() {
        let mut r = ByteRope::new();
        assert!(r.is_empty());
        r.push_slice(&[1, 2, 3]);
        r.push(PayloadBytes::from_vec(vec![4, 5]));
        r.push(PayloadBytes::empty()); // no-op
        assert_eq!(r.len(), 5);
        assert_eq!(r.chunk_count(), 2);
        r.advance(4);
        assert_eq!(r.len(), 1);
        assert_eq!(r.slice(0, 1), [5u8]);
        r.advance(1);
        assert!(r.is_empty());
        assert_eq!(r.chunk_count(), 0);
    }

    #[test]
    fn rope_slice_within_chunk_is_zero_copy() {
        let mut r = ByteRope::new();
        let chunk = PayloadBytes::from_vec((0..50).collect());
        r.push_slice(&[99; 10]);
        r.push(chunk.clone());
        let s = r.slice(15, 20);
        assert!(s.same_backing(&chunk), "within-chunk slice shares backing");
        assert_eq!(&*s, &(5..25).collect::<Vec<u8>>()[..]);
    }

    #[test]
    fn rope_slice_spanning_chunks_gathers_correctly() {
        let mut r = ByteRope::new();
        r.push_slice(&[0, 1, 2]);
        r.push_slice(&[3, 4]);
        r.push_slice(&[5, 6, 7, 8]);
        let s = r.slice(1, 6);
        assert_eq!(&*s, &[1, 2, 3, 4, 5, 6]);
        // Whole-rope slice too.
        assert_eq!(&*r.slice(0, 9), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn rope_advance_narrows_straddled_chunk_zero_copy() {
        let mut r = ByteRope::new();
        let chunk = PayloadBytes::from_vec((0..10).collect());
        r.push(chunk.clone());
        r.advance(4);
        let s = r.slice(0, 6);
        assert!(s.same_backing(&chunk));
        assert_eq!(&*s, &[4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn rope_read_with_consumes_in_order() {
        let mut r = ByteRope::new();
        r.push_slice(&[1, 2, 3]);
        r.push_slice(&[4, 5]);
        let mut got = Vec::new();
        let n = r.read_with(4, &mut |c| got.extend_from_slice(c));
        assert_eq!(n, 4);
        assert_eq!(got, vec![1, 2, 3, 4]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.read_vec(usize::MAX), vec![5]);
        assert_eq!(r.read_with(10, &mut |_| panic!("empty rope")), 0);
    }

    #[test]
    fn pool_recycles_backing_once_windows_drop() {
        let mut pool = PayloadPool::with_chunk_capacity(64);
        let a = pool.copy_in(&[1, 2, 3]);
        assert_eq!(a, [1u8, 2, 3]);
        assert_eq!(pool.chunk_count(), 1);
        // `a` still alive: a second copy_in must not clobber it.
        let b = pool.copy_in(&[9, 9]);
        assert!(!a.same_backing(&b));
        assert_eq!(pool.chunk_count(), 2);
        assert_eq!(a, [1u8, 2, 3]);
        drop(a);
        drop(b);
        // Both backings free again: no growth, contents exact.
        let c = pool.copy_in(&[7; 64]);
        assert_eq!(pool.chunk_count(), 2);
        assert_eq!(c, [7u8; 64]);
        // Slices keep the backing pinned too.
        let s = c.slice(1..5);
        drop(c);
        let d = pool.copy_in(&[8]);
        assert!(!s.same_backing(&d), "live slice must pin its backing");
        assert_eq!(s, [7u8, 7, 7, 7]);
    }

    #[test]
    fn pool_oversize_payloads_fall_back_to_exact_alloc() {
        let mut pool = PayloadPool::with_chunk_capacity(4);
        let big = pool.copy_in(&[5; 100]);
        assert_eq!(big.len(), 100);
        assert_eq!(big, [5u8; 100]);
        assert_eq!(pool.chunk_count(), 0, "oversize payloads are not pooled");
        assert!(pool.copy_in(&[]).is_empty());
    }

    #[test]
    fn rope_clear_resets() {
        let mut r = ByteRope::new();
        r.push_slice(&[1, 2, 3]);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.chunk_count(), 0);
    }
}
