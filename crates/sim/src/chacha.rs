//! A self-contained ChaCha12 keystream generator.
//!
//! The simulator previously pinned its RNG to `rand_chacha::ChaCha12Rng`;
//! this module is the same construction implemented in-tree so the
//! workspace has no external runtime dependencies and the stream cannot
//! shift under a dependency upgrade. Determinism is defined by this file
//! alone: same key, same keystream, forever.
//!
//! The generator is the IETF ChaCha block function reduced to 12 rounds
//! (6 double rounds) with a 64-bit block counter, which is more than
//! enough keystream (2^70 bytes) for any campaign.

/// ChaCha block constants: "expand 32-byte k".
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha12 keystream generator with buffered block output.
#[derive(Debug, Clone)]
pub(crate) struct ChaCha12 {
    key: [u32; 8],
    counter: u64,
    buf: [u8; 64],
    pos: usize,
}

impl ChaCha12 {
    /// Creates a generator from a 256-bit key (little-endian words).
    pub(crate) fn from_key(key_bytes: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                key_bytes[4 * i],
                key_bytes[4 * i + 1],
                key_bytes[4 * i + 2],
                key_bytes[4 * i + 3],
            ]);
        }
        ChaCha12 {
            key,
            counter: 0,
            buf: [0; 64],
            pos: 64,
        }
    }

    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CONSTANTS);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        // s[14], s[15]: nonce, fixed at zero (one stream per key).
        let mut w = s;
        for _ in 0..6 {
            // Column round.
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for (i, word) in w.iter().enumerate() {
            let out = word.wrapping_add(s[i]).to_le_bytes();
            self.buf[4 * i..4 * i + 4].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(1);
        self.pos = 0;
    }

    /// Next 32 bits of keystream.
    pub(crate) fn next_u32(&mut self) -> u32 {
        if self.pos + 4 > 64 {
            self.refill();
        }
        let v = u32::from_le_bytes([
            self.buf[self.pos],
            self.buf[self.pos + 1],
            self.buf[self.pos + 2],
            self.buf[self.pos + 3],
        ]);
        self.pos += 4;
        v
    }

    /// Next 64 bits of keystream (low word first, as rand_chacha did).
    pub(crate) fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    /// Fills `dest` with keystream bytes.
    pub(crate) fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.pos >= 64 {
                self.refill();
            }
            let n = (dest.len() - written).min(64 - self.pos);
            dest[written..written + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            written += n;
        }
    }
}

#[inline]
fn quarter(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(16);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(12);
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(8);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_stream() {
        let mut a = ChaCha12::from_key([7; 32]);
        let mut b = ChaCha12::from_key([7; 32]);
        for _ in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_keys_diverge() {
        let mut a = ChaCha12::from_key([1; 32]);
        let mut b = ChaCha12::from_key([2; 32]);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_matches_word_stream_across_blocks() {
        let mut a = ChaCha12::from_key([9; 32]);
        let mut b = ChaCha12::from_key([9; 32]);
        // 200 bytes spans multiple 64-byte blocks.
        let mut bytes = [0u8; 200];
        a.fill_bytes(&mut bytes);
        for chunk in bytes.chunks_exact(4) {
            let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            assert_eq!(w, b.next_u32());
        }
    }

    #[test]
    fn keystream_bits_look_balanced() {
        // A crude sanity check, not a statistical test: the population
        // count over 64 KiB of keystream must sit near 50 %.
        let mut g = ChaCha12::from_key([3; 32]);
        let mut ones = 0u64;
        for _ in 0..8192 {
            ones += u64::from(g.next_u64().count_ones());
        }
        let frac = ones as f64 / (8192.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "ones fraction {frac}");
    }
}
