//! The simulation clock and driver-loop helpers.
//!
//! The simulator follows smoltcp's poll-based idiom: components are inert
//! state machines exposing "do work up to `now`" and "when do you next need
//! attention?" operations. A [`Clock`] owns the current instant and enforces
//! monotonicity; [`run_until`] advances a closure-driven loop to a deadline.

use crate::time::{SimDuration, SimTime};

/// A monotone simulated clock.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances to `to`. Panics if `to` is in the past — a component asking
    /// to travel backwards is always a bug worth catching loudly.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(
            to >= self.now,
            "clock cannot move backwards: now={} target={}",
            self.now,
            to
        );
        self.now = to;
    }

    /// Advances by a duration.
    pub fn advance_by(&mut self, d: SimDuration) {
        self.now += d;
    }
}

/// Outcome of one driver step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step did work; poll again at the same instant before advancing.
    Worked,
    /// Nothing to do until the contained instant.
    IdleUntil(SimTime),
    /// Nothing scheduled at all; the simulation has quiesced.
    Quiescent,
}

/// Drives `step` until `deadline`, advancing `clock` between idle periods.
///
/// `step` is called with the current instant; it should process everything
/// due and return a [`StepOutcome`]. Returns the number of non-idle steps
/// executed. The loop stops early if the system quiesces.
pub fn run_until<F>(clock: &mut Clock, deadline: SimTime, mut step: F) -> u64
where
    F: FnMut(SimTime) -> StepOutcome,
{
    let mut work_steps = 0u64;
    while clock.now() <= deadline {
        match step(clock.now()) {
            StepOutcome::Worked => work_steps += 1,
            StepOutcome::IdleUntil(t) => {
                if t <= clock.now() {
                    // A component reported a wake-up that is already due;
                    // re-polling immediately would spin forever. Nudge one
                    // microsecond forward to guarantee progress.
                    clock.advance_to(clock.now() + SimDuration::from_micros(1));
                } else if t > deadline {
                    clock.advance_to(deadline);
                    if step(clock.now()) == StepOutcome::Worked {
                        work_steps += 1;
                    }
                    break;
                } else {
                    clock.advance_to(t);
                }
            }
            StepOutcome::Quiescent => break,
        }
        if clock.now() == deadline && matches!(step(clock.now()), StepOutcome::Quiescent) {
            break;
        }
    }
    work_steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(1));
        c.advance_by(SimDuration::from_millis(500));
        assert_eq!(c.now(), SimTime::from_millis(1500));
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_rejects_backwards() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(2));
        c.advance_to(SimTime::from_secs(1));
    }

    #[test]
    fn run_until_follows_wakeups() {
        let mut clock = Clock::new();
        let mut fired = Vec::new();
        let schedule = [
            SimTime::from_secs(1),
            SimTime::from_secs(3),
            SimTime::from_secs(5),
        ];
        let mut idx = 0;
        run_until(&mut clock, SimTime::from_secs(10), |now| {
            if idx < schedule.len() && now >= schedule[idx] {
                fired.push(schedule[idx]);
                idx += 1;
                StepOutcome::Worked
            } else if idx < schedule.len() {
                StepOutcome::IdleUntil(schedule[idx])
            } else {
                StepOutcome::Quiescent
            }
        });
        assert_eq!(fired, schedule);
        assert_eq!(clock.now(), SimTime::from_secs(5));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut clock = Clock::new();
        run_until(&mut clock, SimTime::from_secs(2), |_| {
            StepOutcome::IdleUntil(SimTime::from_secs(100))
        });
        assert_eq!(clock.now(), SimTime::from_secs(2));
    }

    #[test]
    fn run_until_survives_stale_wakeups() {
        // A component that keeps reporting an already-due wake-up must not
        // hang the driver.
        let mut clock = Clock::new();
        let steps = run_until(&mut clock, SimTime::from_millis(1), |_| {
            StepOutcome::IdleUntil(SimTime::ZERO)
        });
        assert_eq!(steps, 0);
        assert!(clock.now() >= SimTime::from_millis(1));
    }

    #[test]
    fn run_until_counts_work() {
        let mut clock = Clock::new();
        let mut budget = 3;
        let steps = run_until(&mut clock, SimTime::from_secs(1), |_| {
            if budget > 0 {
                budget -= 1;
                StepOutcome::Worked
            } else {
                StepOutcome::Quiescent
            }
        });
        assert_eq!(steps, 3);
    }
}
