//! Campaign counter registry: a fixed, enum-indexed set of u64 tallies.
//!
//! Components already keep deterministic per-session statistics (link
//! drop causes, TCP retransmits, playout rebuffer time, ...). A
//! [`CounterSet`] is the campaign-wide rollup of those statistics: one
//! `u64` per [`Counter`], collected once per finished session and folded
//! through the accumulator path with [`CounterSet::merge`] (element-wise
//! add). Addition is commutative and associative, so the totals are
//! bit-identical across any worker count and merge order — the same
//! merge law the rest of the aggregates obey.

/// One campaign-wide tally. The discriminant indexes [`CounterSet`];
/// the order here is the order counters print and serialize in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Packets discarded by a link's random-loss process.
    DropsLoss,
    /// Packets discarded by a full link queue.
    DropsQueue,
    /// Packets discarded or flushed by a link outage.
    DropsOutage,
    /// Packets delivered across all links.
    PacketsDelivered,
    /// TCP segments retransmitted (fast + timeout).
    TcpRetransmits,
    /// TCP retransmission-timer expiries.
    TcpRtoTimeouts,
    /// TCP dup-ACK fast retransmits.
    TcpFastRetransmits,
    /// Playout buffer underruns (rebuffer events).
    RebufferEvents,
    /// Total playback time spent stalled, in microseconds.
    RebufferMicros,
    /// Server rate-controller switches to a higher rung.
    RungSwitchesUp,
    /// Server rate-controller switches to a lower rung.
    RungSwitchesDown,
    /// Video frames dropped by server-side stream thinning.
    FramesThinned,
    /// Client session retries after a watchdog teardown.
    SessionRetries,
    /// Client UDP→TCP data-transport fallbacks.
    TransportFallbacks,
    /// Server process crashes (fault injection).
    ServerCrashes,
    /// Timer-wheel entries re-homed by cursor cascades.
    WheelCascades,
    /// Gateway re-routes of a session to another replica (any reason).
    GatewayRedirects,
    /// Gateway redirects caused by a replica crash or dead replica
    /// (subset of `GatewayRedirects`; the rest are admission redirects).
    Failovers,
    /// SETUPs refused by a replica at capacity (453 Busy).
    AdmissionRejects,
    /// Delay-line head (re-)registrations with the arrival wheel — the
    /// scheduler work the per-link delay lines still do.
    DelaylineHeadUpdates,
    /// Packets that joined a busy delay line with no scheduler
    /// interaction — the per-packet wheel events the delay lines
    /// eliminated.
    DelaylineBypassPackets,
}

impl Counter {
    /// Number of counters in the registry.
    pub const COUNT: usize = 21;

    /// Every counter, in registry (serialization) order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::DropsLoss,
        Counter::DropsQueue,
        Counter::DropsOutage,
        Counter::PacketsDelivered,
        Counter::TcpRetransmits,
        Counter::TcpRtoTimeouts,
        Counter::TcpFastRetransmits,
        Counter::RebufferEvents,
        Counter::RebufferMicros,
        Counter::RungSwitchesUp,
        Counter::RungSwitchesDown,
        Counter::FramesThinned,
        Counter::SessionRetries,
        Counter::TransportFallbacks,
        Counter::ServerCrashes,
        Counter::WheelCascades,
        Counter::GatewayRedirects,
        Counter::Failovers,
        Counter::AdmissionRejects,
        Counter::DelaylineHeadUpdates,
        Counter::DelaylineBypassPackets,
    ];

    /// Stable snake_case name used in the campaign summary, bench JSON,
    /// and the CI counter-snapshot diff.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DropsLoss => "drops_loss",
            Counter::DropsQueue => "drops_queue",
            Counter::DropsOutage => "drops_outage",
            Counter::PacketsDelivered => "packets_delivered",
            Counter::TcpRetransmits => "tcp_retransmits",
            Counter::TcpRtoTimeouts => "tcp_rto_timeouts",
            Counter::TcpFastRetransmits => "tcp_fast_retransmits",
            Counter::RebufferEvents => "rebuffer_events",
            Counter::RebufferMicros => "rebuffer_micros",
            Counter::RungSwitchesUp => "rung_switches_up",
            Counter::RungSwitchesDown => "rung_switches_down",
            Counter::FramesThinned => "frames_thinned",
            Counter::SessionRetries => "session_retries",
            Counter::TransportFallbacks => "transport_fallbacks",
            Counter::ServerCrashes => "server_crashes",
            Counter::WheelCascades => "wheel_cascades",
            Counter::GatewayRedirects => "gateway_redirects",
            Counter::Failovers => "failovers",
            Counter::AdmissionRejects => "admission_rejects",
            Counter::DelaylineHeadUpdates => "delayline_head_updates",
            Counter::DelaylineBypassPackets => "delayline_bypass_packets",
        }
    }
}

/// A fixed array of campaign counters. `merge` is element-wise add — the
/// whole aggregation law, which is what makes campaign totals independent
/// of worker count and merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSet {
    vals: [u64; Counter::COUNT],
}

impl Default for CounterSet {
    fn default() -> Self {
        CounterSet::new()
    }
}

impl CounterSet {
    /// An all-zero counter set.
    pub const fn new() -> Self {
        CounterSet {
            vals: [0; Counter::COUNT],
        }
    }

    /// Adds `n` to counter `c`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c as usize] += n;
    }

    /// Current value of counter `c`.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Folds `other` into `self` by element-wise addition.
    pub fn merge(&mut self, other: &CounterSet) {
        for (a, b) in self.vals.iter_mut().zip(other.vals.iter()) {
            *a += *b;
        }
    }

    /// `(counter, value)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .iter()
            .map(move |c| (*c, self.vals[*c as usize]))
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|v| *v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_order_is_stable() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?} out of registry order");
        }
    }

    #[test]
    fn merge_is_elementwise_add() {
        let mut a = CounterSet::new();
        a.add(Counter::DropsLoss, 3);
        a.add(Counter::RebufferMicros, 1_000_000);
        let mut b = CounterSet::new();
        b.add(Counter::DropsLoss, 4);
        b.add(Counter::TcpRetransmits, 9);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.get(Counter::DropsLoss), 7);
        assert_eq!(ab.get(Counter::TcpRetransmits), 9);
        assert_eq!(ab.get(Counter::RebufferMicros), 1_000_000);
        assert!(!ab.is_zero());
        assert!(CounterSet::new().is_zero());
    }
}
