//! A time-ordered event queue with stable FIFO tie-breaking.
//!
//! The queue is generic over the event payload so each layer of the system
//! can define its own event vocabulary. Two events scheduled for the same
//! instant pop in the order they were pushed — without that guarantee,
//! heap-internal ordering would leak nondeterminism into the simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled occurrence: a payload due at an instant.
///
/// Ordering (and equality) consider only `(at, seq)` — the payload is cargo.
/// Since `seq` is unique per queue, ordering is total without constraining
/// the payload type.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number assigned at push time; breaks ties.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (then
        // first-pushed) event is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic priority queue of future events.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// The instant of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    /// Removes and returns the earliest event only if it is due at or before
    /// `now`. The workhorse of poll-style drivers:
    /// `while let Some(ev) = q.pop_due(now) { ... }`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Scheduled<E>> {
        if self.next_time()? <= now {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Folds optional wake-up times down to the earliest one.
///
/// Poll-based components report `Option<SimTime>` ("wake me then" or "I'm
/// idle"); drivers combine them with this helper.
pub fn earliest<I>(times: I) -> Option<SimTime>
where
    I: IntoIterator<Item = Option<SimTime>>,
{
    times.into_iter().flatten().min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "early");
        q.push(SimTime::from_secs(5), "late");
        let now = SimTime::from_secs(2);
        assert_eq!(q.pop_due(now).unwrap().event, "early");
        assert!(q.pop_due(now).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1u8);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn earliest_folds_options() {
        let a = Some(SimTime::from_secs(4));
        let b = None;
        let c = Some(SimTime::from_secs(2));
        assert_eq!(earliest([a, b, c]), Some(SimTime::from_secs(2)));
        assert_eq!(earliest([None, None]), None);
        assert_eq!(earliest(std::iter::empty()), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let base = SimTime::from_secs(10);
        q.push(base + SimDuration::from_millis(30), 3u32);
        q.push(base + SimDuration::from_millis(10), 1);
        assert_eq!(q.pop().unwrap().event, 1);
        q.push(base + SimDuration::from_millis(20), 2);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }
}
