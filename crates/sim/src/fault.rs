//! Deterministic per-session fault plans.
//!
//! The 2001 campaign measured the internet as it was, outages and all:
//! sessions that never connected, died mid-stream, or limped home over
//! TCP after the UDP path went dark. A [`FaultPlan`] scripts that
//! trouble for one session — link outages, loss bursts, a server crash,
//! a black-holed UDP path — as plain data fixed before any packet flies.
//!
//! Plans are generated from a self-contained seed (derived statelessly
//! from the campaign seed, like session seeds), so the faults a session
//! suffers are independent of execution order and worker count: the
//! determinism contract of the plan/execute split extends to failures.
//! A [`FaultScenario`] with `enabled: false` — or one whose rates are
//! all zero — generates the empty plan, and an empty plan injects
//! nothing: fault-free campaigns are bit-identical to a build that has
//! never heard of faults.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Which leg of the client—server path a link fault applies to.
///
/// Abstract on purpose: the fault planner knows the paper's three-hop
/// topology (access, transit, server access), not concrete link ids.
/// The world builder maps segments to links when it arms the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSegment {
    /// The user's access link (both directions).
    ClientAccess,
    /// The inter-cloud transit leg.
    Transit,
    /// The server's access link.
    ServerAccess,
}

/// What an outage does to packets queued or in flight on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutagePolicy {
    /// A hard cut — interface down, line card dead: everything queued or
    /// serializing is lost.
    DropInFlight,
    /// A stall — route flap, re-convergence: the queue holds its packets
    /// and drains when the link returns.
    CarryInFlight,
}

/// A scheduled link outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// Which path leg goes down.
    pub segment: FaultSegment,
    /// When the link goes down.
    pub start: SimTime,
    /// When it comes back.
    pub end: SimTime,
    /// What happens to packets caught on the link.
    pub policy: OutagePolicy,
}

/// A window of elevated random loss on one path leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossBurst {
    /// Which path leg suffers.
    pub segment: FaultSegment,
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// Extra loss probability in parts per million (integer so plans
    /// stay `Eq`-comparable and bit-stable).
    pub loss_ppm: u32,
}

/// A server crash, optionally followed by a restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerCrash {
    /// When the server process dies. `SimTime::ZERO` models a server
    /// that is down before the session ever starts.
    pub at: SimTime,
    /// Delay until the server comes back, or `None` if it stays dead
    /// for the rest of the session.
    pub restart_after: Option<SimDuration>,
    /// Which replica of the site's cluster dies. Plans are generated
    /// targeting replica 0 (the only replica in a single-server world);
    /// [`FaultPlan::retarget_crashes`] spreads targets across a cluster.
    pub replica: u8,
}

/// Knobs for how often and how hard faults hit. Probabilities are
/// per-session; durations are means of exponential draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScenario {
    /// Master switch. When false, [`FaultPlan::generate`] returns the
    /// empty plan without drawing a single random number.
    pub enabled: bool,
    /// Probability a session suffers a link outage.
    pub outage_prob: f64,
    /// Mean outage duration, seconds.
    pub outage_mean_secs: f64,
    /// Probability an outage drops in-flight packets (vs carrying them).
    pub outage_drop_inflight: f64,
    /// Probability of a mid-session loss burst.
    pub burst_prob: f64,
    /// Peak extra loss probability during a burst.
    pub burst_loss: f64,
    /// Mean burst duration, seconds.
    pub burst_mean_secs: f64,
    /// Probability the server crashes mid-session.
    pub server_crash_prob: f64,
    /// Probability a crashed server restarts within the session.
    pub server_restart_prob: f64,
    /// Probability the server is down before the session starts.
    pub server_down_prob: f64,
    /// Probability the UDP data path is silently black-holed (the
    /// firewall/NAT cases RealPlayer masked with TCP fallback).
    pub udp_blackhole_prob: f64,
}

impl FaultScenario {
    /// No faults at all. This is the default campaign scenario.
    pub fn off() -> Self {
        FaultScenario {
            enabled: false,
            outage_prob: 0.0,
            outage_mean_secs: 0.0,
            outage_drop_inflight: 0.0,
            burst_prob: 0.0,
            burst_loss: 0.0,
            burst_mean_secs: 0.0,
            server_crash_prob: 0.0,
            server_restart_prob: 0.0,
            server_down_prob: 0.0,
            udp_blackhole_prob: 0.0,
        }
    }

    /// The default faults-on scenario: rates sized so a campaign shows a
    /// clear unsuccessful-session tail (a few percent of sessions each
    /// way) without drowning the played distributions the figures need.
    pub fn default_on() -> Self {
        FaultScenario {
            enabled: true,
            outage_prob: 0.06,
            outage_mean_secs: 12.0,
            outage_drop_inflight: 0.5,
            burst_prob: 0.08,
            burst_loss: 0.25,
            burst_mean_secs: 6.0,
            server_crash_prob: 0.03,
            server_restart_prob: 0.6,
            server_down_prob: 0.02,
            udp_blackhole_prob: 0.04,
        }
    }
}

impl Default for FaultScenario {
    fn default() -> Self {
        FaultScenario::off()
    }
}

/// The scripted trouble for one session: plain data, fixed at plan time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Scheduled link outages, in start order.
    pub link_outages: Vec<LinkOutage>,
    /// Scheduled loss bursts, in start order.
    pub loss_bursts: Vec<LossBurst>,
    /// Server crash/restart events, in time order.
    pub server_crashes: Vec<ServerCrash>,
    /// Whether the UDP data path is black-holed for the whole session.
    pub udp_blackhole: bool,
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` when this plan schedules no fault of any kind.
    pub fn is_empty(&self) -> bool {
        self.link_outages.is_empty()
            && self.loss_bursts.is_empty()
            && self.server_crashes.is_empty()
            && !self.udp_blackhole
    }

    /// Generates the plan for one session from its own fault seed.
    ///
    /// `horizon` bounds fault scheduling (the session deadline): faults
    /// land in the window where the session is actually alive. The draw
    /// order is fixed, so a given `(scenario, seed)` pair always yields
    /// the same plan.
    pub fn generate(scenario: &FaultScenario, seed: u64, horizon: SimDuration) -> FaultPlan {
        if !scenario.enabled {
            return FaultPlan::none();
        }
        let mut rng = SimRng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        let horizon_s = horizon.as_secs_f64().max(10.0);

        if rng.chance(scenario.outage_prob) {
            let segment = pick_segment(&mut rng);
            // Land the outage in the live middle of the session: after
            // startup, early enough that recovery can still be observed.
            let start = rng.range(3.0..horizon_s * 0.6);
            let dur = rng
                .exponential(scenario.outage_mean_secs.max(0.5))
                .clamp(2.0, horizon_s * 0.5);
            let policy = if rng.chance(scenario.outage_drop_inflight) {
                OutagePolicy::DropInFlight
            } else {
                OutagePolicy::CarryInFlight
            };
            plan.link_outages.push(LinkOutage {
                segment,
                start: SimTime::from_secs_f64(start),
                end: SimTime::from_secs_f64(start + dur),
                policy,
            });
        }

        if rng.chance(scenario.burst_prob) {
            let segment = pick_segment(&mut rng);
            let start = rng.range(2.0..horizon_s * 0.7);
            let dur = rng
                .exponential(scenario.burst_mean_secs.max(0.5))
                .clamp(1.0, horizon_s * 0.4);
            let loss = rng.range(scenario.burst_loss * 0.4..scenario.burst_loss.max(1e-9));
            plan.loss_bursts.push(LossBurst {
                segment,
                start: SimTime::from_secs_f64(start),
                end: SimTime::from_secs_f64(start + dur),
                loss_ppm: (loss.clamp(0.0, 1.0) * 1e6) as u32,
            });
        }

        if rng.chance(scenario.server_down_prob) {
            // Down before the session starts; SYNs meet RSTs or silence.
            plan.server_crashes.push(ServerCrash {
                at: SimTime::ZERO,
                restart_after: None,
                replica: 0,
            });
        } else if rng.chance(scenario.server_crash_prob) {
            let at = rng.range(4.0..horizon_s * 0.6);
            let restart_after = if rng.chance(scenario.server_restart_prob) {
                Some(SimDuration::from_secs_f64(rng.range(2.0..8.0)))
            } else {
                None
            };
            plan.server_crashes.push(ServerCrash {
                at: SimTime::from_secs_f64(at),
                restart_after,
                replica: 0,
            });
        }

        plan.udp_blackhole = rng.chance(scenario.udp_blackhole_prob);
        plan
    }

    /// Re-aims each planned crash at a replica drawn uniformly from
    /// `0..replicas`, using its own RNG stream so the draws that shaped
    /// the plan itself never shift. A no-op for `replicas <= 1` (every
    /// crash already targets replica 0), so single-server plans are
    /// bit-identical whether or not this is ever called.
    pub fn retarget_crashes(&mut self, replicas: u8, seed: u64) {
        if replicas <= 1 || self.server_crashes.is_empty() {
            return;
        }
        let mut rng = SimRng::seed_from_u64(seed);
        for c in &mut self.server_crashes {
            c.replica = rng.range(0..u32::from(replicas)) as u8;
        }
    }
}

fn pick_segment(rng: &mut SimRng) -> FaultSegment {
    match rng.range(0..3u32) {
        0 => FaultSegment::ClientAccess,
        1 => FaultSegment::Transit,
        _ => FaultSegment::ServerAccess,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: SimDuration = SimDuration::from_secs(150);

    #[test]
    fn disabled_scenario_generates_empty_plan() {
        let plan = FaultPlan::generate(&FaultScenario::off(), 123, HORIZON);
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn zero_rate_enabled_scenario_is_also_empty() {
        let scenario = FaultScenario {
            enabled: true,
            ..FaultScenario::off()
        };
        for seed in 0..64 {
            assert!(FaultPlan::generate(&scenario, seed, HORIZON).is_empty());
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let s = FaultScenario::default_on();
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(
                FaultPlan::generate(&s, seed, HORIZON),
                FaultPlan::generate(&s, seed, HORIZON)
            );
        }
    }

    #[test]
    fn default_scenario_produces_each_fault_kind_somewhere() {
        let s = FaultScenario::default_on();
        let mut outages = 0;
        let mut bursts = 0;
        let mut crashes = 0;
        let mut down_at_zero = 0;
        let mut blackholes = 0;
        for seed in 0..2_000u64 {
            let p = FaultPlan::generate(&s, seed, HORIZON);
            outages += p.link_outages.len();
            bursts += p.loss_bursts.len();
            for c in &p.server_crashes {
                if c.at == SimTime::ZERO {
                    down_at_zero += 1;
                } else {
                    crashes += 1;
                }
            }
            blackholes += usize::from(p.udp_blackhole);
        }
        assert!(outages > 50, "outages {outages}");
        assert!(bursts > 80, "bursts {bursts}");
        assert!(crashes > 20, "crashes {crashes}");
        assert!(down_at_zero > 10, "down at zero {down_at_zero}");
        assert!(blackholes > 30, "blackholes {blackholes}");
    }

    #[test]
    fn fault_windows_are_ordered_and_within_horizon() {
        let s = FaultScenario::default_on();
        for seed in 0..500u64 {
            let p = FaultPlan::generate(&s, seed, HORIZON);
            for o in &p.link_outages {
                assert!(o.start < o.end);
                assert!(o.start <= SimTime::ZERO + HORIZON);
            }
            for b in &p.loss_bursts {
                assert!(b.start < b.end);
                assert!(b.loss_ppm <= 1_000_000);
            }
            for c in &p.server_crashes {
                assert!(c.at <= SimTime::ZERO + HORIZON);
            }
        }
    }
}
