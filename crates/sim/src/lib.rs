//! # rv-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the RealVideo reproduction: a logical clock
//! ([`SimTime`]/[`SimDuration`]), a stable time-ordered [`EventQueue`], a
//! poll-style driver loop ([`run_until`]), and a forkable deterministic RNG
//! ([`SimRng`]).
//!
//! Design follows the smoltcp school of event-driven networking: components
//! are plain state machines polled with an explicit `now`, never reading the
//! wall clock and never spawning threads. That is what makes every figure in
//! the paper reproduction bit-identical across runs and machines.
//!
//! ```
//! use rv_sim::{Clock, EventQueue, SimTime, StepOutcome, run_until};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_secs(1), "hello");
//! queue.push(SimTime::from_secs(2), "world");
//!
//! let mut clock = Clock::new();
//! let mut seen = Vec::new();
//! run_until(&mut clock, SimTime::from_secs(10), |now| {
//!     if let Some(ev) = queue.pop_due(now) {
//!         seen.push(ev.event);
//!         StepOutcome::Worked
//!     } else if let Some(t) = queue.next_time() {
//!         StepOutcome::IdleUntil(t)
//!     } else {
//!         StepOutcome::Quiescent
//!     }
//! });
//! assert_eq!(seen, ["hello", "world"]);
//! ```

// The `alloc-stats` feature implements `GlobalAlloc`, whose contract is
// inherently unsafe; everything else in the crate stays unsafe-free.
#![cfg_attr(not(feature = "alloc-stats"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-stats", deny(unsafe_code))]
#![warn(missing_docs)]

#[cfg(feature = "alloc-stats")]
#[allow(unsafe_code)]
pub mod alloc_stats;
mod bytes;
mod chacha;
mod clock;
mod counters;
mod event;
mod fault;
mod rng;
mod time;
pub mod trace;
mod wheel;

pub use bytes::{ByteRope, PayloadBytes, PayloadPool};
pub use clock::{run_until, Clock, StepOutcome};
pub use counters::{Counter, CounterSet};
pub use event::{earliest, EventQueue, Scheduled};
pub use fault::{
    FaultPlan, FaultScenario, FaultSegment, LinkOutage, LossBurst, OutagePolicy, ServerCrash,
};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use wheel::{TimerWheel, WheelToken};
