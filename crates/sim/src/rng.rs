//! Deterministic random number generation for the simulation.
//!
//! Every stochastic decision in the simulator draws from a [`SimRng`], which
//! wraps a seeded ChaCha-based generator. Given the same seed, every run of
//! the simulation — and therefore every regenerated figure — is bit-identical.
//!
//! [`SimRng::fork`] derives independent child generators for subsystems so
//! that adding draws in one component does not perturb the stream seen by
//! another (a classic reproducibility hazard in monolithic-RNG simulators).

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::time::SimDuration;

/// A deterministic, forkable random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is a deterministic function of the parent's state
    /// and the `stream` label; forking with different labels yields
    /// uncorrelated streams without consuming parent draws unevenly.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let mut seed = [0u8; 32];
        self.inner.fill_bytes(&mut seed);
        // Mix the label into the seed so equal parent states with different
        // labels still diverge.
        for (i, b) in stream.to_le_bytes().iter().enumerate() {
            seed[i] ^= *b;
        }
        SimRng {
            inner: ChaCha12Rng::from_seed(seed),
        }
    }

    /// Uniform sample from a range, e.g. `rng.range(0..10)` or `rng.range(0.0..1.0)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponential sample with the given mean (`mean > 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse transform; 1 - unit() is in (0, 1] so ln() is finite.
        -mean * (1.0 - self.unit()).ln()
    }

    /// Standard-normal sample via the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.unit(); // (0, 1]
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal sample parameterized by the mean and standard deviation of
    /// the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto sample with scale `x_min > 0` and shape `alpha > 0`.
    /// Heavy-tailed; used for cross-traffic burst sizes.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.unit()).powf(1.0 / alpha)
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Picks an index in `0..weights.len()` with probability proportional to
    /// its weight. Returns `None` for an empty slice or non-positive total.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if weights.is_empty() || total <= 0.0 {
            return None;
        }
        let mut point = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if point < *w {
                return Some(i);
            }
            point -= *w;
        }
        // Floating point slop: fall back to the last positive-weight entry.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Picks a reference to a uniformly random element; `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.range(0..items.len());
            Some(&items[i])
        }
    }

    /// Fisher-Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::seed_from_u64(7);
        let mut d1 = parent3.fork(1);
        let mut parent4 = SimRng::seed_from_u64(7);
        let mut d2 = parent4.fork(2);
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..1000 {
            assert!(rng.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn weighted_index_distribution() {
        let mut rng = SimRng::seed_from_u64(19);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_edge_cases() {
        let mut rng = SimRng::seed_from_u64(23);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, -1.0]), None);
        assert_eq!(rng.weighted_index(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed_from_u64(29);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn exp_duration_is_nonnegative_and_scaled() {
        let mut rng = SimRng::seed_from_u64(31);
        let mean = SimDuration::from_millis(100);
        let n = 5_000;
        let total: f64 = (0..n)
            .map(|_| rng.exp_duration(mean).as_secs_f64())
            .sum();
        let sample_mean = total / n as f64;
        assert!((sample_mean - 0.1).abs() < 0.01, "mean {sample_mean}");
    }
}
