//! Deterministic random number generation for the simulation.
//!
//! Every stochastic decision in the simulator draws from a [`SimRng`], which
//! wraps a seeded ChaCha12 keystream (implemented in-tree, see `chacha.rs`).
//! Given the same seed, every run of the simulation — and therefore every
//! regenerated figure — is bit-identical.
//!
//! Two derivation mechanisms keep subsystem streams independent:
//!
//! * [`SimRng::fork`] derives a child generator from the *parent's state*
//!   and a label — adding draws in one component does not perturb the
//!   stream seen by another (a classic reproducibility hazard in
//!   monolithic-RNG simulators). Forking consumes parent state, so fork
//!   order matters.
//! * [`SimRng::derive`] derives a stream from a *seed value*, a label, and
//!   an index through a SplitMix64 finalizer chain. No state is consumed
//!   and no ordering exists: `derive(seed, "availability", k)` yields the
//!   same stream whether it is the first derivation or the millionth,
//!   which is what lets campaign jobs be planned serially and executed on
//!   any number of threads with bit-identical results.

use crate::chacha::ChaCha12;
use crate::time::SimDuration;

/// A deterministic, forkable random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12,
}

/// One round of the SplitMix64 output finalizer: a bijective mixer with
/// full avalanche (every input bit flips each output bit with probability
/// ~1/2). The standard constants are from Steele et al.'s SplitMix64.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label string, for [`SimRng::derive`].
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed to a 256-bit key via the SplitMix64 sequence.
        let mut key = [0u8; 32];
        let mut z = seed;
        for chunk in key.chunks_exact_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            chunk.copy_from_slice(&splitmix64(z).to_le_bytes());
        }
        SimRng {
            inner: ChaCha12::from_key(key),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is a deterministic function of the parent's state
    /// and the `stream` label; forking with different labels yields
    /// uncorrelated streams without consuming parent draws unevenly.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let mut seed = [0u8; 32];
        self.inner.fill_bytes(&mut seed);
        // Mix the label into the seed so equal parent states with different
        // labels still diverge.
        for (i, b) in stream.to_le_bytes().iter().enumerate() {
            seed[i] ^= *b;
        }
        SimRng {
            inner: ChaCha12::from_key(seed),
        }
    }

    /// Collision-resistant, order-independent seed derivation: maps
    /// `(seed, label, index)` to a new 64-bit seed through a SplitMix64
    /// finalizer chain.
    ///
    /// Unlike [`fork`](SimRng::fork) this consumes no generator state, so
    /// the result depends only on the three inputs — the property the
    /// campaign planner relies on to hand every session job a
    /// self-contained seed that is identical no matter which worker, in
    /// which order, at which scale, eventually runs the job.
    pub fn derive_seed(seed: u64, label: &str, index: u64) -> u64 {
        let mut h = splitmix64(seed);
        h = splitmix64(h ^ label_hash(label));
        splitmix64(h ^ splitmix64(index))
    }

    /// A generator seeded with [`derive_seed`](SimRng::derive_seed): one
    /// independent stream per `(seed, label, index)` triple.
    pub fn derive(seed: u64, label: &str, index: u64) -> SimRng {
        SimRng::seed_from_u64(SimRng::derive_seed(seed, label, index))
    }

    /// Next 32 bits of the stream.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    /// Uniform integer in `[0, n)` by rejection sampling (no modulo bias).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below() needs a positive bound");
        // Reject the low `2^64 mod n` values so every residue is equally
        // likely.
        let zone = n.wrapping_neg() % n;
        loop {
            let v = self.next_u64();
            if v >= zone {
                return v % n;
            }
        }
    }

    /// Uniform sample from a range, e.g. `rng.range(0..10)` or `rng.range(0.0..1.0)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random bits scaled into [0, 1), the standard construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponential sample with the given mean (`mean > 0`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse transform; 1 - unit() is in (0, 1] so ln() is finite.
        -mean * (1.0 - self.unit()).ln()
    }

    /// Standard-normal sample via the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.unit(); // (0, 1]
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal sample parameterized by the mean and standard deviation of
    /// the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto sample with scale `x_min > 0` and shape `alpha > 0`.
    /// Heavy-tailed; used for cross-traffic burst sizes.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0);
        x_min / (1.0 - self.unit()).powf(1.0 / alpha)
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Picks an index in `0..weights.len()` with probability proportional to
    /// its weight. Returns `None` for an empty slice or non-positive total.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if weights.is_empty() || total <= 0.0 {
            return None;
        }
        let mut point = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if point < *w {
                return Some(i);
            }
            point -= *w;
        }
        // Floating point slop: fall back to the last positive-weight entry.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Picks a reference to a uniformly random element; `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.range(0..items.len());
            Some(&items[i])
        }
    }

    /// Fisher-Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }
}

/// Types [`SimRng::range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)` when `inclusive` is false, `[lo, hi]`
    /// when true. Callers guarantee a non-empty range.
    fn sample_uniform(rng: &mut SimRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range forms accepted by [`SimRng::range`].
pub trait SampleRange<T> {
    /// Draws one sample from this range.
    fn sample_from(self, rng: &mut SimRng) -> T;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(rng: &mut SimRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "empty sample range"
                );
                // Work in the unsigned 64-bit offset space to cover the
                // signed types without overflow.
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span == 0 || span > u128::from(u64::MAX) {
                    // Full 64-bit domain: every value is fair.
                    return (lo as i128).wrapping_add(rng.next_u64() as i128) as $t;
                }
                let off = rng.below(span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(rng: &mut SimRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "empty sample range");
                let u = rng.unit() as $t;
                lo + u * (hi - lo)
            }
        }
    )+};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut SimRng) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut SimRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::seed_from_u64(7);
        let mut d1 = parent3.fork(1);
        let mut parent4 = SimRng::seed_from_u64(7);
        let mut d2 = parent4.fork(2);
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn derive_is_order_independent_and_stateless() {
        // Same triple, same stream — regardless of any other derivations
        // or draws happening in between.
        let mut a = SimRng::derive(9, "availability", 17);
        let _noise = SimRng::derive(9, "availability", 3).next_u64();
        let mut scratch = SimRng::derive(9, "session", 17);
        scratch.next_u64();
        let mut b = SimRng::derive(9, "availability", 17);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_separates_labels_indices_and_seeds() {
        let base = SimRng::derive_seed(5, "session", 10);
        assert_ne!(base, SimRng::derive_seed(5, "session", 11));
        assert_ne!(base, SimRng::derive_seed(5, "rating", 10));
        assert_ne!(base, SimRng::derive_seed(6, "session", 10));
        // Low-bit diffusion: adjacent indices differ in roughly half their
        // bits, not just the low ones (the weakness of the old ad-hoc mix).
        let a = SimRng::derive_seed(5, "session", 10);
        let b = SimRng::derive_seed(5, "session", 11);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "avalanche too weak: {flipped} bits"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn range_covers_bounds_inclusively_and_exclusively() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut saw_hi = false;
        for _ in 0..200 {
            let v = rng.range(0..=3u32);
            assert!(v <= 3);
            saw_hi |= v == 3;
        }
        assert!(saw_hi, "inclusive range never produced its upper bound");
        for _ in 0..200 {
            assert!(rng.range(0..3u32) < 3);
        }
        // Signed ranges.
        for _ in 0..200 {
            let v = rng.range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..1000 {
            assert!(rng.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn weighted_index_distribution() {
        let mut rng = SimRng::seed_from_u64(19);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_edge_cases() {
        let mut rng = SimRng::seed_from_u64(23);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, -1.0]), None);
        assert_eq!(rng.weighted_index(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed_from_u64(29);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn exp_duration_is_nonnegative_and_scaled() {
        let mut rng = SimRng::seed_from_u64(31);
        let mean = SimDuration::from_millis(100);
        let n = 5_000;
        let total: f64 = (0..n).map(|_| rng.exp_duration(mean).as_secs_f64()).sum();
        let sample_mean = total / n as f64;
        assert!((sample_mean - 0.1).abs() < 0.01, "mean {sample_mean}");
    }

    #[test]
    fn unit_is_in_range_and_uniform_ish() {
        let mut rng = SimRng::seed_from_u64(37);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
