//! Simulated time.
//!
//! All simulation components share a single logical clock expressed as
//! [`SimTime`], a count of microseconds since the start of the simulation.
//! Durations between instants are [`SimDuration`]s. Both are thin wrappers
//! around `u64` so that arithmetic is exact and reproducible — no floating
//! point drift, no wall-clock reads.
//!
//! Microsecond resolution is deliberate: the finest-grained events in the
//! simulation are packet serializations on a ~10 Mbps LAN link (a 1500-byte
//! packet takes 1.2 ms), so a microsecond tick leaves three orders of
//! magnitude of headroom while keeping 64 bits enough for ~584 000 years of
//! simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since time zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" in wake-up math.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after time zero.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after time zero.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after time zero.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to time zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((secs * 1e6).round() as u64)
        }
    }

    /// Microseconds since time zero.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since time zero (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since time zero as a float (lossless below ~285 years).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The duration from `earlier` to `self`; `None` if `earlier` is later.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration; used as "infinite" in timer math.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// A duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// A duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((secs * 1e6).round() as u64)
        }
    }

    /// Total microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two durations, saturating at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by an integer factor, saturating.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales by a float factor, rounding to the nearest microsecond.
    /// Negative or NaN factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        let scaled = self.0 as f64 * factor;
        if scaled.is_nan() || scaled <= 0.0 {
            SimDuration::ZERO
        } else if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Clamps into `[lo, hi]`. Panics in debug builds if `lo > hi`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        debug_assert!(lo <= hi, "SimDuration::clamp: lo > hi");
        self.max(lo).min(hi)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn float_round_trip_is_exact_at_microsecond_granularity() {
        let t = SimTime::from_secs_f64(1.234567);
        assert_eq!(t.as_micros(), 1_234_567);
        assert!((t.as_secs_f64() - 1.234567).abs() < 1e-12);
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d).as_micros(), 11_500_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.checked_since(t + d), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
    }

    #[test]
    fn clamp_orders_bounds() {
        let d = SimDuration::from_millis(500);
        let lo = SimDuration::from_millis(100);
        let hi = SimDuration::from_millis(300);
        assert_eq!(d.clamp(lo, hi), hi);
        assert_eq!(SimDuration::ZERO.clamp(lo, hi), lo);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
