//! Flight recorder: sim-time-stamped, typed trace events.
//!
//! The recorder is a thread-local sink that instrumented components feed
//! through [`emit`]. It is **off by default**: every instrumentation site
//! costs one thread-local load and a branch, the event value is built
//! inside a closure that never runs, and nothing allocates — so a binary
//! with the recorder compiled in produces bit-identical dumps, aggregates,
//! and figures whether or not any trace was ever taken. Tracing never
//! draws from a [`SimRng`](crate::SimRng) and never mutates simulation
//! state, so an *enabled* recorder cannot perturb the simulation either:
//! the trace is a pure observation.
//!
//! One sink per thread, by design: the `repro trace` subcommand replays a
//! single session serially, and parallel campaign workers (which never
//! trace) cannot cross-contaminate because thread-local state is
//! per-worker.
//!
//! ```
//! use rv_sim::{trace, SimTime};
//!
//! trace::start();
//! trace::emit(SimTime::from_millis(5), || trace::TraceEvent::RebufferStart);
//! let records = trace::finish();
//! assert_eq!(records.len(), 1);
//! assert!(!trace::active());
//! ```

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;

use crate::time::SimTime;

/// Why a link dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Random loss process (Gilbert or uniform) discarded the packet.
    Loss,
    /// The bounded link queue was full.
    Queue,
    /// The link was administratively down (fault injection).
    Outage,
}

impl DropCause {
    /// Stable snake_case name used in the JSONL schema.
    pub fn label(self) -> &'static str {
        match self {
            DropCause::Loss => "loss",
            DropCause::Queue => "queue",
            DropCause::Outage => "outage",
        }
    }
}

/// A typed event in the session timeline.
///
/// Names and fields form the JSONL schema validated by CI; adding a
/// variant is fine, renaming one is a schema change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A session world starts running (emitted by the study layer).
    SessionBegin {
        /// Participant id from the campaign roster.
        user: u32,
        /// Clip name being requested.
        clip: String,
    },
    /// The session reached a terminal outcome.
    SessionEnd {
        /// Outcome label (`SessionOutcome::label`).
        outcome: &'static str,
    },
    /// A link came (back) up.
    LinkUp {
        /// Link tag (study topology index).
        link: u32,
    },
    /// A link went down.
    LinkDown {
        /// Link tag (study topology index).
        link: u32,
    },
    /// A link dropped a packet.
    PacketDrop {
        /// Link tag (study topology index).
        link: u32,
        /// Why it was dropped.
        cause: DropCause,
        /// Size of the dropped packet in bytes.
        bytes: u32,
        /// Queue occupancy in bytes after the drop.
        queued_bytes: u32,
    },
    /// Queue occupancy sample, taken when a packet is accepted.
    QueueDepth {
        /// Link tag (study topology index).
        link: u32,
        /// Queue occupancy in bytes including the accepted packet.
        queued_bytes: u32,
    },
    /// TCP retransmitted a segment.
    TcpRetransmit {
        /// Local port of the retransmitting socket.
        port: u16,
        /// Relative sequence number of the segment.
        seq: u32,
        /// Payload bytes retransmitted.
        bytes: u32,
        /// `true` for a dup-ACK fast retransmit, `false` for an RTO.
        fast: bool,
    },
    /// TCP's retransmission timer fired.
    TcpRto {
        /// Local port of the socket.
        port: u16,
        /// The (already backed-off) timeout that will arm next, in µs.
        rto_us: u64,
    },
    /// TCP congestion window changed on a loss-response edge
    /// (fast-retransmit entry, RTO collapse, or recovery exit) — the
    /// per-ACK additive increases are deliberately not traced.
    TcpCwnd {
        /// Local port of the socket.
        port: u16,
        /// New congestion window in bytes.
        cwnd: u32,
        /// New slow-start threshold in bytes.
        ssthresh: u32,
    },
    /// The server admitted a session (SETUP accepted).
    ServerAdmit {
        /// Negotiated data transport ("udp" or "tcp").
        transport: &'static str,
    },
    /// One server pump pass emitted packets.
    ServerPump {
        /// Packets handed to the transport in this pass.
        packets: u32,
    },
    /// The server process crashed (fault injection).
    ServerCrash,
    /// The server process restarted.
    ServerRestart,
    /// The server's rate controller switched encoding rung.
    ServerRungSwitch {
        /// Rung streamed before the switch.
        from: u8,
        /// Rung streamed after the switch.
        to: u8,
    },
    /// The playout buffer ran dry: rebuffering starts.
    RebufferStart,
    /// Playout resumed after a rebuffer.
    RebufferEnd {
        /// How long playback was stalled, in µs.
        stalled_us: u64,
    },
    /// The client FSM moved to a new phase.
    ClientPhase {
        /// Phase name (`Connecting`, `Playing`, ...).
        phase: &'static str,
    },
    /// The client tore down and is retrying the session.
    ClientRetry {
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// The client fell back from UDP to TCP data transport.
    TransportFallback,
    /// The client observed a rung change in the media stream.
    RungSwitch {
        /// Rung of the previous media packet.
        from: u8,
        /// Rung of the current media packet.
        to: u8,
    },
    /// The gateway routed the session to a replica (session start and
    /// each re-SETUP land one of these).
    GatewayRoute {
        /// Replica index the session was pointed at.
        replica: u8,
    },
    /// The gateway moved the session to another replica after a crash,
    /// admission reject, or dead endpoint.
    GatewayRedirect {
        /// Replica the session was leaving.
        from: u8,
        /// Replica the session was sent to.
        to: u8,
        /// Why ("busy", "crash", or "dead").
        reason: &'static str,
    },
    /// A replica at capacity refused a SETUP with 453 Busy.
    AdmissionReject {
        /// Replica index that refused.
        replica: u8,
    },
}

impl TraceEvent {
    /// Stable snake_case event name used in the JSONL schema and as the
    /// Chrome trace event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SessionBegin { .. } => "session_begin",
            TraceEvent::SessionEnd { .. } => "session_end",
            TraceEvent::LinkUp { .. } => "link_up",
            TraceEvent::LinkDown { .. } => "link_down",
            TraceEvent::PacketDrop { .. } => "packet_drop",
            TraceEvent::QueueDepth { .. } => "queue_depth",
            TraceEvent::TcpRetransmit { .. } => "tcp_retransmit",
            TraceEvent::TcpRto { .. } => "tcp_rto",
            TraceEvent::TcpCwnd { .. } => "tcp_cwnd",
            TraceEvent::ServerAdmit { .. } => "server_admit",
            TraceEvent::ServerPump { .. } => "server_pump",
            TraceEvent::ServerCrash => "server_crash",
            TraceEvent::ServerRestart => "server_restart",
            TraceEvent::ServerRungSwitch { .. } => "server_rung_switch",
            TraceEvent::RebufferStart => "rebuffer_start",
            TraceEvent::RebufferEnd { .. } => "rebuffer_end",
            TraceEvent::ClientPhase { .. } => "client_phase",
            TraceEvent::ClientRetry { .. } => "client_retry",
            TraceEvent::TransportFallback => "transport_fallback",
            TraceEvent::RungSwitch { .. } => "rung_switch",
            TraceEvent::GatewayRoute { .. } => "gateway_route",
            TraceEvent::GatewayRedirect { .. } => "gateway_redirect",
            TraceEvent::AdmissionReject { .. } => "admission_reject",
        }
    }
}

/// A sim-time-stamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated instant the event happened at.
    pub at: SimTime,
    /// What happened.
    pub ev: TraceEvent,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Vec<TraceRecord>> = const { RefCell::new(Vec::new()) };
}

/// `true` while this thread's recorder is capturing.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Records an event if this thread's recorder is active.
///
/// The event is built lazily: with the recorder off this is one
/// thread-local load and a branch — no allocation, no formatting, no
/// event construction.
#[inline]
pub fn emit(at: SimTime, ev: impl FnOnce() -> TraceEvent) {
    if !active() {
        return;
    }
    SINK.with(|s| s.borrow_mut().push(TraceRecord { at, ev: ev() }));
}

/// Starts capturing on this thread, discarding any previous capture.
pub fn start() {
    SINK.with(|s| s.borrow_mut().clear());
    ACTIVE.with(|a| a.set(true));
}

/// Stops capturing and returns the records, sorted by simulated time
/// (emission order is preserved within an instant).
pub fn finish() -> Vec<TraceRecord> {
    ACTIVE.with(|a| a.set(false));
    let mut records = SINK.with(|s| std::mem::take(&mut *s.borrow_mut()));
    // Components process packets slightly out of timestamp order (a link
    // drains `done_at <= now` while a poll emits at `now`), so restore
    // the timeline here, once, stably.
    records.sort_by_key(|r| r.at);
    records
}

/// Minimal JSON string escape (quotes, backslash, control characters).
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends one JSONL line (`{"t_us":..,"ev":"..",...}\n`) for `rec`.
pub fn jsonl_into(rec: &TraceRecord, out: &mut String) {
    let _ = write!(
        out,
        "{{\"t_us\":{},\"ev\":\"{}\"",
        rec.at.as_micros(),
        rec.ev.name()
    );
    match &rec.ev {
        TraceEvent::SessionBegin { user, clip } => {
            let _ = write!(out, ",\"user\":{user},\"clip\":\"");
            escape_into(clip, out);
            out.push('"');
        }
        TraceEvent::SessionEnd { outcome } => {
            let _ = write!(out, ",\"outcome\":\"{outcome}\"");
        }
        TraceEvent::LinkUp { link } | TraceEvent::LinkDown { link } => {
            let _ = write!(out, ",\"link\":{link}");
        }
        TraceEvent::PacketDrop {
            link,
            cause,
            bytes,
            queued_bytes,
        } => {
            let _ = write!(
                out,
                ",\"link\":{link},\"cause\":\"{}\",\"bytes\":{bytes},\"queued_bytes\":{queued_bytes}",
                cause.label()
            );
        }
        TraceEvent::QueueDepth { link, queued_bytes } => {
            let _ = write!(out, ",\"link\":{link},\"queued_bytes\":{queued_bytes}");
        }
        TraceEvent::TcpRetransmit {
            port,
            seq,
            bytes,
            fast,
        } => {
            let _ = write!(
                out,
                ",\"port\":{port},\"seq\":{seq},\"bytes\":{bytes},\"fast\":{fast}"
            );
        }
        TraceEvent::TcpRto { port, rto_us } => {
            let _ = write!(out, ",\"port\":{port},\"rto_us\":{rto_us}");
        }
        TraceEvent::TcpCwnd {
            port,
            cwnd,
            ssthresh,
        } => {
            let _ = write!(
                out,
                ",\"port\":{port},\"cwnd\":{cwnd},\"ssthresh\":{ssthresh}"
            );
        }
        TraceEvent::ServerAdmit { transport } => {
            let _ = write!(out, ",\"transport\":\"{transport}\"");
        }
        TraceEvent::ServerPump { packets } => {
            let _ = write!(out, ",\"packets\":{packets}");
        }
        TraceEvent::ServerCrash | TraceEvent::ServerRestart => {}
        TraceEvent::ServerRungSwitch { from, to } | TraceEvent::RungSwitch { from, to } => {
            let _ = write!(out, ",\"from\":{from},\"to\":{to}");
        }
        TraceEvent::RebufferStart => {}
        TraceEvent::RebufferEnd { stalled_us } => {
            let _ = write!(out, ",\"stalled_us\":{stalled_us}");
        }
        TraceEvent::ClientPhase { phase } => {
            let _ = write!(out, ",\"phase\":\"{phase}\"");
        }
        TraceEvent::ClientRetry { attempt } => {
            let _ = write!(out, ",\"attempt\":{attempt}");
        }
        TraceEvent::TransportFallback => {}
        TraceEvent::GatewayRoute { replica } => {
            let _ = write!(out, ",\"replica\":{replica}");
        }
        TraceEvent::GatewayRedirect { from, to, reason } => {
            let _ = write!(out, ",\"from\":{from},\"to\":{to},\"reason\":\"{reason}\"");
        }
        TraceEvent::AdmissionReject { replica } => {
            let _ = write!(out, ",\"replica\":{replica}");
        }
    }
    out.push_str("}\n");
}

/// Renders `records` as JSONL, one event object per line.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 64);
    for rec in records {
        jsonl_into(rec, &mut out);
    }
    out
}

/// Chrome `trace_event` thread ids used by [`to_chrome_trace`].
mod tid {
    pub const SESSION: u32 = 1;
    pub const CLIENT: u32 = 2;
    pub const PLAYER: u32 = 3;
    pub const TRANSPORT: u32 = 4;
    pub const SERVER: u32 = 5;
    /// Links get `LINK_BASE + tag`.
    pub const LINK_BASE: u32 = 100;
}

/// One Chrome trace event object (without the trailing comma).
fn chrome_event(
    out: &mut String,
    name: &str,
    ph: char,
    ts_us: u64,
    tid: u32,
    args: &[(&str, String)],
) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{ts_us},\"pid\":1,\"tid\":{tid}"
    );
    if ph == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
    }
    out.push_str("},\n");
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Renders `records` (assumed time-sorted, as [`finish`] returns them) as
/// a Chrome `trace_event` JSON document loadable in Perfetto or
/// `chrome://tracing`.
///
/// Spans: the session itself, each client FSM phase, rebuffers, and link
/// outages. Counters: per-link queue occupancy, per-socket cwnd, and the
/// streamed rung. Everything else appears as instant events on the
/// originating component's track.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (tid, name) in [
        (tid::SESSION, "session"),
        (tid::CLIENT, "client fsm"),
        (tid::PLAYER, "player"),
        (tid::TRANSPORT, "transport"),
        (tid::SERVER, "server"),
    ] {
        chrome_event(
            &mut out,
            "thread_name",
            'M',
            0,
            tid,
            &[("name", jstr(name))],
        );
    }
    let mut named_links: Vec<u32> = Vec::new();
    let mut open_phase: Option<&'static str> = None;
    // Spans that may still be open when the record stream ends (a session
    // can starve out mid-rebuffer, or hit its deadline mid-outage); they
    // are closed at the final timestamp so every B has its E.
    let mut open_session = false;
    let mut open_rebuffer = false;
    let mut open_outages: Vec<u32> = Vec::new();
    let mut last_ts = 0u64;
    for rec in records {
        let ts = rec.at.as_micros();
        last_ts = last_ts.max(ts);
        let link_tid = |out: &mut String, named: &mut Vec<u32>, link: u32| -> u32 {
            let t = tid::LINK_BASE + link;
            if !named.contains(&link) {
                named.push(link);
                chrome_event(
                    out,
                    "thread_name",
                    'M',
                    0,
                    t,
                    &[("name", jstr(&format!("link {link}")))],
                );
            }
            t
        };
        match &rec.ev {
            TraceEvent::SessionBegin { user, clip } => {
                open_session = true;
                chrome_event(
                    &mut out,
                    "session",
                    'B',
                    ts,
                    tid::SESSION,
                    &[("user", user.to_string()), ("clip", jstr(clip))],
                );
            }
            TraceEvent::SessionEnd { outcome } => {
                if let Some(phase) = open_phase.take() {
                    chrome_event(&mut out, phase, 'E', ts, tid::CLIENT, &[]);
                }
                open_session = false;
                chrome_event(
                    &mut out,
                    "session",
                    'E',
                    ts,
                    tid::SESSION,
                    &[("outcome", jstr(outcome))],
                );
            }
            TraceEvent::LinkUp { link } => {
                let t = link_tid(&mut out, &mut named_links, *link);
                if let Some(pos) = open_outages.iter().position(|l| l == link) {
                    open_outages.swap_remove(pos);
                    chrome_event(&mut out, "outage", 'E', ts, t, &[]);
                } else {
                    chrome_event(&mut out, "link_up", 'i', ts, t, &[]);
                }
            }
            TraceEvent::LinkDown { link } => {
                let t = link_tid(&mut out, &mut named_links, *link);
                if !open_outages.contains(link) {
                    open_outages.push(*link);
                    chrome_event(&mut out, "outage", 'B', ts, t, &[]);
                }
            }
            TraceEvent::PacketDrop {
                link,
                cause,
                bytes,
                queued_bytes,
            } => {
                let t = link_tid(&mut out, &mut named_links, *link);
                chrome_event(
                    &mut out,
                    "drop",
                    'i',
                    ts,
                    t,
                    &[
                        ("cause", jstr(cause.label())),
                        ("bytes", bytes.to_string()),
                        ("queued_bytes", queued_bytes.to_string()),
                    ],
                );
            }
            TraceEvent::QueueDepth { link, queued_bytes } => {
                let t = link_tid(&mut out, &mut named_links, *link);
                chrome_event(
                    &mut out,
                    &format!("queue link {link}"),
                    'C',
                    ts,
                    t,
                    &[("bytes", queued_bytes.to_string())],
                );
            }
            TraceEvent::TcpRetransmit {
                port,
                seq,
                bytes,
                fast,
            } => chrome_event(
                &mut out,
                "tcp_retransmit",
                'i',
                ts,
                tid::TRANSPORT,
                &[
                    ("port", port.to_string()),
                    ("seq", seq.to_string()),
                    ("bytes", bytes.to_string()),
                    ("fast", fast.to_string()),
                ],
            ),
            TraceEvent::TcpRto { port, rto_us } => chrome_event(
                &mut out,
                "tcp_rto",
                'i',
                ts,
                tid::TRANSPORT,
                &[("port", port.to_string()), ("rto_us", rto_us.to_string())],
            ),
            TraceEvent::TcpCwnd {
                port,
                cwnd,
                ssthresh,
            } => chrome_event(
                &mut out,
                &format!("cwnd port {port}"),
                'C',
                ts,
                tid::TRANSPORT,
                &[
                    ("cwnd", cwnd.to_string()),
                    ("ssthresh", ssthresh.to_string()),
                ],
            ),
            TraceEvent::ServerAdmit { transport } => chrome_event(
                &mut out,
                "server_admit",
                'i',
                ts,
                tid::SERVER,
                &[("transport", jstr(transport))],
            ),
            TraceEvent::ServerPump { packets } => chrome_event(
                &mut out,
                "server_pump",
                'i',
                ts,
                tid::SERVER,
                &[("packets", packets.to_string())],
            ),
            TraceEvent::ServerCrash => {
                chrome_event(&mut out, "server_crash", 'i', ts, tid::SERVER, &[])
            }
            TraceEvent::ServerRestart => {
                chrome_event(&mut out, "server_restart", 'i', ts, tid::SERVER, &[])
            }
            TraceEvent::ServerRungSwitch { from, to } => chrome_event(
                &mut out,
                "rung",
                'C',
                ts,
                tid::SERVER,
                &[("rung", to.to_string()), ("from", from.to_string())],
            ),
            TraceEvent::RebufferStart => {
                if !open_rebuffer {
                    open_rebuffer = true;
                    chrome_event(&mut out, "rebuffer", 'B', ts, tid::PLAYER, &[]);
                }
            }
            TraceEvent::RebufferEnd { stalled_us } => {
                if open_rebuffer {
                    open_rebuffer = false;
                    chrome_event(
                        &mut out,
                        "rebuffer",
                        'E',
                        ts,
                        tid::PLAYER,
                        &[("stalled_us", stalled_us.to_string())],
                    );
                }
            }
            TraceEvent::ClientPhase { phase } => {
                if let Some(prev) = open_phase.replace(phase) {
                    chrome_event(&mut out, prev, 'E', ts, tid::CLIENT, &[]);
                }
                chrome_event(&mut out, phase, 'B', ts, tid::CLIENT, &[]);
            }
            TraceEvent::ClientRetry { attempt } => chrome_event(
                &mut out,
                "retry",
                'i',
                ts,
                tid::CLIENT,
                &[("attempt", attempt.to_string())],
            ),
            TraceEvent::TransportFallback => {
                chrome_event(&mut out, "transport_fallback", 'i', ts, tid::CLIENT, &[])
            }
            TraceEvent::RungSwitch { from, to } => chrome_event(
                &mut out,
                "rung_switch",
                'i',
                ts,
                tid::PLAYER,
                &[("from", from.to_string()), ("to", to.to_string())],
            ),
            TraceEvent::GatewayRoute { replica } => chrome_event(
                &mut out,
                "gateway_route",
                'i',
                ts,
                tid::SESSION,
                &[("replica", replica.to_string())],
            ),
            TraceEvent::GatewayRedirect { from, to, reason } => chrome_event(
                &mut out,
                "gateway_redirect",
                'i',
                ts,
                tid::SESSION,
                &[
                    ("from", from.to_string()),
                    ("to", to.to_string()),
                    ("reason", jstr(reason)),
                ],
            ),
            TraceEvent::AdmissionReject { replica } => chrome_event(
                &mut out,
                "admission_reject",
                'i',
                ts,
                tid::SERVER,
                &[("replica", replica.to_string())],
            ),
        }
    }
    if open_rebuffer {
        chrome_event(&mut out, "rebuffer", 'E', last_ts, tid::PLAYER, &[]);
    }
    for link in open_outages {
        chrome_event(&mut out, "outage", 'E', last_ts, tid::LINK_BASE + link, &[]);
    }
    if let Some(phase) = open_phase {
        chrome_event(&mut out, phase, 'E', last_ts, tid::CLIENT, &[]);
    }
    if open_session {
        chrome_event(&mut out, "session", 'E', last_ts, tid::SESSION, &[]);
    }
    // Strip the trailing ",\n" so the array is valid JSON.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_and_emit_is_a_no_op() {
        assert!(!active());
        emit(SimTime::from_millis(1), || unreachable!("must not build"));
        assert!(finish().is_empty());
    }

    #[test]
    fn captures_sorted_records() {
        start();
        emit(SimTime::from_millis(2), || TraceEvent::RebufferStart);
        emit(SimTime::from_millis(1), || TraceEvent::LinkDown { link: 3 });
        let recs = finish();
        assert!(!active());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].at, SimTime::from_millis(1));
        assert_eq!(recs[0].ev.name(), "link_down");
        assert_eq!(recs[1].ev.name(), "rebuffer_start");
    }

    #[test]
    fn jsonl_lines_are_json_objects() {
        let rec = TraceRecord {
            at: SimTime::from_micros(1500),
            ev: TraceEvent::PacketDrop {
                link: 2,
                cause: DropCause::Queue,
                bytes: 1400,
                queued_bytes: 65536,
            },
        };
        let mut line = String::new();
        jsonl_into(&rec, &mut line);
        assert_eq!(
            line,
            "{\"t_us\":1500,\"ev\":\"packet_drop\",\"link\":2,\"cause\":\"queue\",\"bytes\":1400,\"queued_bytes\":65536}\n"
        );
    }

    #[test]
    fn chrome_trace_balances_spans() {
        let records = vec![
            TraceRecord {
                at: SimTime::from_millis(0),
                ev: TraceEvent::SessionBegin {
                    user: 7,
                    clip: "news.rm".into(),
                },
            },
            TraceRecord {
                at: SimTime::from_millis(1),
                ev: TraceEvent::ClientPhase {
                    phase: "Connecting",
                },
            },
            TraceRecord {
                at: SimTime::from_millis(2),
                ev: TraceEvent::ClientPhase { phase: "Playing" },
            },
            TraceRecord {
                at: SimTime::from_millis(9),
                ev: TraceEvent::SessionEnd { outcome: "played" },
            },
        ];
        let doc = to_chrome_trace(&records);
        assert!(doc.contains("\"traceEvents\""));
        let begins = doc.matches("\"ph\":\"B\"").count();
        let ends = doc.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends, "unbalanced spans in {doc}");
        assert!(!doc.contains(",\n]"), "trailing comma in {doc}");
    }

    #[test]
    fn chrome_trace_closes_spans_left_open_at_the_end() {
        // A starved session: the rebuffer never ends, the outage never
        // lifts, and the deadline kills the session before SessionEnd.
        let records = vec![
            TraceRecord {
                at: SimTime::from_millis(0),
                ev: TraceEvent::SessionBegin {
                    user: 9,
                    clip: "news.rm".into(),
                },
            },
            TraceRecord {
                at: SimTime::from_millis(1),
                ev: TraceEvent::ClientPhase { phase: "playing" },
            },
            TraceRecord {
                at: SimTime::from_millis(2),
                ev: TraceEvent::LinkDown { link: 3 },
            },
            TraceRecord {
                at: SimTime::from_millis(4),
                ev: TraceEvent::RebufferStart,
            },
        ];
        let doc = to_chrome_trace(&records);
        let begins = doc.matches("\"ph\":\"B\"").count();
        let ends = doc.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 4, "session + phase + outage + rebuffer in {doc}");
        assert_eq!(begins, ends, "unbalanced spans in {doc}");
        // A LinkUp with no open outage must not emit a dangling 'E'.
        let doc = to_chrome_trace(&[TraceRecord {
            at: SimTime::from_millis(1),
            ev: TraceEvent::LinkUp { link: 3 },
        }]);
        assert_eq!(
            doc.matches("\"ph\":\"E\"").count(),
            0,
            "dangling E in {doc}"
        );
    }
}
