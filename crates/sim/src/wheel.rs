//! A hierarchical timing wheel with the exact pop order of [`EventQueue`].
//!
//! The wheel replaces the comparison-based `BinaryHeap` queue on the
//! simulator's hottest path. Schedule, cancel, and advance are O(1)
//! amortized instead of O(log n), and — because the slot arrays and the
//! due buffer are plain vectors whose capacity survives
//! [`TimerWheel::reset`] — a recycled wheel schedules without allocating
//! at all.
//!
//! # Layout
//!
//! The tick quantum is one microsecond: exactly the resolution of
//! [`SimTime`]. Six levels of 64 slots each cover an absolute horizon of
//! 64⁶ ticks (≈ 19.1 hours of simulated time — far beyond any session
//! deadline):
//!
//! | level | slot width | level span |
//! |-------|------------|------------|
//! | 0     | 1 µs       | 64 µs      |
//! | 1     | 64 µs      | 4.096 ms   |
//! | 2     | 4.096 ms   | 262 ms     |
//! | 3     | 262 ms     | 16.8 s     |
//! | 4     | 16.8 s     | 17.9 min   |
//! | 5     | 17.9 min   | 19.1 h     |
//!
//! Slots are addressed *absolutely*: an event due at tick `t` lives at
//! level `l`, slot `(t >> 6l) & 63`, where `l` is the highest base-64
//! digit in which `t` differs from the wheel's cursor. Each level keeps a
//! 64-bit occupancy bitmap, so finding the earliest pending slot is a
//! handful of trailing-zeros instructions. Events past the horizon go to
//! a (rare, reverse-sorted) overflow list.
//!
//! # Determinism contract
//!
//! [`TimerWheel::pop`] yields events in strictly increasing `(at, seq)`
//! order — bit-identical to [`EventQueue`], whose binary heap it
//! replaces; `tests/properties.rs` proves the equivalence over arbitrary
//! schedule/cancel/advance interleavings. Two mechanisms make the slot
//! machinery invisible:
//!
//! - A level-0 slot spans exactly one tick, so every event in it shares
//!   `at`; the drain sorts the slot by `seq` (cascaded entries may sit
//!   interleaved out of push order) before it is exposed.
//! - Drained-but-unpopped events wait in a *due buffer* in `(at, seq)`
//!   order. A push at an already-drained instant inserts into the due
//!   buffer at its sorted position, exactly where the heap would have
//!   surfaced it.
//!
//! [`EventQueue`]: crate::EventQueue

use std::cell::Cell;
use std::collections::VecDeque;

use crate::event::Scheduled;
use crate::time::SimTime;

/// Bits per level: 64 slots.
const SLOT_BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels.
const LEVELS: usize = 6;
/// First tick past the wheel's absolute horizon (64^LEVELS µs ≈ 19.1 h).
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS);

/// Handle to a scheduled event, returned by [`TimerWheel::push`] and
/// accepted by [`TimerWheel::cancel`].
///
/// The token records where the event lives (`at`) and which one it is
/// (`seq`), so cancellation is a small slot scan, not a queue walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelToken {
    at: SimTime,
    seq: u64,
}

/// A hierarchical timing wheel over [`Scheduled`] events.
///
/// Drop-in replacement for [`EventQueue`] on hot paths: same `push` /
/// `next_time` / `pop` / `pop_due` surface and the same `(at, seq)` pop
/// order, plus O(1) amortized `cancel` and a capacity-preserving
/// [`TimerWheel::reset`] so executors can recycle wheels across sessions
/// without reallocation.
///
/// [`EventQueue`]: crate::EventQueue
#[derive(Debug, Clone)]
pub struct TimerWheel<E> {
    /// `LEVELS * SLOTS` buckets, flat-indexed `level * SLOTS + slot`.
    slots: Vec<Vec<Scheduled<E>>>,
    /// Per-level occupancy bitmaps: bit `s` set ⇔ `slots[l*SLOTS+s]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// Events at or past [`HORIZON`], sorted by *descending* `(at, seq)`
    /// so the earliest is `last()` and pops are O(1).
    overflow: Vec<Scheduled<E>>,
    /// Drained-but-unpopped events in ascending `(at, seq)` order.
    due: VecDeque<Scheduled<E>>,
    /// The next undrained tick: every pending event with `at < cursor`
    /// lives in the due buffer, everything else in a slot or overflow.
    cursor: u64,
    /// Empty slot vectors with retained capacity, recycled by cascades.
    spare: Vec<Vec<Scheduled<E>>>,
    /// Memoized [`TimerWheel::next_time`] (`None` = dirty). Drivers poll
    /// the wake-up time far more often than the queue changes; the cache
    /// makes the repeat peeks O(1) like the heap's they replaced.
    next_cache: Cell<Option<Option<SimTime>>>,
    next_seq: u64,
    len: usize,
    /// Entries re-homed to a finer level by [`TimerWheel::advance_cursor`]
    /// since the last [`TimerWheel::reset`]. Observability only — never
    /// consulted by the scheduling logic.
    cascades: u64,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel anchored at tick zero.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            due: VecDeque::new(),
            cursor: 0,
            spare: Vec::new(),
            next_cache: Cell::new(None),
            next_seq: 0,
            len: 0,
            cascades: 0,
        }
    }

    /// Schedules `event` at `at` and returns a token for
    /// [`TimerWheel::cancel`].
    pub fn push(&mut self, at: SimTime, event: E) -> WheelToken {
        self.next_cache.set(None);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Scheduled { at, seq, event };
        if at.as_micros() < self.cursor {
            // The instant was already drained: surface the event through
            // the due buffer at its sorted (at, seq) position — exactly
            // where the reference heap would pop it. In the simulator
            // this is always an append (components never schedule into
            // the past), but arbitrary interleavings stay correct.
            let pos = self.due.partition_point(|e| (e.at, e.seq) < (at, seq));
            self.due.insert(pos, entry);
        } else {
            self.insert_wheel(entry);
        }
        self.len += 1;
        WheelToken { at, seq }
    }

    /// Places a not-yet-due entry into its level/slot (or overflow).
    fn insert_wheel(&mut self, entry: Scheduled<E>) {
        let t = entry.at.as_micros();
        debug_assert!(t >= self.cursor);
        if t >= HORIZON {
            let key = (entry.at, entry.seq);
            let pos = self.overflow.partition_point(|e| (e.at, e.seq) > key);
            self.overflow.insert(pos, entry);
            return;
        }
        let (level, slot) = locate(self.cursor, t);
        let idx = level * SLOTS + slot;
        if self.slots[idx].is_empty() {
            if self.slots[idx].capacity() == 0 {
                if let Some(recycled) = self.spare.pop() {
                    self.slots[idx] = recycled;
                }
            }
            self.occupied[level] |= 1 << slot;
        }
        self.slots[idx].push(entry);
    }

    /// Advances the cursor, cascading every level whose current-slot
    /// digit changed: entries parked there now belong to finer levels.
    fn advance_cursor(&mut self, to: u64) {
        let from = self.cursor;
        if to <= from {
            return;
        }
        self.cursor = to;
        // Highest changed digit first: its cascade may repopulate the
        // lower levels' current slots, which the descending walk then
        // re-cascades in turn. Levels above the highest changed digit
        // cannot cascade, so the walk starts there (usually level 0 or
        // 1: the loop is empty or a single iteration).
        let top = (63 - (from ^ to).leading_zeros()) as usize / SLOT_BITS;
        for level in (1..=top.min(LEVELS - 1)).rev() {
            let shift = SLOT_BITS * level;
            if (from >> shift) == (to >> shift) {
                continue;
            }
            let slot = ((to >> shift) & (SLOTS as u64 - 1)) as usize;
            if self.occupied[level] & (1 << slot) == 0 {
                continue;
            }
            self.occupied[level] &= !(1 << slot);
            let idx = level * SLOTS + slot;
            let mut drained = std::mem::take(&mut self.slots[idx]);
            self.cascades += drained.len() as u64;
            for entry in drained.drain(..) {
                // Every entry here is ≥ cursor (a slot strictly between
                // `from` and `to` would contradict the earliest-scan that
                // chose `to`), and it differs from the cursor only below
                // `level`, so it re-inserts strictly finer.
                self.insert_wheel(entry);
            }
            self.spare.push(drained);
        }
    }

    /// The earliest occupied (level, slot), if any. A lower level always
    /// holds earlier events than any higher one (see module docs).
    fn earliest_slot(&self) -> Option<(usize, usize)> {
        self.occupied
            .iter()
            .position(|bits| *bits != 0)
            .map(|level| (level, self.occupied[level].trailing_zeros() as usize))
    }

    /// The instant of the earliest pending event, if any. Exact — safe
    /// for drivers that jump the clock to it.
    pub fn next_time(&self) -> Option<SimTime> {
        if let Some(cached) = self.next_cache.get() {
            return cached;
        }
        let next = self.compute_next_time();
        self.next_cache.set(Some(next));
        next
    }

    fn compute_next_time(&self) -> Option<SimTime> {
        if let Some(front) = self.due.front() {
            return Some(front.at);
        }
        if let Some((level, slot)) = self.earliest_slot() {
            let bucket = &self.slots[level * SLOTS + slot];
            debug_assert!(!bucket.is_empty());
            if level == 0 {
                // One tick per level-0 slot: all entries share `at`.
                return Some(bucket[0].at);
            }
            return bucket.iter().map(|e| e.at).min();
        }
        self.overflow.last().map(|e| e.at)
    }

    /// Removes and returns the earliest event (ties broken by push
    /// order, like [`EventQueue`]).
    ///
    /// [`EventQueue`]: crate::EventQueue
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.next_cache.set(None);
        loop {
            if let Some(entry) = self.due.pop_front() {
                self.len -= 1;
                return Some(entry);
            }
            match self.earliest_slot() {
                Some((level, slot)) => {
                    let idx = level * SLOTS + slot;
                    if self.slots[idx].len() == 1 {
                        // Singleton bucket — the common case on the
                        // packet path. Its lone entry is the global
                        // earliest (lower levels are empty, every other
                        // slot starts later, a same-tick peer would share
                        // this slot), so return it directly: no cascade,
                        // no due-buffer round trip, and the slot keeps
                        // its capacity in place.
                        let entry = self.slots[idx].pop().expect("len checked");
                        self.occupied[level] &= !(1 << slot);
                        self.advance_cursor(entry.at.as_micros() + 1);
                        self.len -= 1;
                        return Some(entry);
                    }
                    if level == 0 {
                        self.occupied[0] &= !(1 << slot);
                        // All entries share one tick; only cascade
                        // interleaving can disorder their seqs. Seqs are
                        // unique, so unstable sort is deterministic.
                        self.slots[slot].sort_unstable_by_key(|e| e.seq);
                        let tick = self.slots[slot][0].at.as_micros();
                        self.due.extend(self.slots[slot].drain(..));
                        self.advance_cursor(tick + 1);
                    } else {
                        // Jump the cursor straight to the slot's earliest
                        // tick: the cascade re-homes that entry directly
                        // into level 0 (one move, not one per level).
                        // Every slot between the old cursor and the jump
                        // target is empty — an occupied one would hold an
                        // earlier event than the earliest-scan's choice.
                        // Retry.
                        let min_at = self.slots[idx]
                            .iter()
                            .map(|e| e.at.as_micros())
                            .min()
                            .expect("occupied bit set on empty slot");
                        self.advance_cursor(min_at);
                    }
                }
                None => {
                    let entry = self.overflow.pop()?;
                    self.len -= 1;
                    return Some(entry);
                }
            }
        }
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now` — the poll-driver workhorse, mirroring
    /// [`EventQueue::pop_due`].
    ///
    /// [`EventQueue::pop_due`]: crate::EventQueue::pop_due
    pub fn pop_due(&mut self, now: SimTime) -> Option<Scheduled<E>> {
        if self.next_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Cancels the event `token` refers to. Returns the cancelled event,
    /// or `None` if it already popped (or was already cancelled).
    pub fn cancel(&mut self, token: WheelToken) -> Option<E> {
        self.next_cache.set(None);
        let t = token.at.as_micros();
        if t < self.cursor {
            // Drained: it is in the due buffer iff still pending.
            let pos = self
                .due
                .partition_point(|e| (e.at, e.seq) < (token.at, token.seq));
            if pos < self.due.len() {
                let e = &self.due[pos];
                if e.at == token.at && e.seq == token.seq {
                    let entry = self.due.remove(pos).expect("index checked");
                    self.len -= 1;
                    return Some(entry.event);
                }
            }
            return None;
        }
        if t >= HORIZON {
            let key = (token.at, token.seq);
            let pos = self.overflow.partition_point(|e| (e.at, e.seq) > key);
            if pos < self.overflow.len() {
                let e = &self.overflow[pos];
                if e.at == token.at && e.seq == token.seq {
                    let entry = self.overflow.remove(pos);
                    self.len -= 1;
                    return Some(entry.event);
                }
            }
            return None;
        }
        // Pending entries always sit exactly where a push at their `at`
        // would land them today (cascades re-home them whenever the
        // cursor's digits change), so the token pinpoints the slot.
        let (level, slot) = locate(self.cursor, t);
        let idx = level * SLOTS + slot;
        let bucket = &mut self.slots[idx];
        let pos = bucket.iter().position(|e| e.seq == token.seq)?;
        // Within-slot order is irrelevant (level-0 drains sort by seq,
        // cascades redistribute by location), so swap_remove is safe.
        let entry = bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.occupied[level] &= !(1 << slot);
        }
        self.len -= 1;
        Some(entry.event)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries moved to a finer level by a cursor advance since the last
    /// [`TimerWheel::reset`]. A cheap proxy for "how often the wheel had
    /// to do more than O(1) work", surfaced in the campaign counter
    /// registry.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Drops all pending events, keeping allocated capacity. The cursor
    /// and sequence counter restart from zero, so a cleared wheel is
    /// indistinguishable from a fresh one except that scheduling into
    /// warm slots no longer allocates.
    pub fn clear(&mut self) {
        for (level, bits) in self.occupied.iter_mut().enumerate() {
            let mut remaining = *bits;
            while remaining != 0 {
                let slot = remaining.trailing_zeros() as usize;
                remaining &= remaining - 1;
                self.slots[level * SLOTS + slot].clear();
            }
            *bits = 0;
        }
        self.overflow.clear();
        self.due.clear();
        self.cursor = 0;
        self.next_cache.set(None);
        self.next_seq = 0;
        self.len = 0;
        self.cascades = 0;
    }

    /// Alias of [`TimerWheel::clear`] named for the recycling path:
    /// executors reset a session's wheels and hand the warm storage to
    /// the next session.
    pub fn reset(&mut self) {
        self.clear();
    }
}

/// The (level, slot) for tick `t` relative to `cursor`: the highest
/// base-64 digit in which they differ picks the level.
fn locate(cursor: u64, t: u64) -> (usize, usize) {
    let diff = cursor ^ t;
    let level = if diff == 0 {
        0
    } else {
        (63 - diff.leading_zeros()) as usize / SLOT_BITS
    };
    let slot = ((t >> (SLOT_BITS * level)) & (SLOTS as u64 - 1)) as usize;
    (level, slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(3), "c");
        w.push(SimTime::from_secs(1), "a");
        w.push(SimTime::from_secs(2), "b");
        assert_eq!(w.pop().unwrap().event, "a");
        assert_eq!(w.pop().unwrap().event, "b");
        assert_eq!(w.pop().unwrap().event, "c");
        assert!(w.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            w.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(w.pop().unwrap().event, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(1), "early");
        w.push(SimTime::from_secs(5), "late");
        let now = SimTime::from_secs(2);
        assert_eq!(w.pop_due(now).unwrap().event, "early");
        assert!(w.pop_due(now).is_none());
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn push_at_drained_instant_pops_next() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_millis(7);
        w.push(t, 0u32);
        w.push(t + SimDuration::from_secs(1), 99);
        assert_eq!(w.pop().unwrap().event, 0);
        // Same instant, scheduled after the first pop: the heap would
        // surface it before the 1-second event, so the wheel must too.
        w.push(t, 1);
        assert_eq!(w.next_time(), Some(t));
        assert_eq!(w.pop().unwrap().event, 1);
        assert_eq!(w.pop().unwrap().event, 99);
    }

    #[test]
    fn cascades_across_levels() {
        let mut w = TimerWheel::new();
        // One event per level span, plus one past the horizon.
        let times = [
            1u64,
            70,
            5_000,
            300_000,
            20_000_000,
            2_000_000_000,
            HORIZON + 5,
        ];
        for (i, t) in times.iter().enumerate() {
            w.push(SimTime::from_micros(*t), i);
        }
        for (i, t) in times.iter().enumerate() {
            let ev = w.pop().unwrap();
            assert_eq!(ev.event, i);
            assert_eq!(ev.at, SimTime::from_micros(*t));
        }
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_removes_pending() {
        let mut w = TimerWheel::new();
        let a = w.push(SimTime::from_millis(1), "a");
        let b = w.push(SimTime::from_millis(2), "b");
        let c = w.push(SimTime::from_millis(1), "c");
        assert_eq!(w.cancel(b), Some("b"));
        assert_eq!(w.cancel(b), None, "double-cancel is a no-op");
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop().unwrap().event, "a");
        assert_eq!(w.cancel(a), None, "popped events cannot be cancelled");
        assert_eq!(w.pop().unwrap().event, "c");
        assert_eq!(w.cancel(c), None);
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
    }

    #[test]
    fn cancel_in_due_buffer_and_overflow() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_millis(3);
        w.push(t, 0u8);
        w.push(t, 1);
        let far = w.push(SimTime::from_micros(HORIZON + 77), 9);
        assert_eq!(w.pop().unwrap().event, 0);
        // Entry 1 now sits in the due buffer.
        let one = w.push(t, 2); // drained instant → due buffer too
        assert_eq!(w.cancel(one), Some(2));
        assert_eq!(w.cancel(far), Some(9));
        assert_eq!(w.pop().unwrap().event, 1);
        assert!(w.is_empty());
    }

    #[test]
    fn clear_empties_and_restarts() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(9), 1u8);
        w.push(SimTime::from_micros(HORIZON + 1), 2);
        assert!(!w.is_empty());
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
        assert!(w.pop().is_none());
        // Recycled wheel behaves like a fresh one.
        w.push(SimTime::from_micros(5), 3);
        assert_eq!(w.pop().unwrap().event, 3);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut w = TimerWheel::new();
        let base = SimTime::from_secs(10);
        w.push(base + SimDuration::from_millis(30), 3u32);
        w.push(base + SimDuration::from_millis(10), 1);
        assert_eq!(w.pop().unwrap().event, 1);
        w.push(base + SimDuration::from_millis(20), 2);
        assert_eq!(w.pop().unwrap().event, 2);
        assert_eq!(w.pop().unwrap().event, 3);
    }

    #[test]
    fn next_time_is_exact_across_levels() {
        let mut w = TimerWheel::new();
        // Two events in one coarse slot: next_time must report the
        // earlier one, not the slot boundary.
        w.push(SimTime::from_micros(100_000), 1u8);
        w.push(SimTime::from_micros(99_000), 0);
        assert_eq!(w.next_time(), Some(SimTime::from_micros(99_000)));
        assert_eq!(w.pop().unwrap().event, 0);
        assert_eq!(w.next_time(), Some(SimTime::from_micros(100_000)));
    }
}
