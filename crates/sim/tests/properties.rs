//! Property-based tests for the simulation kernel's core invariants.

use proptest::prelude::*;
use rv_sim::{earliest, EventQueue, SimDuration, SimRng, SimTime, TimerWheel};

/// Replays `ops` against the timing wheel and the retained `BinaryHeap`
/// reference ([`EventQueue`]), asserting identical behavior after every
/// step. Ops: 0 = schedule, 1 = pop, 2 = cancel, 3 = advance-and-drain
/// (`pop_due` to a moved `now`). The heap has no cancel, so cancelled
/// seqs are skipped when it pops — the wheel must pop the surviving
/// events in exactly the heap's `(at, seq)` order.
fn check_wheel_matches_heap(ops: &[(u8, u64)]) -> Result<(), String> {
    let mut wheel = TimerWheel::new();
    let mut heap = EventQueue::new();
    let mut cancelled = std::collections::HashSet::new();
    let mut tokens = Vec::new();
    let mut gone = std::collections::HashSet::new(); // popped or cancelled ids
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;

    let heap_pop = |heap: &mut EventQueue<u64>, cancelled: &std::collections::HashSet<u64>| loop {
        match heap.pop() {
            Some(ev) if cancelled.contains(&ev.event) => continue,
            other => return other,
        }
    };

    for (op, arg) in ops {
        match op % 4 {
            0 => {
                // Schedule. Arg spreads over near times, coarse-slot
                // times, and (rarely) past the 2^36-tick horizon.
                let at = match arg % 10 {
                    9 => SimTime::from_micros((1 << 36) + arg % 1_000),
                    8 => now + SimDuration::from_secs(30 + arg % 100),
                    _ => SimTime::from_micros((arg / 10) % 3_000_000),
                };
                let id = next_id;
                next_id += 1;
                tokens.push((wheel.push(at, id), id));
                heap.push(at, id);
            }
            1 => {
                let got = wheel.pop();
                let want = heap_pop(&mut heap, &cancelled);
                match (&got, &want) {
                    (Some(g), Some(w)) => {
                        prop_assert_eq!(g.at, w.at);
                        prop_assert_eq!(g.seq, w.seq);
                        prop_assert_eq!(g.event, w.event);
                        gone.insert(g.event);
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "pop mismatch: {:?} vs {:?}", got, want),
                }
            }
            2 => {
                if tokens.is_empty() {
                    continue;
                }
                let (token, id) = tokens[(*arg as usize) % tokens.len()];
                let got = wheel.cancel(token);
                if gone.contains(&id) {
                    prop_assert_eq!(got, None, "cancel of a dead event must be a no-op");
                } else {
                    prop_assert_eq!(got, Some(id));
                    cancelled.insert(id);
                    gone.insert(id);
                }
            }
            _ => {
                // Advance the clock and drain both due streams.
                now += SimDuration::from_micros(arg % 500_000);
                loop {
                    let got = wheel.pop_due(now);
                    // Mirror pop_due for the heap, skipping cancelled.
                    let want = loop {
                        match heap.pop_due(now) {
                            Some(ev) if cancelled.contains(&ev.event) => continue,
                            other => break other,
                        }
                    };
                    match (&got, &want) {
                        (Some(g), Some(w)) => {
                            prop_assert_eq!(g.at, w.at);
                            prop_assert_eq!(g.seq, w.seq);
                            prop_assert_eq!(g.event, w.event);
                            gone.insert(g.event);
                        }
                        (None, None) => break,
                        _ => prop_assert!(false, "pop_due mismatch: {:?} vs {:?}", got, want),
                    }
                }
            }
        }
        // next_time must be exact after every op: equal to the earliest
        // surviving event in the reference.
        let want_next = {
            let mut probe = heap.clone();
            loop {
                match probe.pop() {
                    Some(ev) if cancelled.contains(&ev.event) => continue,
                    Some(ev) => break Some(ev.at),
                    None => break None,
                }
            }
        };
        prop_assert_eq!(wheel.next_time(), want_next);
    }
    Ok(())
}

proptest! {
    /// The timing wheel and the retained `BinaryHeap` reference model pop
    /// identically — same `(at, seq, event)` stream, same `next_time`
    /// after every step — for arbitrary schedule/cancel/advance
    /// interleavings.
    #[test]
    fn wheel_matches_heap_reference(
        ops in prop::collection::vec((0u8..8, any::<u64>()), 1..400),
    ) {
        check_wheel_matches_heap(&ops)?;
    }

    /// `next_time` is conservative *and* exact: a wheel reporting
    /// `IdleUntil(t)` has nothing due strictly before `t`, and popping at
    /// `t` always yields an event (the PR 2 driver contract — a driver
    /// jumping the clock to `next_time` never overshoots or spins).
    #[test]
    fn wheel_next_time_is_conservative(
        times in prop::collection::vec(0u64..5_000_000, 1..200),
    ) {
        let mut w = TimerWheel::new();
        for (i, t) in times.iter().enumerate() {
            w.push(SimTime::from_micros(*t), i);
        }
        while let Some(t) = w.next_time() {
            // Nothing is due before the reported wake-up...
            if t > SimTime::ZERO {
                prop_assert!(w.pop_due(t - SimDuration::from_micros(1)).is_none());
            }
            // ...and something is always due exactly at it.
            let ev = w.pop_due(t);
            prop_assert!(ev.is_some());
            prop_assert_eq!(ev.unwrap().at, t);
        }
        prop_assert!(w.is_empty());
    }

    /// Popping the queue always yields events in nondecreasing time order,
    /// regardless of insertion order.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
        }
    }

    /// Events at identical times pop in insertion (FIFO) order.
    #[test]
    fn queue_fifo_on_ties(groups in prop::collection::vec((0u64..100, 1usize..10), 1..30)) {
        let mut q = EventQueue::new();
        let mut idx = 0usize;
        for (t, n) in &groups {
            for _ in 0..*n {
                q.push(SimTime::from_micros(*t), idx);
                idx += 1;
            }
        }
        let mut per_time: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        while let Some(ev) = q.pop() {
            per_time.entry(ev.at.as_micros()).or_default().push(ev.event);
        }
        for seq in per_time.values() {
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            prop_assert_eq!(seq, &sorted);
        }
    }

    /// `earliest` equals the minimum over the Some() entries.
    #[test]
    fn earliest_is_min(entries in prop::collection::vec(prop::option::of(0u64..1_000), 0..20)) {
        let opts: Vec<Option<SimTime>> =
            entries.iter().map(|o| o.map(SimTime::from_micros)).collect();
        let expect = entries.iter().flatten().min().map(|m| SimTime::from_micros(*m));
        prop_assert_eq!(earliest(opts), expect);
    }

    /// Time arithmetic round-trips: (t + d) - t == d.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!((time + dur).saturating_since(time), dur);
    }

    /// Saturating subtraction never underflows and is zero when later > self.
    #[test]
    fn saturating_since_never_panics(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        let d = ta.saturating_since(tb);
        if a <= b {
            prop_assert_eq!(d, SimDuration::ZERO);
        } else {
            prop_assert_eq!(d.as_micros(), a - b);
        }
    }

    /// Seeded RNG streams are reproducible for any seed.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.range(0u64..1_000_000), b.range(0u64..1_000_000));
        }
    }

    /// weighted_index only ever returns indices with positive weight.
    #[test]
    fn weighted_index_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..16),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        if let Some(i) = rng.weighted_index(&weights) {
            prop_assert!(weights[i] > 0.0);
        } else {
            prop_assert!(weights.iter().all(|w| *w <= 0.0));
        }
    }

    /// Shuffle is a permutation: same multiset before and after.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut v in prop::collection::vec(any::<u32>(), 0..64)) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut orig = v.clone();
        rng.shuffle(&mut v);
        orig.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(orig, v);
    }
}
