//! Property-based tests for the simulation kernel's core invariants.

use proptest::prelude::*;
use rv_sim::{earliest, EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    /// Popping the queue always yields events in nondecreasing time order,
    /// regardless of insertion order.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
        }
    }

    /// Events at identical times pop in insertion (FIFO) order.
    #[test]
    fn queue_fifo_on_ties(groups in prop::collection::vec((0u64..100, 1usize..10), 1..30)) {
        let mut q = EventQueue::new();
        let mut idx = 0usize;
        for (t, n) in &groups {
            for _ in 0..*n {
                q.push(SimTime::from_micros(*t), idx);
                idx += 1;
            }
        }
        let mut per_time: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        while let Some(ev) = q.pop() {
            per_time.entry(ev.at.as_micros()).or_default().push(ev.event);
        }
        for seq in per_time.values() {
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            prop_assert_eq!(seq, &sorted);
        }
    }

    /// `earliest` equals the minimum over the Some() entries.
    #[test]
    fn earliest_is_min(entries in prop::collection::vec(prop::option::of(0u64..1_000), 0..20)) {
        let opts: Vec<Option<SimTime>> =
            entries.iter().map(|o| o.map(SimTime::from_micros)).collect();
        let expect = entries.iter().flatten().min().map(|m| SimTime::from_micros(*m));
        prop_assert_eq!(earliest(opts), expect);
    }

    /// Time arithmetic round-trips: (t + d) - t == d.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert_eq!((time + dur).saturating_since(time), dur);
    }

    /// Saturating subtraction never underflows and is zero when later > self.
    #[test]
    fn saturating_since_never_panics(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        let d = ta.saturating_since(tb);
        if a <= b {
            prop_assert_eq!(d, SimDuration::ZERO);
        } else {
            prop_assert_eq!(d.as_micros(), a - b);
        }
    }

    /// Seeded RNG streams are reproducible for any seed.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.range(0u64..1_000_000), b.range(0u64..1_000_000));
        }
    }

    /// weighted_index only ever returns indices with positive weight.
    #[test]
    fn weighted_index_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..16),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        if let Some(i) = rng.weighted_index(&weights) {
            prop_assert!(weights[i] > 0.0);
        } else {
            prop_assert!(weights.iter().all(|w| *w <= 0.0));
        }
    }

    /// Shuffle is a permutation: same multiset before and after.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut v in prop::collection::vec(any::<u32>(), 0..64)) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut orig = v.clone();
        rng.shuffle(&mut v);
        orig.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(orig, v);
    }
}
