//! Empirical cumulative distribution functions.
//!
//! Every distributional figure in the paper (Figures 5, 6, 11–15, 17, 18,
//! 20–27) is a CDF; this module is the common machinery behind all of them.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. Returns `None` if empty or any NaN.
    pub fn from_samples(samples: &[f64]) -> Option<Cdf> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        Some(Cdf { sorted })
    }

    /// Number of underlying samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// F(x): fraction of samples less than or equal to `x`.
    pub fn at(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|v| *v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample `v` with `F(v) >= q` (`q` clamped to
    /// `(0, 1]`; `q <= 0` returns the minimum).
    pub fn quantile(&self, q: f64) -> f64 {
        if q <= 0.0 {
            return self.sorted[0];
        }
        let q = q.min(1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("nonempty by construction")
    }

    /// Evaluates the CDF at `points.len()` fixed x positions, producing the
    /// `(x, F(x))` series a figure plots.
    pub fn series_at(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.at(x))).collect()
    }

    /// Evaluates the CDF on a uniform grid of `n >= 2` points spanning
    /// `[lo, hi]`.
    pub fn series_on_grid(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "grid needs at least two points");
        assert!(hi >= lo, "grid bounds reversed");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Merges another CDF into this one: a sorted multiset union of the
    /// two sample sets. The result holds exactly the samples both held,
    /// so merge order cannot matter — `merge(a, merge(b, c))` and
    /// `merge(merge(a, b), c)` hold the identical sorted vector.
    pub fn merge(&mut self, other: &Cdf) {
        let mut merged = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        let (mut a, mut b) = (
            self.sorted.iter().peekable(),
            other.sorted.iter().peekable(),
        );
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            if x <= y {
                merged.push(x);
                a.next();
            } else {
                merged.push(y);
                b.next();
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.sorted = merged;
    }

    /// The full step-function representation: one `(value, F(value))` pair
    /// per distinct sample value.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, v) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == *v => last.1 = f,
                _ => out.push((*v, f)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(samples: &[f64]) -> Cdf {
        Cdf::from_samples(samples).unwrap()
    }

    #[test]
    fn rejects_empty_and_nan() {
        assert!(Cdf::from_samples(&[]).is_none());
        assert!(Cdf::from_samples(&[f64::NAN]).is_none());
    }

    #[test]
    fn at_is_fraction_leq() {
        let c = cdf(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.at(0.0), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(2.5), 0.75);
        assert_eq!(c.at(3.0), 1.0);
        assert_eq!(c.at(99.0), 1.0);
    }

    #[test]
    fn quantile_inverts() {
        let c = cdf(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.quantile(0.0), 10.0);
        assert_eq!(c.quantile(0.25), 10.0);
        assert_eq!(c.quantile(0.26), 20.0);
        assert_eq!(c.quantile(0.5), 20.0);
        assert_eq!(c.quantile(1.0), 40.0);
        assert_eq!(c.quantile(2.0), 40.0);
    }

    #[test]
    fn mean_min_max() {
        let c = cdf(&[1.0, 2.0, 6.0]);
        assert!((c.mean() - 3.0).abs() < 1e-12);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 6.0);
    }

    #[test]
    fn grid_series_is_monotone() {
        let c = cdf(&[5.0, 1.0, 3.0, 3.0, 8.0]);
        let series = c.series_on_grid(0.0, 10.0, 21);
        assert_eq!(series.len(), 21);
        assert_eq!(series[0], (0.0, 0.0));
        assert_eq!(series.last().unwrap().1, 1.0);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn steps_deduplicate_values() {
        let c = cdf(&[2.0, 2.0, 2.0, 5.0]);
        assert_eq!(c.steps(), vec![(2.0, 0.75), (5.0, 1.0)]);
    }

    #[test]
    fn series_at_fixed_points() {
        let c = cdf(&[1.0, 2.0]);
        assert_eq!(
            c.series_at(&[0.0, 1.5, 3.0]),
            vec![(0.0, 0.0), (1.5, 0.5), (3.0, 1.0)]
        );
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn grid_needs_two_points() {
        cdf(&[1.0]).series_on_grid(0.0, 1.0, 1);
    }
}
