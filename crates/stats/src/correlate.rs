//! Correlation and simple linear regression.
//!
//! Figure 28 of the paper is a rating-vs-bandwidth scatter whose headline is
//! *weak* correlation with a *slight upward trend*; these helpers quantify
//! both claims in the reproduction.

/// Pearson product-moment correlation of paired samples.
///
/// Returns `None` when fewer than two pairs are given, lengths mismatch, or
/// either variable is constant (correlation undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// A fitted line `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the least-squares line.
    pub slope: f64,
    /// Intercept of the least-squares line.
    pub intercept: f64,
    /// Coefficient of determination (r²).
    pub r_squared: f64,
}

/// Ordinary least-squares fit of `y` on `x`.
///
/// Returns `None` under the same conditions as [`pearson`], except a
/// constant `y` yields a valid zero-slope fit.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // constant y perfectly explained by zero-slope line
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None); // constant x
        assert_eq!(pearson(&[1.0, 2.0], &[5.0, 5.0]), None); // constant y
    }

    #[test]
    fn fit_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_constant_y() {
        let fit = linear_fit(&[0.0, 1.0, 2.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn fit_constant_x_is_none() {
        assert_eq!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]), None);
    }

    #[test]
    fn noisy_fit_has_partial_r_squared() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [0.1, 1.2, 1.8, 3.3, 3.9, 4.8];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.slope > 0.8 && fit.slope < 1.2);
        assert!(fit.r_squared > 0.95 && fit.r_squared < 1.0);
    }
}
