//! Histograms and categorical tallies.
//!
//! The paper's bar-chart figures (7, 8, 9, 10, 16) are categorical counts;
//! [`CategoryCount`] models those. [`Histogram`] bins continuous samples for
//! scatter/density-style summaries.

use std::collections::BTreeMap;

/// A tally over named categories, preserving deterministic (sorted) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CategoryCount {
    counts: BTreeMap<String, u64>,
}

impl CategoryCount {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation of `category`.
    pub fn add(&mut self, category: &str) {
        self.add_n(category, 1);
    }

    /// Adds `n` observations of `category`.
    pub fn add_n(&mut self, category: &str, n: u64) {
        *self.counts.entry(category.to_string()).or_insert(0) += n;
    }

    /// The count for `category` (zero if never seen).
    pub fn get(&self, category: &str) -> u64 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// Total observations across all categories.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct categories.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The share of observations in `category`, in `[0, 1]`.
    pub fn fraction(&self, category: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(category) as f64 / total as f64
        }
    }

    /// `(category, count)` pairs sorted by category name.
    pub fn by_name(&self) -> Vec<(&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }

    /// `(category, count)` pairs sorted by ascending count, then name —
    /// the ordering the paper's bar charts use.
    pub fn by_count_ascending(&self) -> Vec<(&str, u64)> {
        let mut v = self.by_name();
        v.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// Merges another tally into this one. Per-category `u64` addition:
    /// associative and commutative, so any merge order yields the same
    /// tally bitwise.
    pub fn merge(&mut self, other: &CategoryCount) {
        for (k, v) in &other.counts {
            *self.counts.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// A fixed-width-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be nonempty");
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a sample. Values outside `[lo, hi)` land in the
    /// underflow/overflow counters rather than being dropped silently.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() || x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// The count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// The `[start, end)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let start = self.lo + self.width * i as f64;
        (start, start + self.width)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the top of the range (and NaNs are underflow).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded samples including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Merges another histogram into this one. Panics unless both share
    /// the same `[lo, hi)` range and bin count — merging differently
    /// configured histograms is a logic error, not a recoverable state.
    /// Per-bin `u64` addition: associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.width == other.width && self.bins.len() == other.bins.len(),
            "histogram configs differ"
        );
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// `(bin_midpoint, count)` series for plotting.
    pub fn series(&self) -> Vec<(f64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (a, b) = self.bin_range(i);
                ((a + b) / 2.0, *c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_counts_accumulate() {
        let mut c = CategoryCount::new();
        c.add("US");
        c.add("US");
        c.add_n("UK", 5);
        assert_eq!(c.get("US"), 2);
        assert_eq!(c.get("UK"), 5);
        assert_eq!(c.get("FR"), 0);
        assert_eq!(c.total(), 7);
        assert_eq!(c.len(), 2);
        assert!((c.fraction("UK") - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_category_fraction_is_zero() {
        let c = CategoryCount::new();
        assert!(c.is_empty());
        assert_eq!(c.fraction("x"), 0.0);
    }

    #[test]
    fn orderings() {
        let mut c = CategoryCount::new();
        c.add_n("b", 3);
        c.add_n("a", 3);
        c.add_n("z", 1);
        assert_eq!(c.by_name(), vec![("a", 3), ("b", 3), ("z", 1)]);
        assert_eq!(c.by_count_ascending(), vec![("z", 1), ("a", 3), ("b", 3)]);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0); // bin 0
        h.add(1.9); // bin 0
        h.add(2.0); // bin 1
        h.add(9.999); // bin 4
        h.add(10.0); // overflow (half-open top)
        h.add(-0.1); // underflow
        h.add(f64::NAN); // underflow
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_range(1), (2.0, 4.0));
    }

    #[test]
    fn histogram_series_midpoints() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.add(1.0);
        h.add(3.0);
        h.add(3.5);
        assert_eq!(h.series(), vec![(1.0, 1), (3.0, 2)]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
