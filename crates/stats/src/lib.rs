//! # rv-stats — statistics toolkit for the RealVideo reproduction
//!
//! Every figure in the paper is either a CDF ([`Cdf`]), a categorical bar
//! chart ([`CategoryCount`]), or a scatter with a trend ([`pearson`],
//! [`linear_fit`]). This crate provides those primitives plus the text
//! rendering ([`table`], [`bar_chart`], [`cdf_plot`]) the `repro` binary
//! prints them with.
//!
//! For campaigns too large to retain samples, the [`sketch`] module adds
//! streaming mergeable counterparts ([`QuantileSketch`], [`FixedSum`],
//! [`CoMoments`]) with bitwise merge-order independence, and every
//! retained type here grows a `merge()` with the same guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod correlate;
mod histogram;
mod render;
pub mod sketch;
mod summary;

pub use cdf::Cdf;
pub use correlate::{linear_fit, pearson, LinearFit};
pub use histogram::{CategoryCount, Histogram};
pub use render::{bar_chart, cdf_plot, series_columns, table};
pub use sketch::{CoMoments, FixedSum, QuantileSketch};
pub use summary::Summary;
