//! Plain-text rendering of figures: aligned tables, bar charts, and CDF
//! line plots. The `repro` binary prints every paper figure through these.

/// Renders rows as an aligned, pipe-separated table with a header.
///
/// Panics if any row's width differs from the header's.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            header.len(),
            "table row width {} != header width {}",
            row.len(),
            header.len()
        );
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str(" | ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 3 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Renders `(label, value)` pairs as a horizontal ASCII bar chart scaled to
/// `width` characters for the largest value.
pub fn bar_chart(items: &[(&str, f64)], width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {value:.4}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Plots one or more named CDF series on a shared text canvas.
///
/// `series` maps a name to its `(x, F(x))` points (F in `[0, 1]`). The plot
/// is `width` x `height` characters; each series draws with its own glyph.
pub fn cdf_plot(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, pts) in series {
        for (x, _) in *pts {
            lo = lo.min(*x);
            hi = hi.max(*x);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::from("(no data)\n");
    }
    if hi <= lo {
        hi = lo + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, f) in *pts {
            let col = (((x - lo) / (hi - lo)) * (width - 1) as f64).round() as usize;
            let row = ((1.0 - f.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            canvas[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in canvas.iter().enumerate() {
        let y = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("      {}\n", "-".repeat(width)));
    out.push_str(&format!(
        "      {lo:<12.4}{:>width$.4}\n",
        hi,
        width = width.saturating_sub(12)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    out.push_str(&format!("      legend: {}\n", legend.join("   ")));
    out
}

/// Formats a `(x, y)` numeric series as two aligned columns, the raw data
/// dump accompanying each plotted figure.
pub fn series_columns(name_x: &str, name_y: &str, points: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![format!("{x:.4}"), format!("{y:.4}")])
        .collect();
    table(&[name_x, name_y], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["name", "count"],
            &[
                vec!["us".into(), "2100".into()],
                vec!["egypt".into(), "8".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "name  | count");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "us    | 2100");
        assert_eq!(lines[3], "egypt | 8");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let out = bar_chart(&[("big", 10.0), ("half", 5.0)], 10);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains(&"#".repeat(5)));
        assert!(!lines[1].contains(&"#".repeat(6)));
    }

    #[test]
    fn bar_chart_all_zero() {
        let out = bar_chart(&[("a", 0.0)], 10);
        assert!(!out.contains('#'));
    }

    #[test]
    fn cdf_plot_renders_axes_and_legend() {
        let pts = [(0.0, 0.0), (5.0, 0.5), (10.0, 1.0)];
        let out = cdf_plot(&[("all", &pts)], 40, 10);
        assert!(out.contains("1.00 |"));
        assert!(out.contains("0.00 |"));
        assert!(out.contains("legend: * all"));
        assert!(out.contains('*'));
    }

    #[test]
    fn cdf_plot_handles_empty() {
        assert_eq!(cdf_plot(&[("none", &[])], 10, 5), "(no data)\n");
    }

    #[test]
    fn cdf_plot_multiple_series_use_distinct_glyphs() {
        let a = [(0.0, 0.1), (1.0, 0.9)];
        let b = [(0.0, 0.3), (1.0, 0.7)];
        let out = cdf_plot(&[("a", &a), ("b", &b)], 20, 8);
        assert!(out.contains('*') && out.contains('o'));
    }

    #[test]
    fn series_columns_formats() {
        let out = series_columns("fps", "cdf", &[(3.0, 0.25)]);
        assert!(out.contains("3.0000"));
        assert!(out.contains("0.2500"));
    }
}
