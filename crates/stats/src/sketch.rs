//! Mergeable streaming aggregates: fixed-point sums, a quantile sketch,
//! and bivariate co-moments.
//!
//! These are the primitives behind constant-memory campaigns. A campaign
//! that simulates millions of sessions cannot retain every sample; the
//! figures it produces are all counts, means, quantiles, CDF evaluations,
//! and correlations, every one of which folds into a bounded-size state
//! with a `merge` operation.
//!
//! **The determinism contract.** Per-worker accumulators are folded in
//! whatever order the scheduler runs jobs, then merged across workers —
//! so the aggregate state must be *independent of both fold and merge
//! order*, not merely of merge order. That rules out accumulating `f64`
//! sums directly (floating-point addition is not associative). Every
//! accumulated quantity here is an integer:
//!
//! * counts are `u64`,
//! * value sums are [`FixedSum`]: each sample is rounded **once** to a
//!   fixed-point integer (2⁻²⁰ resolution) and summed in `i128`, which is
//!   exact and therefore fully associative and commutative,
//! * the [`QuantileSketch`] stores `u64` counts in value-indexed buckets,
//!
//! so `merge(a, merge(b, c)) == merge(merge(a, b), c)` holds *bitwise*,
//! and any partition of a sample stream into sub-streams folds to the
//! identical state. Property tests in `tests/properties.rs` enforce both.
//! Derived `f64` statistics (means, quantiles) are computed once, at read
//! time, from the integer state — the same state yields the same bits.

use std::collections::BTreeMap;

/// Fixed-point scale: 2²⁰ ≈ 10⁶ steps per unit. Samples are bounded by
/// campaign metrics (≤ ~10⁶ in magnitude), so a scaled sample fits in
/// ~2⁴⁰ and 10⁹ of them sum to ~2⁷⁰ — comfortably inside `i128`.
const FIXED_SCALE: f64 = (1u64 << 20) as f64;

/// An order-independent accumulator for `f64` sums.
///
/// Each added sample is rounded once to a multiple of 2⁻²⁰ and the
/// rounded values are summed exactly in `i128`. The quantization error is
/// bounded by `n · 2⁻²¹` after `n` adds — negligible for campaign metrics
/// — and in exchange the sum is bit-identical for **any** add/merge
/// order. `total()` converts back to `f64` once, at read time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedSum(i128);

impl FixedSum {
    /// An empty sum.
    pub fn new() -> Self {
        FixedSum(0)
    }

    /// Adds one sample. NaN is rejected with a panic: a NaN in a metric
    /// stream is an upstream bug, and silently poisoning the sum (or
    /// dropping the sample) would hide it.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "FixedSum::add(NaN)");
        self.0 += (x * FIXED_SCALE).round() as i128;
    }

    /// Merges another sum into this one. Exact integer addition:
    /// associative, commutative.
    pub fn merge(&mut self, other: &FixedSum) {
        self.0 += other.0;
    }

    /// The accumulated total as `f64`.
    pub fn total(&self) -> f64 {
        self.0 as f64 / FIXED_SCALE
    }

    /// `total() / count`, or `None` for an empty count.
    pub fn mean(&self, count: u64) -> Option<f64> {
        (count > 0).then(|| self.total() / count as f64)
    }
}

/// ln γ for the sketch's geometric buckets, chosen for ~1 % relative
/// accuracy: γ = e^LN_GAMMA ≈ 1.0202, so consecutive bucket boundaries
/// differ by ~2 % and a bucket's representative value is within ~1 % of
/// every sample it holds. A literal (not computed at runtime) so the
/// bucket function is a fixed pure function of the sample.
const LN_GAMMA: f64 = 0.02;

/// Magnitudes below this collapse into the zero bucket. Campaign metrics
/// (fps, kbps, ms, ratings) are either exactly zero or well above it.
const MIN_MAGNITUDE: f64 = 1e-9;

/// A mergeable quantile sketch over `f64` samples with bounded memory and
/// ~1 % relative accuracy (DDSketch-style geometric buckets).
///
/// A sample `x > 0` lands in bucket `⌈ln(x)/ln γ⌉`, which spans
/// `(γ^(i-1), γ^i]`; negative samples mirror into a second bucket map and
/// near-zeros into a dedicated counter, so the sketch is exact about
/// signs. Bucket counts are `u64` and [`merge`](QuantileSketch::merge) is
/// per-bucket integer addition — associative, commutative, and
/// order-canonical by construction (see the module docs). The number of
/// buckets is logarithmic in the sample range (~1,400 spanning 1e-9 to
/// 1e3), so memory is bounded no matter how many samples stream through.
///
/// Exact extrema and a [`FixedSum`] ride along, so `min`/`max`/`mean` are
/// not sketched; only interior quantiles carry the ~1 % bucket error.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSketch {
    /// Bucket counts for positive samples, keyed by `⌈ln(x)/ln γ⌉`.
    pos: BTreeMap<i32, u64>,
    /// Bucket counts for negative samples, keyed on `|x|`.
    neg: BTreeMap<i32, u64>,
    /// Samples with `|x| < MIN_MAGNITUDE`.
    zero: u64,
    count: u64,
    sum: FixedSum,
    /// Exact extrema (`None` until the first sample).
    bounds: Option<(f64, f64)>,
}

/// The bucket index of a positive magnitude.
fn bucket_of(magnitude: f64) -> i32 {
    (magnitude.ln() / LN_GAMMA).ceil() as i32
}

/// The representative value of bucket `i`: the geometric midpoint of
/// `(γ^(i-1), γ^i]`.
fn bucket_value(i: i32) -> f64 {
    ((f64::from(i) - 0.5) * LN_GAMMA).exp()
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sketch from a sample slice (fold order is irrelevant).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in samples {
            s.add(x);
        }
        s
    }

    /// Records one sample. Panics on NaN (an upstream bug; see
    /// [`FixedSum::add`]).
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "QuantileSketch::add(NaN)");
        if x.abs() < MIN_MAGNITUDE {
            self.zero += 1;
        } else if x > 0.0 {
            *self.pos.entry(bucket_of(x)).or_insert(0) += 1;
        } else {
            *self.neg.entry(bucket_of(-x)).or_insert(0) += 1;
        }
        self.count += 1;
        self.sum.add(x);
        self.bounds = Some(match self.bounds {
            None => (x, x),
            Some((lo, hi)) => (lo.min(x), hi.max(x)),
        });
    }

    /// Merges another sketch into this one: per-bucket `u64` addition
    /// plus exact extrema/sum merges. Bitwise associative and
    /// commutative.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&b, &c) in &other.pos {
            *self.pos.entry(b).or_insert(0) += c;
        }
        for (&b, &c) in &other.neg {
            *self.neg.entry(b).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.bounds = match (self.bounds, other.bounds) {
            (a, None) => a,
            (None, b) => b,
            (Some((alo, ahi)), Some((blo, bhi))) => Some((alo.min(blo), ahi.max(bhi))),
        };
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean (to fixed-point resolution), or `None` when
    /// empty.
    pub fn mean(&self) -> Option<f64> {
        self.sum.mean(self.count)
    }

    /// Exact minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.bounds.map(|(lo, _)| lo)
    }

    /// Exact maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.bounds.map(|(_, hi)| hi)
    }

    /// The smallest value `v` (within ~1 % relative error) such that at
    /// least `⌈q·n⌉` samples are ≤ `v`. `q ≤ 0` yields the minimum,
    /// `q ≥ 1` the maximum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let (lo, hi) = self.bounds?;
        if q <= 0.0 {
            return Some(lo);
        }
        let rank = ((q.min(1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        // Ascending value order: most-negative first (descending |x|
        // bucket index), then zeros, then positives ascending.
        for (&b, &c) in self.neg.iter().rev() {
            seen += c;
            if seen >= rank {
                return Some((-bucket_value(b)).clamp(lo, hi));
            }
        }
        seen += self.zero;
        if seen >= rank {
            return Some(0.0f64.clamp(lo, hi));
        }
        for (&b, &c) in self.pos.iter() {
            seen += c;
            if seen >= rank {
                return Some(bucket_value(b).clamp(lo, hi));
            }
        }
        Some(hi)
    }

    /// F(x): the fraction of samples ≤ `x`, to bucket resolution (samples
    /// sharing x's bucket all count as ≤ x). Zero when empty.
    pub fn at(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut below = 0u64;
        if x >= -MIN_MAGNITUDE {
            // Everything negative is ≤ x.
            below += self.neg.values().sum::<u64>();
            if x >= MIN_MAGNITUDE {
                below += self.zero;
                let cutoff = bucket_of(x);
                below += self.pos.range(..=cutoff).map(|(_, c)| *c).sum::<u64>();
            } else {
                below += self.zero;
            }
        } else {
            let cutoff = bucket_of(-x);
            below += self.neg.range(cutoff..).map(|(_, c)| *c).sum::<u64>();
        }
        below as f64 / self.count as f64
    }

    /// Evaluates F on a uniform grid of `n ≥ 2` points spanning
    /// `[lo, hi]` — the `(x, F(x))` series a CDF figure plots.
    pub fn series_on_grid(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "grid needs at least two points");
        assert!(hi >= lo, "grid bounds reversed");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Number of occupied buckets (memory proxy, for tests and docs).
    pub fn buckets(&self) -> usize {
        self.pos.len() + self.neg.len() + usize::from(self.zero > 0)
    }
}

/// Mergeable bivariate co-moments: everything a scatter figure needs
/// (count, means, Pearson correlation, least-squares slope) in six
/// integers.
///
/// Each `(x, y)` pair contributes its five products rounded once into
/// [`FixedSum`]s, so the state obeys the same bitwise merge-order
/// independence as the rest of this module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoMoments {
    /// Number of pairs.
    pub n: u64,
    sum_x: FixedSum,
    sum_y: FixedSum,
    sum_xx: FixedSum,
    sum_yy: FixedSum,
    sum_xy: FixedSum,
}

impl CoMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(x, y)` pair.
    pub fn add(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sum_x.add(x);
        self.sum_y.add(y);
        self.sum_xx.add(x * x);
        self.sum_yy.add(y * y);
        self.sum_xy.add(x * y);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CoMoments) {
        self.n += other.n;
        self.sum_x.merge(&other.sum_x);
        self.sum_y.merge(&other.sum_y);
        self.sum_xx.merge(&other.sum_xx);
        self.sum_yy.merge(&other.sum_yy);
        self.sum_xy.merge(&other.sum_xy);
    }

    /// Mean of x, or `None` when empty.
    pub fn mean_x(&self) -> Option<f64> {
        self.sum_x.mean(self.n)
    }

    /// Mean of y, or `None` when empty.
    pub fn mean_y(&self) -> Option<f64> {
        self.sum_y.mean(self.n)
    }

    /// Pearson correlation coefficient; `None` with fewer than two pairs
    /// or when either variable is constant.
    pub fn pearson(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let cov = n * self.sum_xy.total() - self.sum_x.total() * self.sum_y.total();
        let var_x = n * self.sum_xx.total() - self.sum_x.total().powi(2);
        let var_y = n * self.sum_yy.total() - self.sum_y.total().powi(2);
        if var_x <= 0.0 || var_y <= 0.0 {
            return None;
        }
        Some(cov / (var_x * var_y).sqrt())
    }

    /// Least-squares slope of y on x; `None` with fewer than two pairs or
    /// constant x.
    pub fn slope(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let n = self.n as f64;
        let var_x = n * self.sum_xx.total() - self.sum_x.total().powi(2);
        if var_x <= 0.0 {
            return None;
        }
        Some((n * self.sum_xy.total() - self.sum_x.total() * self.sum_y.total()) / var_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sum_is_order_independent() {
        let xs = [0.1, 0.7, 123.456, -3.25, 1e6, 1e-6];
        let mut forward = FixedSum::new();
        let mut backward = FixedSum::new();
        for x in xs {
            forward.add(x);
        }
        for x in xs.iter().rev() {
            backward.add(*x);
        }
        assert_eq!(forward, backward);
        assert!((forward.total() - xs.iter().sum::<f64>()).abs() < 1e-5);
    }

    #[test]
    fn sketch_counts_and_mean_are_exact() {
        let s = QuantileSketch::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean().unwrap() - 2.5).abs() < 1e-5);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn sketch_quantiles_within_relative_error() {
        let samples: Vec<f64> = (1..=1000).map(f64::from).collect();
        let s = QuantileSketch::from_samples(&samples);
        for (q, exact) in [(0.1, 100.0), (0.5, 500.0), (0.9, 900.0)] {
            let got = s.quantile(q).unwrap();
            assert!(
                (got - exact).abs() <= exact * 0.025,
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn sketch_handles_zero_and_negative() {
        let s = QuantileSketch::from_samples(&[-10.0, -1.0, 0.0, 0.0, 1.0, 10.0]);
        assert_eq!(s.count(), 6);
        assert_eq!(s.min(), Some(-10.0));
        assert_eq!(s.max(), Some(10.0));
        // F at zero covers negatives and zeros.
        assert!((s.at(0.0) - 4.0 / 6.0).abs() < 1e-12);
        assert!(s.at(-0.5) >= 2.0 / 6.0 - 1e-12);
        let q25 = s.quantile(0.25).unwrap();
        assert!(q25 < 0.0, "first quartile is negative: {q25}");
    }

    #[test]
    fn sketch_at_matches_exact_cdf_closely() {
        let samples: Vec<f64> = (1..=500).map(|i| f64::from(i) * 0.37).collect();
        let s = QuantileSketch::from_samples(&samples);
        let exact = crate::Cdf::from_samples(&samples).unwrap();
        for x in [1.0, 10.0, 50.0, 120.0, 185.0] {
            let got = s.at(x);
            let want = exact.at(x);
            assert!((got - want).abs() < 0.03, "at({x}): {got} vs {want}");
        }
        assert_eq!(s.at(1e9), 1.0);
        assert_eq!(s.at(-1e9), 0.0);
    }

    #[test]
    fn sketch_merge_equals_serial_fold() {
        let a: Vec<f64> = (0..100).map(|i| f64::from(i) * 1.7).collect();
        let b: Vec<f64> = (0..77).map(|i| f64::from(i) * -0.3).collect();
        let mut merged = QuantileSketch::from_samples(&a);
        merged.merge(&QuantileSketch::from_samples(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged, QuantileSketch::from_samples(&all));
    }

    #[test]
    fn sketch_memory_is_bounded() {
        // A million samples across nine decades land in ~a thousand
        // buckets, not a million.
        let mut s = QuantileSketch::new();
        for i in 0..1_000_000u64 {
            s.add((i % 100_000) as f64 * 1e-3 + 1e-6);
        }
        assert_eq!(s.count(), 1_000_000);
        assert!(s.buckets() < 2_000, "{} buckets", s.buckets());
    }

    #[test]
    fn empty_sketch_reads_none() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.at(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn sketch_rejects_nan() {
        QuantileSketch::new().add(f64::NAN);
    }

    #[test]
    fn comoments_match_sample_formulas() {
        // y = 2x + 1 exactly: r = 1, slope = 2.
        let mut m = CoMoments::new();
        for i in 0..50 {
            let x = f64::from(i);
            m.add(x, 2.0 * x + 1.0);
        }
        assert!((m.pearson().unwrap() - 1.0).abs() < 1e-6);
        assert!((m.slope().unwrap() - 2.0).abs() < 1e-4);
        assert!((m.mean_x().unwrap() - 24.5).abs() < 1e-6);
    }

    #[test]
    fn comoments_merge_equals_fold() {
        let pairs: Vec<(f64, f64)> = (0..40).map(|i| (f64::from(i), f64::from(i * i))).collect();
        let mut whole = CoMoments::new();
        for &(x, y) in &pairs {
            whole.add(x, y);
        }
        let (left, right) = pairs.split_at(13);
        let mut a = CoMoments::new();
        left.iter().for_each(|&(x, y)| a.add(x, y));
        let mut b = CoMoments::new();
        right.iter().for_each(|&(x, y)| b.add(x, y));
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn comoments_degenerate_cases() {
        let mut m = CoMoments::new();
        assert_eq!(m.pearson(), None);
        m.add(1.0, 2.0);
        assert_eq!(m.pearson(), None);
        m.add(1.0, 3.0); // constant x
        assert_eq!(m.pearson(), None);
        assert_eq!(m.slope(), None);
    }
}
