//! Scalar summaries of samples: moments, extrema, and quantiles.

/// Descriptive statistics of a set of `f64` samples.
///
/// NaN samples are rejected at construction — a NaN in a metric stream is
/// always an upstream bug and poisoning every downstream aggregate would
/// hide it.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Computes a summary. Returns `None` for an empty slice or any NaN.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Some(Summary {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("nonempty"),
            sorted,
        })
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median (the 0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Linear-interpolated quantile, `q` in `[0, 1]` (clamped).
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Merges another summary into this one by recomputing every
    /// statistic over the union of the two sample sets. Since the merged
    /// state is a pure function of the combined multiset, merge order
    /// cannot affect the result.
    pub fn merge(&mut self, other: &Summary) {
        let mut all = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        all.extend_from_slice(&self.sorted);
        all.extend_from_slice(&other.sorted);
        // Sort before recomputing: from_samples folds its f64 sums in
        // input order, and only the sorted order is a pure function of
        // the combined multiset (f64 addition is not associative).
        all.sort_by(|a, b| a.partial_cmp(b).expect("both sides NaN-free"));
        *self = Summary::from_samples(&all).expect("both sides NaN-free and nonempty");
    }

    /// Fraction of samples strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|v| *v < x);
        k as f64 / self.count as f64
    }

    /// Fraction of samples at or above `x`.
    pub fn fraction_at_or_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_below(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::from_samples(&[]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn basic_moments() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.quantile(1.0 / 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let s = Summary::from_samples(&[1.0, 2.0]).unwrap();
        assert_eq!(s.quantile(-3.0), 1.0);
        assert_eq!(s.quantile(42.0), 2.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.0]).unwrap();
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.quantile(0.3), 7.0);
    }

    #[test]
    fn fractions() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.fraction_below(3.0), 0.5);
        assert_eq!(s.fraction_below(0.5), 0.0);
        assert_eq!(s.fraction_below(10.0), 1.0);
        assert_eq!(s.fraction_at_or_above(3.0), 0.5);
        // Samples equal to x count as at-or-above, not below.
        assert_eq!(s.fraction_below(1.0), 0.0);
    }
}
