//! Property-based tests for statistical invariants.

use proptest::prelude::*;
use rv_stats::{
    linear_fit, pearson, CategoryCount, Cdf, CoMoments, FixedSum, Histogram, QuantileSketch,
    Summary,
};

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

/// Three nonempty sample sets for three-way merge-associativity checks.
fn sample_triples() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
    (finite_samples(), finite_samples(), finite_samples())
}

proptest! {
    /// A CDF is monotone nondecreasing and ranges over [0, 1].
    #[test]
    fn cdf_monotone(samples in finite_samples()) {
        let cdf = Cdf::from_samples(&samples).unwrap();
        let series = cdf.series_on_grid(cdf.min() - 1.0, cdf.max() + 1.0, 50);
        prop_assert_eq!(series[0].1, 0.0);
        prop_assert_eq!(series.last().unwrap().1, 1.0);
        for w in series.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
    }

    /// quantile and at are approximate inverses: F(quantile(q)) >= q.
    #[test]
    fn cdf_quantile_inverts(samples in finite_samples(), q in 0.0f64..=1.0) {
        let cdf = Cdf::from_samples(&samples).unwrap();
        prop_assert!(cdf.at(cdf.quantile(q)) >= q - 1e-12);
    }

    /// Summary mean lies within [min, max] and matches the CDF mean.
    #[test]
    fn summary_mean_bounded(samples in finite_samples()) {
        let s = Summary::from_samples(&samples).unwrap();
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
        let cdf = Cdf::from_samples(&samples).unwrap();
        prop_assert!((s.mean() - cdf.mean()).abs() < 1e-6);
    }

    /// Quantiles are monotone in q.
    #[test]
    fn summary_quantiles_monotone(samples in finite_samples(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let s = Summary::from_samples(&samples).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(s.quantile(lo) <= s.quantile(hi) + 1e-12);
    }

    /// Pearson correlation, when defined, is within [-1, 1].
    #[test]
    fn pearson_bounded(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    /// r² of the least-squares fit equals pearson² when both are defined.
    #[test]
    fn r_squared_is_pearson_squared(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let (Some(r), Some(fit)) = (pearson(&xs, &ys), linear_fit(&xs, &ys)) {
            prop_assert!((fit.r_squared - r * r).abs() < 1e-6);
        }
    }

    /// Histogram conserves every sample: bins + underflow + overflow == n.
    #[test]
    fn histogram_conserves_mass(samples in prop::collection::vec(-100.0f64..200.0, 0..300)) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for s in &samples {
            h.add(*s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), samples.len() as u64);
    }

    /// Category fractions sum to 1 over all categories (when nonempty).
    #[test]
    fn category_fractions_sum_to_one(labels in prop::collection::vec(0u8..6, 1..200)) {
        let mut c = CategoryCount::new();
        for l in &labels {
            c.add(&format!("cat{l}"));
        }
        let total: f64 = c.by_name().iter().map(|(name, _)| c.fraction(name)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(c.total(), labels.len() as u64);
    }

    /// Sketch merge is associative bitwise:
    /// merge(a, merge(b, c)) == merge(merge(a, b), c).
    #[test]
    fn sketch_merge_associative((a, b, c) in sample_triples()) {
        let (sa, sb, sc) = (
            QuantileSketch::from_samples(&a),
            QuantileSketch::from_samples(&b),
            QuantileSketch::from_samples(&c),
        );
        let mut left = sa.clone();
        let mut bc = sb.clone();
        bc.merge(&sc);
        left.merge(&bc);
        let mut right = sa;
        right.merge(&sb);
        right.merge(&sc);
        prop_assert_eq!(left, right);
    }

    /// Sketch merge is order-canonical: any split of a sample stream into
    /// 1, 4, or 8 contiguous chunks folds to the identical state as the
    /// serial fold — the invariant the campaign's per-worker accumulators
    /// rely on.
    #[test]
    fn sketch_split_points_match_serial_fold(samples in finite_samples()) {
        let serial = QuantileSketch::from_samples(&samples);
        for parts in [1usize, 4, 8] {
            let chunk = samples.len().div_ceil(parts);
            let mut merged = QuantileSketch::new();
            for piece in samples.chunks(chunk.max(1)) {
                merged.merge(&QuantileSketch::from_samples(piece));
            }
            prop_assert_eq!(&merged, &serial, "split into {} parts", parts);
        }
    }

    /// FixedSum and CoMoments share the same bitwise associativity.
    #[test]
    fn fixed_sum_and_comoments_merge_associative((a, b, c) in sample_triples()) {
        let fold = |xs: &[f64]| {
            let mut s = FixedSum::new();
            let mut m = CoMoments::new();
            for (i, &x) in xs.iter().enumerate() {
                s.add(x);
                m.add(x, (i as f64).sin() * 10.0);
            }
            (s, m)
        };
        let ((sa, ma), (sb, mb), (sc, mc)) = (fold(&a), fold(&b), fold(&c));
        let (mut s_left, mut m_left) = (sa, ma);
        let (mut s_bc, mut m_bc) = (sb, mb);
        s_bc.merge(&sc);
        m_bc.merge(&mc);
        s_left.merge(&s_bc);
        m_left.merge(&m_bc);
        let (mut s_right, mut m_right) = (sa, ma);
        s_right.merge(&sb);
        m_right.merge(&mb);
        s_right.merge(&sc);
        m_right.merge(&mc);
        prop_assert_eq!(s_left, s_right);
        prop_assert_eq!(m_left, m_right);
    }

    /// Retained-type merges agree with rebuilding from the combined
    /// sample multiset, so merging is equivalent to never having split.
    #[test]
    fn retained_merges_match_rebuild((a, b, _) in sample_triples()) {
        let combined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();

        let mut cdf = Cdf::from_samples(&a).unwrap();
        cdf.merge(&Cdf::from_samples(&b).unwrap());
        let mut sorted = combined.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(cdf, Cdf::from_samples(&sorted).unwrap());

        let mut summary = Summary::from_samples(&a).unwrap();
        summary.merge(&Summary::from_samples(&b).unwrap());
        prop_assert_eq!(summary, Summary::from_samples(&sorted).unwrap());

        let build_hist = |xs: &[f64]| {
            let mut h = Histogram::new(-1e6, 1e6, 32);
            xs.iter().for_each(|&x| h.add(x));
            h
        };
        let mut hist = build_hist(&a);
        hist.merge(&build_hist(&b));
        prop_assert_eq!(hist, build_hist(&combined));

        let build_cats = |xs: &[f64]| {
            let mut c = CategoryCount::new();
            xs.iter().for_each(|&x| c.add(if x < 0.0 { "neg" } else { "pos" }));
            c
        };
        let mut cats = build_cats(&a);
        cats.merge(&build_cats(&b));
        prop_assert_eq!(cats, build_cats(&combined));
    }
}
