//! Property-based tests for statistical invariants.

use proptest::prelude::*;
use rv_stats::{linear_fit, pearson, CategoryCount, Cdf, Histogram, Summary};

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    /// A CDF is monotone nondecreasing and ranges over [0, 1].
    #[test]
    fn cdf_monotone(samples in finite_samples()) {
        let cdf = Cdf::from_samples(&samples).unwrap();
        let series = cdf.series_on_grid(cdf.min() - 1.0, cdf.max() + 1.0, 50);
        prop_assert_eq!(series[0].1, 0.0);
        prop_assert_eq!(series.last().unwrap().1, 1.0);
        for w in series.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
    }

    /// quantile and at are approximate inverses: F(quantile(q)) >= q.
    #[test]
    fn cdf_quantile_inverts(samples in finite_samples(), q in 0.0f64..=1.0) {
        let cdf = Cdf::from_samples(&samples).unwrap();
        prop_assert!(cdf.at(cdf.quantile(q)) >= q - 1e-12);
    }

    /// Summary mean lies within [min, max] and matches the CDF mean.
    #[test]
    fn summary_mean_bounded(samples in finite_samples()) {
        let s = Summary::from_samples(&samples).unwrap();
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
        let cdf = Cdf::from_samples(&samples).unwrap();
        prop_assert!((s.mean() - cdf.mean()).abs() < 1e-6);
    }

    /// Quantiles are monotone in q.
    #[test]
    fn summary_quantiles_monotone(samples in finite_samples(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let s = Summary::from_samples(&samples).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(s.quantile(lo) <= s.quantile(hi) + 1e-12);
    }

    /// Pearson correlation, when defined, is within [-1, 1].
    #[test]
    fn pearson_bounded(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    /// r² of the least-squares fit equals pearson² when both are defined.
    #[test]
    fn r_squared_is_pearson_squared(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let (Some(r), Some(fit)) = (pearson(&xs, &ys), linear_fit(&xs, &ys)) {
            prop_assert!((fit.r_squared - r * r).abs() < 1e-6);
        }
    }

    /// Histogram conserves every sample: bins + underflow + overflow == n.
    #[test]
    fn histogram_conserves_mass(samples in prop::collection::vec(-100.0f64..200.0, 0..300)) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for s in &samples {
            h.add(*s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), samples.len() as u64);
    }

    /// Category fractions sum to 1 over all categories (when nonempty).
    #[test]
    fn category_fractions_sum_to_one(labels in prop::collection::vec(0u8..6, 1..200)) {
        let mut c = CategoryCount::new();
        for l in &labels {
            c.add(&format!("cat{l}"));
        }
        let total: f64 = c.by_name().iter().map(|(name, _)| c.fraction(name)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(c.total(), labels.len() as u64);
    }
}
