//! Streaming campaign accumulators: the constant-memory results path.
//!
//! A campaign at full scale simulates millions of sessions; retaining a
//! [`SessionRecord`] per session caps the study at whatever fits in RAM.
//! Every figure, report, and summary the study produces is an *aggregate*
//! — counts, stratified distributions, co-moments — so the executor folds
//! each finished session into a [`CampaignAccumulator`] and drops the
//! record. [`CampaignAggregates`] is the accumulator the study runs on;
//! [`RecordSink`] keeps the old retain-everything path available as an
//! opt-in debug sink.
//!
//! **Merge-order canonicalization.** Per-worker accumulators are merged
//! in worker-slot order after the join, but the guarantee is stronger
//! than that: every piece of state in [`CampaignAggregates`] is built
//! from order-independent primitives (integer counts in `BTreeMap`s,
//! [`QuantileSketch`]/[`FixedSum`]/[`CoMoments`] from `rv-stats`), so
//! *any* fold order and *any* merge order produce bit-identical
//! aggregates. `--jobs 1/4/8` agree byte for byte; `tests/aggregates.rs`
//! and the proptests in `rv-stats` enforce both halves.

use std::collections::BTreeMap;

use rv_rtsp::TransportKind;
use rv_sim::CounterSet;
use rv_stats::{CategoryCount, CoMoments, FixedSum, QuantileSketch};
use rv_tracer::SessionOutcome;

use crate::campaign::SessionRecord;
use crate::error::CampaignError;
use crate::geography::{ServerRegion, UserRegion};
use crate::plan::SessionJob;
use crate::population::{ConnectionClass, PcClass};

/// A fold target for the execute phase: observes each finished session,
/// then merges across workers.
///
/// Implementations must be order-independent: `observe` in any order
/// followed by `merge` in any order must yield identical state, because
/// the threaded executor's self-scheduling makes the fold order
/// nondeterministic. Build state from integer counts and the mergeable
/// `rv-stats` primitives and this holds by construction.
pub trait CampaignAccumulator: Default + Send {
    /// Folds one finished session into the accumulator.
    fn observe(&mut self, job: &SessionJob, record: &SessionRecord);

    /// Absorbs another accumulator (one worker's fold) into this one.
    fn merge(&mut self, other: Self);
}

/// Two accumulators fed side by side — e.g. aggregates plus an opt-in
/// record sink.
impl<A: CampaignAccumulator, B: CampaignAccumulator> CampaignAccumulator for (A, B) {
    fn observe(&mut self, job: &SessionJob, record: &SessionRecord) {
        self.0.observe(job, record);
        self.1.observe(job, record);
    }

    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

/// The retain-everything accumulator: collects `(plan index, record)`
/// pairs and restores canonical plan order at the end. O(sessions)
/// memory — the thing the streaming path exists to avoid — so it is
/// opt-in (`run_campaign_with_records`, `repro --dump-records`).
#[derive(Debug, Default)]
pub struct RecordSink {
    pairs: Vec<(usize, SessionRecord)>,
}

impl CampaignAccumulator for RecordSink {
    fn observe(&mut self, job: &SessionJob, record: &SessionRecord) {
        self.pairs.push((job.index, record.clone()));
    }

    fn merge(&mut self, other: Self) {
        self.pairs.extend(other.pairs);
    }
}

impl RecordSink {
    /// Sorts into canonical plan order and verifies every one of the
    /// plan's `expected` slots was filled exactly once.
    pub fn into_records(mut self, expected: usize) -> Result<Vec<SessionRecord>, CampaignError> {
        self.pairs.sort_by_key(|(index, _)| *index);
        for (slot, (index, _)) in self.pairs.iter().enumerate() {
            if *index != slot {
                return Err(CampaignError::MissingRecord { index: slot });
            }
        }
        if self.pairs.len() != expected {
            return Err(CampaignError::MissingRecord {
                index: self.pairs.len(),
            });
        }
        Ok(self.pairs.into_iter().map(|(_, r)| r).collect())
    }
}

/// Played / degraded / unsuccessful counts for one failure-report group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Attempts in the group.
    pub attempts: u64,
    /// Clean plays.
    pub played: u64,
    /// Plays that limped home (retries, rebuffer storms, TCP fallback).
    pub degraded: u64,
    /// Everything else.
    pub unsuccessful: u64,
}

impl OutcomeTally {
    fn observe(&mut self, r: &SessionRecord) {
        self.attempts += 1;
        if !r.played() {
            self.unsuccessful += 1;
        } else if r.metrics.outcome == SessionOutcome::Played {
            self.played += 1;
        } else {
            self.degraded += 1;
        }
    }

    fn merge(&mut self, other: &OutcomeTally) {
        self.attempts += other.attempts;
        self.played += other.played;
        self.degraded += other.degraded;
        self.unsuccessful += other.unsuccessful;
    }
}

/// Single-pass failure-taxonomy tallies: everything
/// [`FailureReport`](crate::FailureReport) needs, folded as sessions
/// finish instead of re-scanning a record vec afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureTallies {
    /// Count per outcome label.
    pub outcomes: BTreeMap<&'static str, u64>,
    /// Sessions that played only after at least one connection retry.
    pub retried: u64,
    /// Sessions that renegotiated UDP down to TCP mid-stream.
    pub fallbacks: u64,
    /// Per-server tallies, keyed by roster name.
    pub by_server: BTreeMap<&'static str, OutcomeTally>,
    /// Per-server-country tallies, keyed by the country's debug name.
    pub by_country: BTreeMap<String, OutcomeTally>,
    /// Per-negotiated-transport tallies ("udp"/"tcp"); unavailable
    /// attempts never negotiated a transport and are excluded here.
    pub by_transport: BTreeMap<&'static str, OutcomeTally>,
}

impl FailureTallies {
    fn observe(&mut self, r: &SessionRecord) {
        *self.outcomes.entry(r.metrics.outcome.label()).or_insert(0) += 1;
        if let SessionOutcome::PlayedDegraded {
            retries, fell_back, ..
        } = r.metrics.outcome
        {
            self.retried += u64::from(retries > 0);
            self.fallbacks += u64::from(fell_back);
        }
        self.by_server.entry(r.server_name).or_default().observe(r);
        self.by_country
            .entry(format!("{:?}", r.server_country))
            .or_default()
            .observe(r);
        if r.available {
            let proto = match r.metrics.protocol {
                TransportKind::Udp => "udp",
                TransportKind::Tcp => "tcp",
            };
            self.by_transport.entry(proto).or_default().observe(r);
        }
    }

    fn merge(&mut self, other: Self) {
        for (label, n) in other.outcomes {
            *self.outcomes.entry(label).or_insert(0) += n;
        }
        self.retried += other.retried;
        self.fallbacks += other.fallbacks;
        for (k, v) in other.by_server {
            self.by_server.entry(k).or_default().merge(&v);
        }
        for (k, v) in other.by_country {
            self.by_country.entry(k).or_default().merge(&v);
        }
        for (k, v) in other.by_transport {
            self.by_transport.entry(k).or_default().merge(&v);
        }
    }
}

/// Figure 28's state: bandwidth-vs-rating co-moments, the high-bandwidth
/// corner counts the paper highlights, and fixed bandwidth bins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualityMoments {
    /// Bandwidth/rating co-moments over rated sessions.
    pub moments: CoMoments,
    /// Rated sessions above 250 kbps.
    pub high_bw: u64,
    /// ...of which rated ≤ 2 (the paper reports their absence).
    pub high_bw_low_rating: u64,
    /// Per-bin `(count, rating sum)` for [`BANDWIDTH_BINS`].
    pub bins: [(u64, FixedSum); BANDWIDTH_BINS.len()],
}

/// Figure 28's fixed bandwidth bins, kbps.
pub const BANDWIDTH_BINS: [(f64, f64); 5] = [
    (0.0, 50.0),
    (50.0, 100.0),
    (100.0, 200.0),
    (200.0, 350.0),
    (350.0, 600.0),
];

impl QualityMoments {
    fn observe(&mut self, bandwidth_kbps: f64, rating: u8) {
        let rating = f64::from(rating);
        self.moments.add(bandwidth_kbps, rating);
        if bandwidth_kbps > 250.0 {
            self.high_bw += 1;
            if rating <= 2.0 {
                self.high_bw_low_rating += 1;
            }
        }
        for (bin, (lo, hi)) in self.bins.iter_mut().zip(BANDWIDTH_BINS) {
            if bandwidth_kbps >= lo && bandwidth_kbps < hi {
                bin.0 += 1;
                bin.1.add(rating);
            }
        }
    }

    fn merge(&mut self, other: &QualityMoments) {
        self.moments.merge(&other.moments);
        self.high_bw += other.high_bw;
        self.high_bw_low_rating += other.high_bw_low_rating;
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            mine.0 += theirs.0;
            mine.1.merge(&theirs.1);
        }
    }
}

/// Merges a map of sketches per stratum, key by key.
fn merge_sketch_map<K: Ord>(
    into: &mut BTreeMap<K, QuantileSketch>,
    from: BTreeMap<K, QuantileSketch>,
) {
    for (k, v) in from {
        match into.get_mut(&k) {
            Some(s) => s.merge(&v),
            None => {
                into.insert(k, v);
            }
        }
    }
}

fn sketch_add<K: Ord>(map: &mut BTreeMap<K, QuantileSketch>, key: K, x: f64) {
    map.entry(key).or_default().add(x);
}

/// Everything the study's figures, failure report, and summary need,
/// in bounded memory: the streaming replacement for `Vec<SessionRecord>`.
///
/// Composition tallies (per-user counts, category counts, the failure
/// taxonomy) are exact integers; continuous distributions (frame rate,
/// bandwidth, jitter, ratings) are [`QuantileSketch`]es with exact
/// count/mean/extrema and ~1 % relative quantile accuracy. State size is
/// O(users + strata × sketch buckets), independent of session count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignAggregates {
    /// Total clip-play attempts.
    pub total_attempts: u64,
    /// Attempts that found the clip unavailable.
    pub unavailable: u64,
    /// Sessions that streamed to a played outcome (incl. degraded).
    pub played: u64,
    /// Sessions carrying a rating.
    pub rated: u64,
    /// Sessions that ended `Blocked` (firewalled mid-study).
    pub blocked: u64,
    /// Total simulated time across sessions, exact integer microseconds.
    pub sim_time_micros: u128,
    /// Campaign-wide event counter totals: element-wise sums of every
    /// session's [`CounterSet`], so the merge law matches the rest of the
    /// aggregates and the totals are worker-count-independent.
    pub counters: CounterSet,

    /// Attempts per user (Figure 5). One entry per participant.
    pub plays_per_user: BTreeMap<u32, u64>,
    /// Rated clips per user (Figure 6). Users who rated nothing are
    /// present in `plays_per_user` and absent here.
    pub rated_per_user: BTreeMap<u32, u64>,
    /// Attempts per user country (Figure 7).
    pub user_countries: CategoryCount,
    /// Attempts per server country (Figure 8).
    pub server_countries: CategoryCount,
    /// Attempts per US state (Figure 9).
    pub us_states: CategoryCount,
    /// Attempts per server (Figure 10 denominator).
    pub attempts_by_server: CategoryCount,
    /// Unavailable attempts per server (Figure 10 numerator).
    pub unavailable_by_server: CategoryCount,
    /// Negotiated transport of played sessions, "UDP"/"TCP" (Figure 16).
    pub protocol_played: CategoryCount,

    /// Frame rate of played sessions (Figure 11).
    pub fps: QuantileSketch,
    /// Frame rate by connection class (Figure 12).
    pub fps_by_connection: BTreeMap<ConnectionClass, QuantileSketch>,
    /// Frame rate by server region (Figure 14).
    pub fps_by_server_region: BTreeMap<ServerRegion, QuantileSketch>,
    /// Frame rate by user region (Figure 15).
    pub fps_by_user_region: BTreeMap<UserRegion, QuantileSketch>,
    /// Frame rate by transport (Figure 17), keyed "TCP"/"UDP".
    pub fps_by_protocol: BTreeMap<&'static str, QuantileSketch>,
    /// Frame rate by PC class (Figure 19).
    pub fps_by_pc: BTreeMap<PcClass, QuantileSketch>,

    /// Bandwidth (kbps) by connection class (Figure 13).
    pub bw_by_connection: BTreeMap<ConnectionClass, QuantileSketch>,
    /// Bandwidth (kbps) by transport (Figure 18).
    pub bw_by_protocol: BTreeMap<&'static str, QuantileSketch>,

    /// Jitter (ms) of played sessions that measured one (Figure 20).
    pub jitter: QuantileSketch,
    /// Jitter by connection class (Figure 21).
    pub jitter_by_connection: BTreeMap<ConnectionClass, QuantileSketch>,
    /// Jitter by server region (Figure 22).
    pub jitter_by_server_region: BTreeMap<ServerRegion, QuantileSketch>,
    /// Jitter by user region (Figure 23).
    pub jitter_by_user_region: BTreeMap<UserRegion, QuantileSketch>,
    /// Jitter by transport (Figure 24).
    pub jitter_by_protocol: BTreeMap<&'static str, QuantileSketch>,
    /// Jitter by observed-bandwidth bucket (Figure 25): 0 = <10 kbps,
    /// 1 = 10–100, 2 = >100.
    pub jitter_by_bw_bucket: BTreeMap<u8, QuantileSketch>,

    /// Ratings of rated sessions (Figure 26).
    pub ratings: QuantileSketch,
    /// Ratings by connection class (Figure 27).
    pub ratings_by_connection: BTreeMap<ConnectionClass, QuantileSketch>,
    /// Figure 28's bandwidth-vs-rating state.
    pub quality: QualityMoments,

    /// Played sessions per serving replica (gateway tier). The classic
    /// single-server study puts everything under replica 0.
    pub replica_sessions: BTreeMap<u8, u64>,
    /// Failover recovery time (ms): first media packet after a
    /// crash-driven gateway redirect. Empty without faulted clusters.
    pub failover_recovery: QuantileSketch,

    /// Single-pass failure-report tallies.
    pub failures: FailureTallies,
}

impl CampaignAggregates {
    /// Folds one session record. Public so the retained-record path can
    /// rebuild aggregates for equivalence testing; the executor calls it
    /// through [`CampaignAccumulator::observe`].
    pub fn observe_record(&mut self, r: &SessionRecord) {
        self.total_attempts += 1;
        *self.plays_per_user.entry(r.user_id).or_insert(0) += 1;
        self.user_countries.add(r.user_country.name());
        self.server_countries.add(r.server_country.name());
        if let Some(state) = r.user_state {
            self.us_states.add(state);
        }
        self.attempts_by_server.add(r.server_name);
        if !r.available {
            self.unavailable += 1;
            self.unavailable_by_server.add(r.server_name);
        }
        if r.metrics.outcome == SessionOutcome::Blocked {
            self.blocked += 1;
        }
        self.sim_time_micros += u128::from(r.metrics.session_time.as_micros());
        self.counters.merge(&r.counters);
        self.failures.observe(r);

        if !r.played() {
            return;
        }
        self.played += 1;
        let m = &r.metrics;
        *self.replica_sessions.entry(m.served_replica).or_insert(0) += 1;
        if let Some(rec) = m.failover_recovery {
            self.failover_recovery.add(rec.as_micros() as f64 / 1000.0);
        }
        let proto = match m.protocol {
            TransportKind::Udp => "UDP",
            TransportKind::Tcp => "TCP",
        };
        self.protocol_played.add(proto);

        self.fps.add(m.frame_rate);
        sketch_add(&mut self.fps_by_connection, r.connection, m.frame_rate);
        sketch_add(
            &mut self.fps_by_server_region,
            r.server_region,
            m.frame_rate,
        );
        sketch_add(&mut self.fps_by_user_region, r.user_region, m.frame_rate);
        sketch_add(&mut self.fps_by_protocol, proto, m.frame_rate);
        sketch_add(&mut self.fps_by_pc, r.pc, m.frame_rate);

        sketch_add(&mut self.bw_by_connection, r.connection, m.bandwidth_kbps);
        sketch_add(&mut self.bw_by_protocol, proto, m.bandwidth_kbps);

        if let Some(jitter) = m.jitter_ms {
            self.jitter.add(jitter);
            sketch_add(&mut self.jitter_by_connection, r.connection, jitter);
            sketch_add(&mut self.jitter_by_server_region, r.server_region, jitter);
            sketch_add(&mut self.jitter_by_user_region, r.user_region, jitter);
            sketch_add(&mut self.jitter_by_protocol, proto, jitter);
            sketch_add(
                &mut self.jitter_by_bw_bucket,
                bandwidth_bucket(m.bandwidth_kbps),
                jitter,
            );
        }

        if let Some(rating) = r.rating {
            self.rated += 1;
            *self.rated_per_user.entry(r.user_id).or_insert(0) += 1;
            self.ratings.add(f64::from(rating));
            sketch_add(
                &mut self.ratings_by_connection,
                r.connection,
                f64::from(rating),
            );
            self.quality.observe(m.bandwidth_kbps, rating);
        }
    }

    /// Rebuilds aggregates from a retained record set — the reference
    /// the streaming path is tested against.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a SessionRecord>) -> Self {
        let mut agg = CampaignAggregates::default();
        for r in records {
            agg.observe_record(r);
        }
        agg
    }

    /// Rated clips for `user` (zero when they rated nothing).
    pub fn rated_by(&self, user: u32) -> u64 {
        self.rated_per_user.get(&user).copied().unwrap_or(0)
    }

    /// Total simulated seconds across all sessions.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_time_micros as f64 / 1e6
    }
}

/// Figure 25's observed-bandwidth bucket of a played session.
pub fn bandwidth_bucket(kbps: f64) -> u8 {
    if kbps < 10.0 {
        0
    } else if kbps <= 100.0 {
        1
    } else {
        2
    }
}

impl CampaignAccumulator for CampaignAggregates {
    fn observe(&mut self, _job: &SessionJob, record: &SessionRecord) {
        self.observe_record(record);
    }

    fn merge(&mut self, other: Self) {
        self.total_attempts += other.total_attempts;
        self.unavailable += other.unavailable;
        self.played += other.played;
        self.rated += other.rated;
        self.blocked += other.blocked;
        self.sim_time_micros += other.sim_time_micros;
        self.counters.merge(&other.counters);

        for (user, n) in other.plays_per_user {
            *self.plays_per_user.entry(user).or_insert(0) += n;
        }
        for (user, n) in other.rated_per_user {
            *self.rated_per_user.entry(user).or_insert(0) += n;
        }
        self.user_countries.merge(&other.user_countries);
        self.server_countries.merge(&other.server_countries);
        self.us_states.merge(&other.us_states);
        self.attempts_by_server.merge(&other.attempts_by_server);
        self.unavailable_by_server
            .merge(&other.unavailable_by_server);
        self.protocol_played.merge(&other.protocol_played);

        self.fps.merge(&other.fps);
        merge_sketch_map(&mut self.fps_by_connection, other.fps_by_connection);
        merge_sketch_map(&mut self.fps_by_server_region, other.fps_by_server_region);
        merge_sketch_map(&mut self.fps_by_user_region, other.fps_by_user_region);
        merge_sketch_map(&mut self.fps_by_protocol, other.fps_by_protocol);
        merge_sketch_map(&mut self.fps_by_pc, other.fps_by_pc);

        merge_sketch_map(&mut self.bw_by_connection, other.bw_by_connection);
        merge_sketch_map(&mut self.bw_by_protocol, other.bw_by_protocol);

        self.jitter.merge(&other.jitter);
        merge_sketch_map(&mut self.jitter_by_connection, other.jitter_by_connection);
        merge_sketch_map(
            &mut self.jitter_by_server_region,
            other.jitter_by_server_region,
        );
        merge_sketch_map(&mut self.jitter_by_user_region, other.jitter_by_user_region);
        merge_sketch_map(&mut self.jitter_by_protocol, other.jitter_by_protocol);
        merge_sketch_map(&mut self.jitter_by_bw_bucket, other.jitter_by_bw_bucket);

        self.ratings.merge(&other.ratings);
        merge_sketch_map(&mut self.ratings_by_connection, other.ratings_by_connection);
        self.quality.merge(&other.quality);

        for (replica, n) in other.replica_sessions {
            *self.replica_sessions.entry(replica).or_insert(0) += n;
        }
        self.failover_recovery.merge(&other.failover_recovery);

        self.failures.merge(other.failures);
    }
}
