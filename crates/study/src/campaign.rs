//! The campaign runner: replays the June 2001 study end to end.
//!
//! Every participant walks the playlist, playing their Figure-5 number of
//! clips; each play checks clip availability (Figure 10), builds a session
//! world, streams for the watch limit, and records a [`SessionRecord`].
//! The first `clips_to_rate` successfully played clips also receive a
//! 0–10 rating from the user's rating profile.

use rv_sim::{SimDuration, SimRng, SimTime};
use rv_tracer::{rate, SessionMetrics, SessionOutcome};

use crate::geography::{Country, ServerRegion, UserRegion};
use crate::playlist::{build_playlist, PlaylistEntry};
use crate::population::{build_population, ConnectionClass, PcClass, UserProfile};
use crate::servers::{server_roster, ServerSite};
use crate::worldbuild::build_session_world;

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct StudyParams {
    /// Master seed: same seed, same study, bit for bit.
    pub seed: u64,
    /// Fraction of each user's clip count to actually play, `(0, 1]`.
    /// 1.0 reproduces the paper's ~2,900 sessions (minutes of CPU);
    /// 0.05–0.2 suits tests and quick runs.
    pub scale: f64,
    /// Watch limit per clip (RealTracer default: 1 minute).
    pub watch_limit: SimDuration,
    /// Wall-clock budget per session before the harness gives up.
    pub session_deadline: SimTime,
}

impl Default for StudyParams {
    fn default() -> Self {
        StudyParams {
            seed: 0x2001_0604, // June 4, 2001: the study's first day
            scale: 1.0,
            watch_limit: SimDuration::from_secs(60),
            session_deadline: SimTime::from_secs(150),
        }
    }
}

impl StudyParams {
    /// A small configuration for tests and examples.
    pub fn quick() -> Self {
        StudyParams {
            scale: 0.05,
            ..StudyParams::default()
        }
    }
}

/// One clip-play attempt: the study's unit of data.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// Participant id.
    pub user_id: u32,
    /// User's country.
    pub user_country: Country,
    /// User's US state, if applicable.
    pub user_state: Option<&'static str>,
    /// User's figure region.
    pub user_region: UserRegion,
    /// User's connection class.
    pub connection: ConnectionClass,
    /// User's PC class.
    pub pc: PcClass,
    /// Server name (Figure 10 labels).
    pub server_name: &'static str,
    /// Server country.
    pub server_country: Country,
    /// Server figure region.
    pub server_region: ServerRegion,
    /// Clip name.
    pub clip_name: String,
    /// `false` when the clip was unavailable at request time.
    pub available: bool,
    /// Measured session statistics.
    pub metrics: SessionMetrics,
    /// The user's 0–10 rating, when they rated this clip.
    pub rating: Option<u8>,
}

impl SessionRecord {
    /// `true` for records that played and produced measurements (the set
    /// the paper's Figures 11–25 are computed over).
    pub fn played(&self) -> bool {
        self.available && self.metrics.outcome == SessionOutcome::Played
    }
}

/// The complete study output.
#[derive(Debug, Clone)]
pub struct StudyData {
    /// Every session attempt, in play order.
    pub records: Vec<SessionRecord>,
    /// Number of volunteers excluded for RTSP-blocking firewalls.
    pub excluded_users: u32,
    /// Number of analyzable participants.
    pub participants: u32,
}

impl StudyData {
    /// Records that played successfully.
    pub fn played(&self) -> impl Iterator<Item = &SessionRecord> {
        self.records.iter().filter(|r| r.played())
    }

    /// Records carrying a rating.
    pub fn rated(&self) -> impl Iterator<Item = &SessionRecord> {
        self.records.iter().filter(|r| r.rating.is_some())
    }
}

/// Runs the whole campaign. Deterministic in `params.seed`.
pub fn run_campaign(params: StudyParams) -> StudyData {
    let mut rng = SimRng::seed_from_u64(params.seed);
    let roster = server_roster();
    let population = build_population(&mut rng.fork(1), params.scale);
    let playlist = build_playlist(&roster, &mut rng.fork(2));
    let mut availability_rng = rng.fork(3);

    let mut records = Vec::new();
    for user in &population.participants {
        run_user(
            &params,
            user,
            &roster,
            &playlist,
            &mut availability_rng,
            &mut records,
        );
    }
    StudyData {
        records,
        excluded_users: population.excluded.len() as u32,
        participants: population.participants.len() as u32,
    }
}

fn run_user(
    params: &StudyParams,
    user: &UserProfile,
    roster: &[ServerSite],
    playlist: &[PlaylistEntry],
    availability_rng: &mut SimRng,
    records: &mut Vec<SessionRecord>,
) {
    let mut rated = 0;
    // Each user starts at a different playlist offset. RealTracer itself
    // always started at the top, but rotating keeps scaled-down runs
    // (scale < 1) representative of every server; at full scale the
    // difference washes out over 98-clip cycles.
    let offset = (user.id as usize * 7) % playlist.len();
    for (clip_idx, entry) in playlist
        .iter()
        .cycle()
        .skip(offset)
        .take(user.clips_to_play as usize)
        .enumerate()
    {
        let site = &roster[entry.server];
        let available = !site.clip_unavailable(availability_rng);
        let session_seed = params
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(user.id) << 20)
            .wrapping_add(clip_idx as u64);

        let (metrics, rating) = if available {
            let mut world = build_session_world(
                user,
                site,
                &entry.clip,
                params.watch_limit,
                session_seed,
            );
            let metrics = world.run(params.session_deadline);
            let rating = if metrics.outcome == SessionOutcome::Played
                && rated < user.clips_to_rate
            {
                rated += 1;
                let mut rating_rng = SimRng::seed_from_u64(session_seed ^ 0x7A7E_5EED);
                Some(rate(&metrics, &user.rater, &mut rating_rng))
            } else {
                None
            };
            (metrics, rating)
        } else {
            (
                SessionMetrics::failed(SessionOutcome::Unavailable, rv_rtsp::TransportKind::Tcp),
                None,
            )
        };

        records.push(SessionRecord {
            user_id: user.id,
            user_country: user.country,
            user_state: user.state,
            user_region: user.region(),
            connection: user.connection,
            pc: user.pc,
            server_name: site.name,
            server_country: site.country,
            server_region: site.region(),
            clip_name: entry.clip.name.clone(),
            available,
            metrics,
            rating,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_data() -> StudyData {
        run_campaign(StudyParams {
            scale: 0.04,
            ..StudyParams::default()
        })
    }

    #[test]
    fn campaign_produces_records_for_every_user() {
        let data = quick_data();
        assert_eq!(data.participants, 63);
        assert!(data.excluded_users > 0);
        let users: std::collections::BTreeSet<u32> =
            data.records.iter().map(|r| r.user_id).collect();
        assert_eq!(users.len(), 63);
    }

    #[test]
    fn most_sessions_play_some_are_unavailable() {
        let data = quick_data();
        let total = data.records.len();
        let played = data.played().count();
        let unavailable = data.records.iter().filter(|r| !r.available).count();
        assert!(played * 10 >= total * 6, "played {played}/{total}");
        // ~10 % unavailability.
        let frac = unavailable as f64 / total as f64;
        assert!((0.02..0.25).contains(&frac), "unavailable fraction {frac}");
    }

    #[test]
    fn ratings_present_and_in_range() {
        let data = quick_data();
        let rated: Vec<u8> = data.rated().map(|r| r.rating.unwrap()).collect();
        assert!(!rated.is_empty());
        assert!(rated.iter().all(|r| *r <= 10));
    }

    #[test]
    fn both_protocols_appear(){
        let data = quick_data();
        let udp = data
            .played()
            .filter(|r| r.metrics.protocol == rv_rtsp::TransportKind::Udp)
            .count();
        let tcp = data
            .played()
            .filter(|r| r.metrics.protocol == rv_rtsp::TransportKind::Tcp)
            .count();
        assert!(udp > 0 && tcp > 0, "udp {udp} tcp {tcp}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_data();
        let b = quick_data();
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.rating, y.rating);
        }
    }
}
