//! The campaign runner: replays the June 2001 study end to end.
//!
//! Running a campaign is two phases. The **plan phase**
//! ([`plan_campaign`](crate::plan_campaign)) is a pure serial pass that
//! fixes every clip-play attempt — strata, availability verdict (Figure
//! 10), rating slot, session seed — before any packet is simulated. The
//! **execute phase** ([`CampaignExecutor`](crate::CampaignExecutor)) runs
//! those jobs on one thread or many and folds each finished session into
//! streaming [`CampaignAggregates`] — the constant-memory results path.
//! Output is a pure function of [`StudyParams::seed`] and
//! [`StudyParams::scale`]; the worker count changes wall time only, never
//! a byte of the data.
//!
//! [`run_campaign`] keeps only aggregates (memory independent of session
//! count); [`run_campaign_with_records`] additionally retains every
//! [`SessionRecord`] for dumps, CSV export, and equivalence tests — an
//! O(sessions) cost the full-scale campaign cannot afford.

use std::sync::Arc;

use rv_sim::{CounterSet, FaultScenario, SimDuration, SimTime};
use rv_tracer::SessionMetrics;

use crate::accumulate::{CampaignAccumulator, CampaignAggregates, RecordSink};
use crate::error::CampaignError;
use crate::executor::{CampaignExecutor, Fold, SerialExecutor, ThreadedExecutor, WorkerProfile};
use crate::geography::{Country, ServerRegion, UserRegion};
use crate::plan::{plan_campaign, CampaignPlan};
use crate::population::{ConnectionClass, PcClass};

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct StudyParams {
    /// Master seed: same seed, same study, bit for bit.
    pub seed: u64,
    /// Fraction of each user's clip count to actually play. `1.0`
    /// reproduces the paper's ~2,900 sessions; `0.05–0.2` suits tests
    /// and quick runs; integers above 1 replicate the population ×N
    /// with identical strata proportions (`--scale 100` ≈ 290k
    /// sessions) for scaling studies.
    pub scale: f64,
    /// Watch limit per clip (RealTracer default: 1 minute).
    pub watch_limit: SimDuration,
    /// Wall-clock budget per session before the harness gives up.
    pub session_deadline: SimTime,
    /// Worker threads for the execute phase. 1 runs serially; N fans
    /// sessions across N threads. Never changes the output, only the
    /// wall time.
    pub jobs: usize,
    /// Fault-injection scenario. [`FaultScenario::off`] (the default)
    /// generates empty fault plans and reproduces the fault-free
    /// campaign bit for bit.
    pub faults: FaultScenario,
    /// Server replicas per site. 1 (the default) is the single-server
    /// study, bit for bit; above 1 every session gets a gateway-routed
    /// replica cluster and crash failover.
    pub replicas: u8,
    /// Gateway replica-selection policy. Only consulted when
    /// `replicas > 1`.
    pub gateway: crate::gateway::GatewayPolicy,
    /// Per-replica session capacity for admission control; 0 (the
    /// default) admits everything. Only consulted when `replicas > 1`.
    pub capacity: u32,
}

impl Default for StudyParams {
    fn default() -> Self {
        StudyParams {
            seed: 0x2001_0604, // June 4, 2001: the study's first day
            scale: 1.0,
            watch_limit: SimDuration::from_secs(60),
            session_deadline: SimTime::from_secs(150),
            jobs: 1,
            faults: FaultScenario::off(),
            replicas: 1,
            gateway: crate::gateway::GatewayPolicy::Sticky,
            capacity: 0,
        }
    }
}

impl StudyParams {
    /// A small configuration for tests and examples.
    pub fn quick() -> Self {
        StudyParams {
            scale: 0.05,
            ..StudyParams::default()
        }
    }
}

/// One clip-play attempt: the study's unit of data.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// Participant id.
    pub user_id: u32,
    /// User's country.
    pub user_country: Country,
    /// User's US state, if applicable.
    pub user_state: Option<&'static str>,
    /// User's figure region.
    pub user_region: UserRegion,
    /// User's connection class.
    pub connection: ConnectionClass,
    /// User's PC class.
    pub pc: PcClass,
    /// Server name (Figure 10 labels).
    pub server_name: &'static str,
    /// Server country.
    pub server_country: Country,
    /// Server figure region.
    pub server_region: ServerRegion,
    /// Clip name, interned: records share one allocation per playlist
    /// slot instead of cloning a `String` per session.
    pub clip_name: Arc<str>,
    /// `false` when the clip was unavailable at request time.
    pub available: bool,
    /// Measured session statistics.
    pub metrics: SessionMetrics,
    /// Deterministic event counters snapshotted from the session world
    /// (all-zero for unavailable attempts, which simulate nothing).
    pub counters: CounterSet,
    /// The user's 0–10 rating, when they rated this clip.
    pub rating: Option<u8>,
}

impl SessionRecord {
    /// `true` for records that played and produced measurements (the set
    /// the paper's Figures 11–25 are computed over). Degraded sessions —
    /// retries, rebuffer storms, UDP→TCP fallback — still count: they
    /// streamed and were measured, exactly as RealTracer logged them.
    pub fn played(&self) -> bool {
        self.available && self.metrics.outcome.is_played()
    }
}

/// What a campaign run did and how fast: printed by the binaries so
/// executor speedups are observable.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Jobs the plan phase fixed.
    pub jobs_planned: usize,
    /// Sessions that streamed to a `Played` outcome.
    pub played: usize,
    /// Attempts that found the clip unavailable (Figure 10).
    pub unavailable: usize,
    /// Worker threads the executor used.
    pub workers: usize,
    /// Jobs each worker ran.
    pub per_worker: Vec<usize>,
    /// Execute-phase wall time.
    pub wall: std::time::Duration,
    /// Plan-phase wall time (pure serial pass, before any simulation).
    pub plan_wall: std::time::Duration,
    /// Per-worker execute-phase profile: claims, busy, and wall time.
    /// Timing varies run to run; only the aggregates are deterministic.
    pub profiles: Vec<WorkerProfile>,
    /// Campaign-wide counter totals, merged across all sessions. Unlike
    /// the timings these are deterministic in seed/scale/faults and
    /// identical across worker counts.
    pub counters: CounterSet,
    /// Total simulated time across all sessions, in seconds: the sum of
    /// every record's `session_time`. With `wall`, this yields the
    /// simulator's time-compression ratio.
    pub sim_seconds: f64,
}

impl CampaignSummary {
    /// Sessions simulated per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.jobs_planned as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Simulated seconds per wall-clock second (time compression).
    pub fn sim_seconds_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_seconds / secs
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "campaign: {} jobs planned, {} played, {} unavailable | {} worker{} {:?} | {:.2?} wall, {:.1} sessions/sec, {:.0}x real time",
            self.jobs_planned,
            self.played,
            self.unavailable,
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.per_worker,
            self.wall,
            self.sessions_per_sec(),
            self.sim_seconds_per_sec(),
        )
    }
}

/// The complete study output.
///
/// `aggregates` is always present and is everything the figures, the
/// failure report, and the summary need. `records` is `Some` only when
/// the campaign was run through [`run_campaign_with_records`] — the
/// O(sessions)-memory debug path.
#[derive(Debug, Clone)]
pub struct StudyData {
    /// Streaming aggregates over every session attempt.
    pub aggregates: CampaignAggregates,
    /// Every session attempt in canonical plan order, when retained.
    pub records: Option<Vec<SessionRecord>>,
    /// Number of volunteers excluded for RTSP-blocking firewalls.
    pub excluded_users: u32,
    /// Number of analyzable participants.
    pub participants: u32,
    /// Run accounting. Wall time and worker split vary run to run; the
    /// aggregates never do.
    pub summary: CampaignSummary,
}

impl StudyData {
    /// The retained records, in canonical plan order.
    ///
    /// # Panics
    /// When the campaign ran the streaming path ([`run_campaign`]);
    /// use [`run_campaign_with_records`] for record-level access.
    pub fn records(&self) -> &[SessionRecord] {
        self.records
            .as_deref()
            .expect("records not retained: use run_campaign_with_records")
    }

    /// Retained records that played successfully. Panics like
    /// [`StudyData::records`].
    pub fn played(&self) -> impl Iterator<Item = &SessionRecord> {
        self.records().iter().filter(|r| r.played())
    }

    /// Retained records carrying a rating. Panics like
    /// [`StudyData::records`].
    pub fn rated(&self) -> impl Iterator<Item = &SessionRecord> {
        self.records().iter().filter(|r| r.rating.is_some())
    }

    /// The failure-taxonomy report, built from the streaming tallies in
    /// one pass — available on both paths.
    pub fn failure_report(&self) -> crate::report::FailureReport {
        crate::report::FailureReport::from_tallies(&self.aggregates.failures)
    }
}

/// Plans and folds a campaign into accumulator `A`, timing the execute
/// phase. The shared engine under both public entry points.
fn run_fold<A: CampaignAccumulator>(
    params: StudyParams,
) -> Result<(CampaignPlan, Fold<A>, PhaseWalls), CampaignError> {
    let plan_start = std::time::Instant::now();
    let plan = plan_campaign(params);
    let plan_wall = plan_start.elapsed();
    let start = std::time::Instant::now();
    let fold = if params.jobs <= 1 {
        SerialExecutor.fold(&plan)?
    } else {
        ThreadedExecutor::new(params.jobs).fold(&plan)?
    };
    let wall = start.elapsed();
    Ok((plan, fold, PhaseWalls { plan_wall, wall }))
}

/// Wall-clock spans of the two in-crate campaign phases.
struct PhaseWalls {
    plan_wall: std::time::Duration,
    wall: std::time::Duration,
}

fn assemble(
    plan: &CampaignPlan,
    aggregates: CampaignAggregates,
    per_worker: Vec<usize>,
    profiles: Vec<WorkerProfile>,
    walls: PhaseWalls,
    records: Option<Vec<SessionRecord>>,
) -> StudyData {
    let summary = CampaignSummary {
        jobs_planned: plan.total_jobs(),
        played: aggregates.played as usize,
        unavailable: aggregates.unavailable as usize,
        workers: plan.params.jobs.max(1),
        per_worker,
        wall: walls.wall,
        plan_wall: walls.plan_wall,
        profiles,
        counters: aggregates.counters,
        sim_seconds: aggregates.sim_seconds(),
    };
    StudyData {
        aggregates,
        records,
        excluded_users: plan.population.excluded.len() as u32,
        participants: plan.population.participants.len() as u32,
        summary,
    }
}

/// Plans and executes the whole campaign on the streaming results path:
/// sessions are folded into [`CampaignAggregates`] as they finish and
/// records are dropped, so memory is independent of session count. The
/// aggregates are deterministic in `params.seed`, `params.scale`, and
/// `params.faults`; `params.jobs` picks the executor. Fails with a
/// [`CampaignError`] instead of panicking when the execute phase cannot
/// finish (a worker died mid-campaign).
pub fn run_campaign(params: StudyParams) -> Result<StudyData, CampaignError> {
    let (plan, fold, walls) = run_fold::<CampaignAggregates>(params)?;
    Ok(assemble(
        &plan,
        fold.accumulator,
        fold.worker_loads,
        fold.worker_profiles,
        walls,
        None,
    ))
}

/// Like [`run_campaign`], but additionally retains every
/// [`SessionRecord`] in canonical plan order — for dumps, CSV export,
/// and aggregate-equivalence tests. O(sessions) memory.
pub fn run_campaign_with_records(params: StudyParams) -> Result<StudyData, CampaignError> {
    let (plan, fold, walls) = run_fold::<(CampaignAggregates, RecordSink)>(params)?;
    let (aggregates, sink) = fold.accumulator;
    let records = sink.into_records(plan.total_jobs())?;
    Ok(assemble(
        &plan,
        aggregates,
        fold.worker_loads,
        fold.worker_profiles,
        walls,
        Some(records),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_data() -> StudyData {
        run_campaign_with_records(StudyParams {
            scale: 0.04,
            ..StudyParams::default()
        })
        .expect("quick campaign runs")
    }

    #[test]
    fn campaign_produces_records_for_every_user() {
        let data = quick_data();
        assert_eq!(data.participants, 63);
        assert!(data.excluded_users > 0);
        let users: std::collections::BTreeSet<u32> =
            data.records().iter().map(|r| r.user_id).collect();
        assert_eq!(users.len(), 63);
        // The streaming aggregates see the same users.
        assert_eq!(data.aggregates.plays_per_user.len(), 63);
    }

    #[test]
    fn most_sessions_play_some_are_unavailable() {
        let data = quick_data();
        let total = data.records().len();
        let played = data.played().count();
        let unavailable = data.records().iter().filter(|r| !r.available).count();
        assert!(played * 10 >= total * 6, "played {played}/{total}");
        // ~10 % unavailability.
        let frac = unavailable as f64 / total as f64;
        assert!((0.02..0.25).contains(&frac), "unavailable fraction {frac}");
        assert_eq!(data.aggregates.total_attempts as usize, total);
        assert_eq!(data.aggregates.unavailable as usize, unavailable);
    }

    #[test]
    fn ratings_present_and_in_range() {
        let data = quick_data();
        let rated: Vec<u8> = data.rated().map(|r| r.rating.unwrap()).collect();
        assert!(!rated.is_empty());
        assert!(rated.iter().all(|r| *r <= 10));
        assert_eq!(data.aggregates.rated as usize, rated.len());
    }

    #[test]
    fn both_protocols_appear() {
        let data = quick_data();
        let udp = data
            .played()
            .filter(|r| r.metrics.protocol == rv_rtsp::TransportKind::Udp)
            .count();
        let tcp = data
            .played()
            .filter(|r| r.metrics.protocol == rv_rtsp::TransportKind::Tcp)
            .count();
        assert!(udp > 0 && tcp > 0, "udp {udp} tcp {tcp}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_data();
        let b = quick_data();
        assert_eq!(a.records().len(), b.records().len());
        for (x, y) in a.records().iter().zip(b.records()) {
            assert_eq!(x.metrics, y.metrics);
            assert_eq!(x.rating, y.rating);
        }
        assert_eq!(a.aggregates, b.aggregates);
    }

    #[test]
    fn streaming_path_retains_no_records() {
        let data = run_campaign(StudyParams {
            scale: 0.04,
            ..StudyParams::default()
        })
        .unwrap();
        assert!(data.records.is_none());
        // The aggregates still carry the study.
        assert!(data.aggregates.played > 0);
        assert!(data.failure_report().attempts > 0);
    }

    #[test]
    fn summary_accounts_for_every_job() {
        let data = quick_data();
        let s = &data.summary;
        assert_eq!(s.jobs_planned, data.records().len());
        assert_eq!(s.played, data.played().count());
        assert_eq!(s.per_worker.iter().sum::<usize>(), s.jobs_planned);
        assert_eq!(s.workers, 1);
        assert!(s.sessions_per_sec() > 0.0);
        assert!(s.sim_seconds > 0.0);
        assert!(s.sim_seconds_per_sec() > 0.0);
        // The Display line carries the pieces the binaries print.
        let line = s.to_string();
        assert!(line.contains("sessions/sec"), "{line}");
    }
}
