//! Typed failures for the campaign execute path.
//!
//! The execute phase used to `expect()` its way past two impossibilities
//! — a worker thread dying and an unfilled record slot — which turned
//! any mid-campaign panic into an opaque abort of the whole process.
//! [`CampaignError`] names those cases so binaries can report them and
//! exit cleanly, and so library callers can decide what a half-run
//! campaign is worth to them.

/// Why the execute phase could not produce a complete record set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// A worker thread panicked before finishing its chunk of jobs.
    WorkerPanicked {
        /// Index of the worker whose thread died.
        worker: usize,
    },
    /// A job's record slot was never filled (a scheduling bug: every job
    /// is assigned to exactly one worker).
    MissingRecord {
        /// Canonical plan index of the unfilled slot.
        index: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::WorkerPanicked { worker } => {
                write!(f, "campaign worker {worker} panicked mid-run")
            }
            CampaignError::MissingRecord { index } => {
                write!(f, "campaign job {index} produced no record")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = CampaignError::WorkerPanicked { worker: 3 };
        assert!(e.to_string().contains("worker 3"));
        let e = CampaignError::MissingRecord { index: 17 };
        assert!(e.to_string().contains("job 17"));
    }
}
