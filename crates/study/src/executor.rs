//! The execute phase: runs a [`CampaignPlan`]'s jobs and folds each
//! finished session into a [`CampaignAccumulator`].
//!
//! Executors differ only in *how* jobs are scheduled — [`SerialExecutor`]
//! runs them in plan order on the calling thread; [`ThreadedExecutor`]
//! self-schedules: workers pull the next unclaimed *user* off a shared
//! atomic cursor (the plan is lazy, so a user is the natural claim unit —
//! their jobs are regenerated on demand), and a worker stuck on one slow
//! session never strands pre-assigned work behind it. Each worker folds
//! into a thread-local accumulator; after the join, the per-worker
//! accumulators merge in worker-slot order. Because every [`SessionJob`]
//! carries a self-contained seed and verdict, and because accumulators
//! are order-independent by contract, all executors produce bit-identical
//! aggregates for every seed, scale, and worker count;
//! `tests/determinism.rs` enforces this across the crate boundary. Only
//! the per-worker *load split* is scheduling-dependent (and therefore
//! nondeterministic for the threaded executor).
//!
//! The historical retain-everything path is the provided
//! [`CampaignExecutor::execute`], which folds into a [`RecordSink`] and
//! restores canonical record order — opt-in, because its memory is
//! O(sessions) while `fold` with aggregate accumulators is O(1) in
//! session count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rv_sim::{CounterSet, SimRng};
use rv_tracer::{rate, SessionMetrics, SessionOutcome, WorldScratch};

use crate::accumulate::{CampaignAccumulator, RecordSink};
use crate::campaign::SessionRecord;
use crate::error::CampaignError;
use crate::gateway::GatewaySpec;
use crate::plan::{CampaignPlan, SessionJob};
use crate::worldbuild::build_session_world_gw;

/// The outcome of a fold: the merged accumulator plus the per-worker
/// session counts actually observed during scheduling.
#[derive(Debug)]
pub struct Fold<A> {
    /// Every worker's accumulator, merged in worker-slot order.
    pub accumulator: A,
    /// Sessions each worker ran. Always sums to the plan's job count.
    /// For the threaded executor the split depends on thread timing and
    /// is *not* deterministic — only the accumulator is.
    pub worker_loads: Vec<usize>,
    /// Per-worker execute-phase profile, in worker-slot order. Like the
    /// loads, the timings are scheduling-dependent observability data,
    /// never part of the deterministic output.
    pub worker_profiles: Vec<WorkerProfile>,
}

/// What one executor worker did with its time during the execute phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerProfile {
    /// Sessions this worker simulated.
    pub sessions: usize,
    /// Participants this worker claimed off the shared cursor (the
    /// self-scheduling unit). Serial runs claim every user.
    pub claims: usize,
    /// Time spent inside session simulation.
    pub busy: Duration,
    /// The worker's total lifetime, claim loop included.
    pub wall: Duration,
}

impl WorkerProfile {
    /// Time the worker was alive but not simulating: scheduling overhead
    /// plus starvation at the end of the roster.
    pub fn idle(&self) -> Duration {
        self.wall.saturating_sub(self.busy)
    }
}

/// The outcome of a retained-record execute: records in canonical plan
/// order plus the observed per-worker loads.
#[derive(Debug)]
pub struct Execution {
    /// One record per planned job, in plan order.
    pub records: Vec<SessionRecord>,
    /// Jobs each worker ran; see [`Fold::worker_loads`].
    pub worker_loads: Vec<usize>,
}

/// A strategy for running a plan's jobs.
pub trait CampaignExecutor {
    /// Runs every job, folding each finished session into a fresh `A` and
    /// merging per-worker accumulators in canonical worker order. Fails
    /// with a [`CampaignError`] when a worker died before the plan
    /// finished.
    fn fold<A: CampaignAccumulator>(&self, plan: &CampaignPlan) -> Result<Fold<A>, CampaignError>;

    /// Runs every job and retains all records in canonical plan order.
    /// O(sessions) memory — the debug/dump path, not the campaign path.
    fn execute(&self, plan: &CampaignPlan) -> Result<Execution, CampaignError> {
        let fold = self.fold::<RecordSink>(plan)?;
        Ok(Execution {
            records: fold.accumulator.into_records(plan.total_jobs())?,
            worker_loads: fold.worker_loads,
        })
    }
}

/// Runs jobs one at a time on the calling thread, in plan order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl CampaignExecutor for SerialExecutor {
    fn fold<A: CampaignAccumulator>(&self, plan: &CampaignPlan) -> Result<Fold<A>, CampaignError> {
        let started = Instant::now();
        let mut acc = A::default();
        let mut ran = 0usize;
        let mut busy = Duration::ZERO;
        let mut scratch = WorldScratch::default();
        for user_idx in 0..plan.num_users() {
            for job in plan.user_jobs(user_idx) {
                let job_start = Instant::now();
                let record = run_job_with(plan, &job, &mut scratch);
                busy += job_start.elapsed();
                acc.observe(&job, &record);
                ran += 1;
            }
        }
        let profile = WorkerProfile {
            sessions: ran,
            claims: plan.num_users(),
            busy,
            wall: started.elapsed(),
        };
        Ok(Fold {
            accumulator: acc,
            worker_loads: vec![ran],
            worker_profiles: vec![profile],
        })
    }
}

/// Fans users across `workers` OS threads with self-scheduling: every
/// worker pulls the next unclaimed participant off a shared atomic
/// cursor, regenerates their jobs from the lazy plan, and folds the
/// results into a thread-local accumulator until the roster is exhausted.
///
/// Compared to pre-assigned contiguous chunks, a long-running session
/// cannot strand the rest of its chunk behind it — the other workers
/// simply drain the remaining users. Per-worker accumulators merge in
/// worker-slot order after the join; since accumulators are
/// order-independent by contract, the merged result is bit-identical to
/// [`SerialExecutor`]'s regardless of scheduling.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedExecutor {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
}

impl ThreadedExecutor {
    /// An executor with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        ThreadedExecutor {
            workers: workers.max(1),
        }
    }
}

impl CampaignExecutor for ThreadedExecutor {
    fn fold<A: CampaignAccumulator>(&self, plan: &CampaignPlan) -> Result<Fold<A>, CampaignError> {
        if self.workers == 1 || plan.num_users() <= 1 {
            return SerialExecutor.fold(plan);
        }
        let workers = self.workers.min(plan.num_users());
        let cursor = AtomicUsize::new(0);
        // Join every worker explicitly: a panicked worker becomes a typed
        // error instead of propagating out of the scope and aborting the
        // caller with the worker's payload.
        let mut first_dead: Option<usize> = None;
        let mut merged = A::default();
        let mut worker_loads = vec![0usize; workers];
        let mut worker_profiles = vec![WorkerProfile::default(); workers];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let started = Instant::now();
                        let mut local = A::default();
                        let mut ran = 0usize;
                        let mut claims = 0usize;
                        let mut busy = Duration::ZERO;
                        let mut scratch = WorldScratch::default();
                        loop {
                            let user_idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if user_idx >= plan.num_users() {
                                break;
                            }
                            claims += 1;
                            for job in plan.user_jobs(user_idx) {
                                let job_start = Instant::now();
                                let record = run_job_with(plan, &job, &mut scratch);
                                busy += job_start.elapsed();
                                local.observe(&job, &record);
                                ran += 1;
                            }
                        }
                        let profile = WorkerProfile {
                            sessions: ran,
                            claims,
                            busy,
                            wall: started.elapsed(),
                        };
                        (local, ran, profile)
                    })
                })
                .collect();
            // Merge in worker-slot order — the canonical merge order.
            // (Accumulators are order-independent anyway; fixing the
            // order makes the guarantee not depend on that contract.)
            for (worker, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok((local, ran, profile)) => {
                        worker_loads[worker] = ran;
                        worker_profiles[worker] = profile;
                        merged.merge(local);
                    }
                    Err(_) => {
                        if first_dead.is_none() {
                            first_dead = Some(worker);
                        }
                    }
                }
            }
        });
        if let Some(worker) = first_dead {
            return Err(CampaignError::WorkerPanicked { worker });
        }
        Ok(Fold {
            accumulator: merged,
            worker_loads,
            worker_profiles,
        })
    }
}

/// Runs one job to a [`SessionRecord`]. Pure in `(plan, job)`: no shared
/// mutable state, so any thread may run any job in any order.
pub fn run_job(plan: &CampaignPlan, job: &SessionJob) -> SessionRecord {
    run_job_with(plan, job, &mut WorldScratch::default())
}

/// The gateway spec for one job, or `None` when the params leave the
/// gateway tier off (the default single-server study). The spec's seed is
/// derived per job from its own "gateway" stream, so replica loads are
/// order- and scale-independent like every other per-session draw.
pub fn gateway_spec(
    params: &crate::campaign::StudyParams,
    job: &SessionJob,
) -> Option<GatewaySpec> {
    if params.replicas <= 1 && params.capacity == 0 {
        return None;
    }
    let key = SessionJob::stream_key(job.user_id, job.clip_seq);
    Some(GatewaySpec {
        replicas: params.replicas.max(1),
        policy: params.gateway,
        capacity: params.capacity,
        seed: SimRng::derive_seed(params.seed, "gateway", key),
    })
}

/// As [`run_job`] but recycling world storage across calls. `scratch` is
/// capacity-only and carries no session state, so results stay pure in
/// `(plan, job)` — the executors' bit-identity guarantee does not depend
/// on which scratch (or how fresh a scratch) ran the job.
pub fn run_job_with(
    plan: &CampaignPlan,
    job: &SessionJob,
    scratch: &mut WorldScratch,
) -> SessionRecord {
    let user = &plan.population.participants[job.user];
    let site = &plan.roster[job.server];
    let entry = &plan.playlist[job.playlist_slot];
    let params = &plan.params;

    let (metrics, rating, counters) = if job.available {
        let gateway = gateway_spec(params, job);
        let mut world = build_session_world_gw(
            user,
            site,
            &entry.clip,
            params.watch_limit,
            job.session_seed,
            &job.fault_plan,
            gateway.as_ref(),
            scratch,
        );
        let metrics = world.run(params.session_deadline);
        let counters = world.counters();
        // Degraded sessions are still rated: a user who sat through a
        // retry or a TCP fallback saw the clip and scored it (badly).
        let rating = if job.rating_slot && metrics.outcome.is_played() {
            let key = SessionJob::stream_key(job.user_id, job.clip_seq);
            let mut rating_rng = SimRng::derive(params.seed, "rating", key);
            Some(rate(&metrics, &user.rater, &mut rating_rng))
        } else {
            None
        };
        world.retire(scratch);
        (metrics, rating, counters)
    } else {
        (
            SessionMetrics::failed(SessionOutcome::Unavailable, rv_rtsp::TransportKind::Tcp),
            None,
            CounterSet::new(),
        )
    };

    SessionRecord {
        user_id: user.id,
        user_country: user.country,
        user_state: user.state,
        user_region: user.region(),
        connection: user.connection,
        pc: user.pc,
        server_name: site.name,
        server_country: site.country,
        server_region: site.region(),
        clip_name: plan.clip_names[job.playlist_slot].clone(),
        available: job.available,
        metrics,
        counters,
        rating,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::CampaignAggregates;
    use crate::campaign::StudyParams;
    use crate::plan::plan_campaign;

    #[test]
    fn threaded_matches_serial_bit_for_bit() {
        let plan = plan_campaign(StudyParams {
            scale: 0.02,
            ..StudyParams::default()
        });
        let serial = SerialExecutor.execute(&plan).unwrap().records;
        for workers in [2, 3, 5] {
            let parallel = ThreadedExecutor::new(workers)
                .execute(&plan)
                .unwrap()
                .records;
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.user_id, p.user_id);
                assert_eq!(s.clip_name, p.clip_name);
                assert_eq!(s.available, p.available);
                assert_eq!(s.metrics, p.metrics);
                assert_eq!(s.rating, p.rating);
            }
        }
    }

    #[test]
    fn threaded_aggregates_match_serial_bit_for_bit() {
        let plan = plan_campaign(StudyParams {
            scale: 0.02,
            ..StudyParams::default()
        });
        let serial = SerialExecutor
            .fold::<CampaignAggregates>(&plan)
            .unwrap()
            .accumulator;
        for workers in [2, 4, 8] {
            let threaded = ThreadedExecutor::new(workers)
                .fold::<CampaignAggregates>(&plan)
                .unwrap()
                .accumulator;
            assert_eq!(serial, threaded, "{workers} workers");
        }
    }

    #[test]
    fn worker_loads_cover_all_jobs() {
        let plan = plan_campaign(StudyParams {
            scale: 0.02,
            ..StudyParams::default()
        });
        for workers in [1, 2, 4, 7] {
            let exec = ThreadedExecutor::new(workers);
            let loads = exec.execute(&plan).unwrap().worker_loads;
            assert_eq!(loads.iter().sum::<usize>(), plan.total_jobs());
            assert!(loads.len() <= workers);
        }
    }

    #[test]
    fn records_share_interned_clip_names() {
        let plan = plan_campaign(StudyParams {
            scale: 0.01,
            ..StudyParams::default()
        });
        let records = SerialExecutor.execute(&plan).unwrap().records;
        let first = &records[0];
        // The record's name points into the plan's intern table, not a
        // fresh allocation.
        assert!(plan
            .clip_names
            .iter()
            .any(|n| std::sync::Arc::ptr_eq(n, &first.clip_name)));
    }
}
