//! The execute phase: runs a [`CampaignPlan`]'s jobs and reassembles
//! records in canonical plan order.
//!
//! Executors differ only in *how* jobs are scheduled — [`SerialExecutor`]
//! runs them in plan order on the calling thread; [`ThreadedExecutor`]
//! fans contiguous chunks out across `std::thread::scope` workers, each
//! running its own single-threaded session simulations. Because every
//! [`SessionJob`] carries a self-contained seed and verdict, the two
//! produce bit-identical `Vec<SessionRecord>` for every seed, scale, and
//! worker count; `tests/determinism.rs` enforces this across the crate
//! boundary.

use rv_sim::SimRng;
use rv_tracer::{rate, SessionMetrics, SessionOutcome};

use crate::campaign::SessionRecord;
use crate::error::CampaignError;
use crate::plan::{CampaignPlan, SessionJob};
use crate::worldbuild::build_session_world;

/// A strategy for running a plan's jobs.
pub trait CampaignExecutor {
    /// Runs every job, returning records in canonical plan order, or a
    /// [`CampaignError`] when a worker died before its chunk finished.
    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<SessionRecord>, CampaignError>;

    /// Number of jobs each worker ran, for the campaign summary.
    /// Indexed by worker; a serial executor reports one entry.
    fn worker_loads(&self, plan: &CampaignPlan) -> Vec<usize>;
}

/// Runs jobs one at a time on the calling thread, in plan order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl CampaignExecutor for SerialExecutor {
    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<SessionRecord>, CampaignError> {
        Ok(plan.jobs.iter().map(|job| run_job(plan, job)).collect())
    }

    fn worker_loads(&self, plan: &CampaignPlan) -> Vec<usize> {
        vec![plan.jobs.len()]
    }
}

/// Fans jobs across `workers` OS threads in contiguous chunks.
///
/// Each worker writes into its own disjoint slice of the output, so no
/// locks are needed and canonical order is preserved by construction.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedExecutor {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
}

impl ThreadedExecutor {
    /// An executor with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        ThreadedExecutor {
            workers: workers.max(1),
        }
    }

    /// Chunk length that spreads `jobs` over the workers.
    fn chunk_len(&self, jobs: usize) -> usize {
        jobs.div_ceil(self.workers).max(1)
    }
}

impl CampaignExecutor for ThreadedExecutor {
    fn execute(&self, plan: &CampaignPlan) -> Result<Vec<SessionRecord>, CampaignError> {
        if self.workers == 1 || plan.jobs.len() <= 1 {
            return SerialExecutor.execute(plan);
        }
        let chunk = self.chunk_len(plan.jobs.len());
        let mut slots: Vec<Option<SessionRecord>> = vec![None; plan.jobs.len()];
        // Join every worker explicitly: a panicked worker becomes a typed
        // error instead of propagating out of the scope and aborting the
        // caller with the worker's payload.
        let mut first_dead: Option<usize> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .jobs
                .chunks(chunk)
                .zip(slots.chunks_mut(chunk))
                .map(|(job_chunk, slot_chunk)| {
                    scope.spawn(move || {
                        for (job, slot) in job_chunk.iter().zip(slot_chunk.iter_mut()) {
                            *slot = Some(run_job(plan, job));
                        }
                    })
                })
                .collect();
            for (worker, handle) in handles.into_iter().enumerate() {
                if handle.join().is_err() && first_dead.is_none() {
                    first_dead = Some(worker);
                }
            }
        });
        if let Some(worker) = first_dead {
            return Err(CampaignError::WorkerPanicked { worker });
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(index, s)| s.ok_or(CampaignError::MissingRecord { index }))
            .collect()
    }

    fn worker_loads(&self, plan: &CampaignPlan) -> Vec<usize> {
        if self.workers == 1 || plan.jobs.len() <= 1 {
            return vec![plan.jobs.len()];
        }
        let chunk = self.chunk_len(plan.jobs.len());
        let mut loads: Vec<usize> = Vec::new();
        let mut left = plan.jobs.len();
        while left > 0 {
            let n = left.min(chunk);
            loads.push(n);
            left -= n;
        }
        loads
    }
}

/// Runs one job to a [`SessionRecord`]. Pure in `(plan, job)`: no shared
/// mutable state, so any thread may run any job in any order.
pub fn run_job(plan: &CampaignPlan, job: &SessionJob) -> SessionRecord {
    let user = &plan.population.participants[job.user];
    let site = &plan.roster[job.server];
    let entry = &plan.playlist[job.playlist_slot];
    let params = &plan.params;

    let (metrics, rating) = if job.available {
        let mut world = build_session_world(
            user,
            site,
            &entry.clip,
            params.watch_limit,
            job.session_seed,
            &job.fault_plan,
        );
        let metrics = world.run(params.session_deadline);
        // Degraded sessions are still rated: a user who sat through a
        // retry or a TCP fallback saw the clip and scored it (badly).
        let rating = if job.rating_slot && metrics.outcome.is_played() {
            let key = SessionJob::stream_key(job.user_id, job.clip_seq);
            let mut rating_rng = SimRng::derive(params.seed, "rating", key);
            Some(rate(&metrics, &user.rater, &mut rating_rng))
        } else {
            None
        };
        (metrics, rating)
    } else {
        (
            SessionMetrics::failed(SessionOutcome::Unavailable, rv_rtsp::TransportKind::Tcp),
            None,
        )
    };

    SessionRecord {
        user_id: user.id,
        user_country: user.country,
        user_state: user.state,
        user_region: user.region(),
        connection: user.connection,
        pc: user.pc,
        server_name: site.name,
        server_country: site.country,
        server_region: site.region(),
        clip_name: plan.clip_names[job.playlist_slot].clone(),
        available: job.available,
        metrics,
        rating,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::StudyParams;
    use crate::plan::plan_campaign;

    #[test]
    fn threaded_matches_serial_bit_for_bit() {
        let plan = plan_campaign(StudyParams {
            scale: 0.02,
            ..StudyParams::default()
        });
        let serial = SerialExecutor.execute(&plan).unwrap();
        for workers in [2, 3, 5] {
            let parallel = ThreadedExecutor::new(workers).execute(&plan).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.user_id, p.user_id);
                assert_eq!(s.clip_name, p.clip_name);
                assert_eq!(s.available, p.available);
                assert_eq!(s.metrics, p.metrics);
                assert_eq!(s.rating, p.rating);
            }
        }
    }

    #[test]
    fn worker_loads_cover_all_jobs() {
        let plan = plan_campaign(StudyParams {
            scale: 0.02,
            ..StudyParams::default()
        });
        for workers in [1, 2, 4, 7] {
            let exec = ThreadedExecutor::new(workers);
            let loads = exec.worker_loads(&plan);
            assert_eq!(loads.iter().sum::<usize>(), plan.jobs.len());
            assert!(loads.len() <= workers);
        }
    }

    #[test]
    fn records_share_interned_clip_names() {
        let plan = plan_campaign(StudyParams {
            scale: 0.01,
            ..StudyParams::default()
        });
        let records = SerialExecutor.execute(&plan).unwrap();
        let first = &records[0];
        // The record's name points into the plan's intern table, not a
        // fresh allocation.
        assert!(plan
            .clip_names
            .iter()
            .any(|n| std::sync::Arc::ptr_eq(n, &first.clip_name)));
    }
}
