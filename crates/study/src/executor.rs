//! The execute phase: runs a [`CampaignPlan`]'s jobs and reassembles
//! records in canonical plan order.
//!
//! Executors differ only in *how* jobs are scheduled — [`SerialExecutor`]
//! runs them in plan order on the calling thread; [`ThreadedExecutor`]
//! self-schedules: workers pull the next unclaimed job off a shared
//! atomic cursor, so a worker stuck on one slow session never strands a
//! pre-assigned chunk behind it. Each worker collects `(index, record)`
//! pairs locally; after the join, records are placed into canonical plan
//! order by index. Because every [`SessionJob`] carries a self-contained
//! seed and verdict, all executors produce bit-identical
//! `Vec<SessionRecord>` for every seed, scale, and worker count;
//! `tests/determinism.rs` enforces this across the crate boundary. Only
//! the per-worker *load split* is scheduling-dependent (and therefore
//! nondeterministic for the threaded executor).

use std::sync::atomic::{AtomicUsize, Ordering};

use rv_sim::SimRng;
use rv_tracer::{rate, SessionMetrics, SessionOutcome};

use crate::campaign::SessionRecord;
use crate::error::CampaignError;
use crate::plan::{CampaignPlan, SessionJob};
use crate::worldbuild::build_session_world;

/// The outcome of an execute phase: records in canonical plan order plus
/// the per-worker job counts actually observed during scheduling.
#[derive(Debug)]
pub struct Execution {
    /// One record per planned job, in plan order.
    pub records: Vec<SessionRecord>,
    /// Jobs each worker ran. Always sums to `records.len()`. For the
    /// threaded executor the split depends on thread timing and is *not*
    /// deterministic — only the records are.
    pub worker_loads: Vec<usize>,
}

/// A strategy for running a plan's jobs.
pub trait CampaignExecutor {
    /// Runs every job, returning records in canonical plan order together
    /// with the observed per-worker loads, or a [`CampaignError`] when a
    /// worker died before the plan finished.
    fn execute(&self, plan: &CampaignPlan) -> Result<Execution, CampaignError>;
}

/// Runs jobs one at a time on the calling thread, in plan order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl CampaignExecutor for SerialExecutor {
    fn execute(&self, plan: &CampaignPlan) -> Result<Execution, CampaignError> {
        let records: Vec<SessionRecord> = plan.jobs.iter().map(|job| run_job(plan, job)).collect();
        let worker_loads = vec![records.len()];
        Ok(Execution {
            records,
            worker_loads,
        })
    }
}

/// Fans jobs across `workers` OS threads with self-scheduling: every
/// worker pulls the next unclaimed job index off a shared atomic cursor
/// until the plan is exhausted.
///
/// Compared to pre-assigned contiguous chunks, a long-running session
/// cannot strand the rest of its chunk behind it — the other workers
/// simply drain what remains. Workers collect `(index, record)` pairs in
/// a thread-local vec; canonical order is restored by index after the
/// join, so the output is bit-identical to [`SerialExecutor`] regardless
/// of scheduling.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedExecutor {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
}

impl ThreadedExecutor {
    /// An executor with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        ThreadedExecutor {
            workers: workers.max(1),
        }
    }
}

impl CampaignExecutor for ThreadedExecutor {
    fn execute(&self, plan: &CampaignPlan) -> Result<Execution, CampaignError> {
        if self.workers == 1 || plan.jobs.len() <= 1 {
            return SerialExecutor.execute(plan);
        }
        let workers = self.workers.min(plan.jobs.len());
        let cursor = AtomicUsize::new(0);
        // Join every worker explicitly: a panicked worker becomes a typed
        // error instead of propagating out of the scope and aborting the
        // caller with the worker's payload.
        let mut first_dead: Option<usize> = None;
        let mut slots: Vec<Option<SessionRecord>> = Vec::new();
        slots.resize_with(plan.jobs.len(), || None);
        let mut worker_loads = vec![0usize; workers];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, SessionRecord)> = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = plan.jobs.get(index) else {
                                break;
                            };
                            local.push((index, run_job(plan, job)));
                        }
                        local
                    })
                })
                .collect();
            for (worker, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(local) => {
                        worker_loads[worker] = local.len();
                        for (index, record) in local {
                            slots[index] = Some(record);
                        }
                    }
                    Err(_) => {
                        if first_dead.is_none() {
                            first_dead = Some(worker);
                        }
                    }
                }
            }
        });
        if let Some(worker) = first_dead {
            return Err(CampaignError::WorkerPanicked { worker });
        }
        let records = slots
            .into_iter()
            .enumerate()
            .map(|(index, s)| s.ok_or(CampaignError::MissingRecord { index }))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Execution {
            records,
            worker_loads,
        })
    }
}

/// Runs one job to a [`SessionRecord`]. Pure in `(plan, job)`: no shared
/// mutable state, so any thread may run any job in any order.
pub fn run_job(plan: &CampaignPlan, job: &SessionJob) -> SessionRecord {
    let user = &plan.population.participants[job.user];
    let site = &plan.roster[job.server];
    let entry = &plan.playlist[job.playlist_slot];
    let params = &plan.params;

    let (metrics, rating) = if job.available {
        let mut world = build_session_world(
            user,
            site,
            &entry.clip,
            params.watch_limit,
            job.session_seed,
            &job.fault_plan,
        );
        let metrics = world.run(params.session_deadline);
        // Degraded sessions are still rated: a user who sat through a
        // retry or a TCP fallback saw the clip and scored it (badly).
        let rating = if job.rating_slot && metrics.outcome.is_played() {
            let key = SessionJob::stream_key(job.user_id, job.clip_seq);
            let mut rating_rng = SimRng::derive(params.seed, "rating", key);
            Some(rate(&metrics, &user.rater, &mut rating_rng))
        } else {
            None
        };
        (metrics, rating)
    } else {
        (
            SessionMetrics::failed(SessionOutcome::Unavailable, rv_rtsp::TransportKind::Tcp),
            None,
        )
    };

    SessionRecord {
        user_id: user.id,
        user_country: user.country,
        user_state: user.state,
        user_region: user.region(),
        connection: user.connection,
        pc: user.pc,
        server_name: site.name,
        server_country: site.country,
        server_region: site.region(),
        clip_name: plan.clip_names[job.playlist_slot].clone(),
        available: job.available,
        metrics,
        rating,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::StudyParams;
    use crate::plan::plan_campaign;

    #[test]
    fn threaded_matches_serial_bit_for_bit() {
        let plan = plan_campaign(StudyParams {
            scale: 0.02,
            ..StudyParams::default()
        });
        let serial = SerialExecutor.execute(&plan).unwrap().records;
        for workers in [2, 3, 5] {
            let parallel = ThreadedExecutor::new(workers)
                .execute(&plan)
                .unwrap()
                .records;
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.user_id, p.user_id);
                assert_eq!(s.clip_name, p.clip_name);
                assert_eq!(s.available, p.available);
                assert_eq!(s.metrics, p.metrics);
                assert_eq!(s.rating, p.rating);
            }
        }
    }

    #[test]
    fn worker_loads_cover_all_jobs() {
        let plan = plan_campaign(StudyParams {
            scale: 0.02,
            ..StudyParams::default()
        });
        for workers in [1, 2, 4, 7] {
            let exec = ThreadedExecutor::new(workers);
            let loads = exec.execute(&plan).unwrap().worker_loads;
            assert_eq!(loads.iter().sum::<usize>(), plan.jobs.len());
            assert!(loads.len() <= workers);
        }
    }

    #[test]
    fn records_share_interned_clip_names() {
        let plan = plan_campaign(StudyParams {
            scale: 0.01,
            ..StudyParams::default()
        });
        let records = SerialExecutor.execute(&plan).unwrap().records;
        let first = &records[0];
        // The record's name points into the plan's intern table, not a
        // fresh allocation.
        assert!(plan
            .clip_names
            .iter()
            .any(|n| std::sync::Arc::ptr_eq(n, &first.clip_name)));
    }
}
