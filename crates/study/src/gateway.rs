//! The gateway tier: deterministic replica selection for a server site.
//!
//! A site may deploy several replicas of its RealServer (a `StudyParams`
//! knob; default 1, i.e. exactly the single-server study). The gateway
//! is not a simulated box — it is the deterministic routing *decision*
//! made at session start: given the site, the user's zone, and a derived
//! seed, it produces the order in which the client will try replicas,
//! plus each replica's seeded standing load. "Healthy" is discovered at
//! runtime: the client walks the order and hops past replicas that
//! refuse, reset, or answer 453 Busy.

use rv_sim::SimRng;

use crate::geography::{path_profile, Zone};

/// How the gateway orders a site's replicas for a new session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayPolicy {
    /// Fixed plan order, replica 0 first — the pre-gateway behavior.
    Sticky,
    /// Closest replica first, by the zone-pair transit delay between the
    /// user and the zone each replica is deployed in.
    NearestHealthy,
    /// Least standing load first; the seeded background load stands in
    /// for the occupancy a real gateway would poll.
    LeastLoaded,
}

impl GatewayPolicy {
    /// Parse a CLI spelling of a policy.
    pub fn parse(s: &str) -> Option<GatewayPolicy> {
        match s {
            "sticky" => Some(GatewayPolicy::Sticky),
            "nearest" => Some(GatewayPolicy::NearestHealthy),
            "least-loaded" => Some(GatewayPolicy::LeastLoaded),
            _ => None,
        }
    }

    /// The canonical spelling accepted by [`parse`](GatewayPolicy::parse).
    pub fn name(self) -> &'static str {
        match self {
            GatewayPolicy::Sticky => "sticky",
            GatewayPolicy::NearestHealthy => "nearest",
            GatewayPolicy::LeastLoaded => "least-loaded",
        }
    }
}

/// Everything the world builder needs to stand up one session's cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewaySpec {
    /// Replica count, clamped to at least 1.
    pub replicas: u8,
    /// Selection policy.
    pub policy: GatewayPolicy,
    /// Per-replica session capacity; 0 disables admission control.
    pub capacity: u32,
    /// Derived per-session seed for loads (and nothing else).
    pub seed: u64,
}

/// The gateway's decision for one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayPlan {
    /// Replica indices in the order the client should try them.
    pub order: Vec<u8>,
    /// Seeded standing load per replica (indexed by replica, not order).
    pub loads: Vec<u32>,
}

/// The zone replica `k` of a site is deployed in. Replica 0 sits in the
/// site's own zone; further replicas rotate through the remaining zones,
/// so a 2-replica US site has one domestic and one overseas box.
pub fn replica_zone(site_zone: Zone, k: u8) -> Zone {
    const CYCLE: [Zone; 5] = [Zone::Na, Zone::Eu, Zone::As, Zone::Oc, Zone::Sa];
    let base = CYCLE.iter().position(|z| *z == site_zone).unwrap_or(0);
    CYCLE[(base + usize::from(k)) % CYCLE.len()]
}

/// Compute the routing decision for one session.
///
/// Loads are drawn from a fresh generator over `spec.seed` only — the
/// session's own RNG streams are untouched, so enabling the gateway
/// cannot perturb any other draw. With admission control on
/// (`capacity > 0`) loads land in `0..=capacity`, so some replicas start
/// full and SETUPs against them bounce with 453; without it a small
/// `0..4` load exists purely as a `LeastLoaded` signal.
pub fn route(spec: &GatewaySpec, site_zone: Zone, user_zone: Zone) -> GatewayPlan {
    let n = spec.replicas.max(1);
    let mut rng = SimRng::seed_from_u64(spec.seed);
    let loads: Vec<u32> = (0..n)
        .map(|_| {
            if spec.capacity > 0 {
                rng.range(0..spec.capacity + 1)
            } else {
                rng.range(0..4u32)
            }
        })
        .collect();
    let mut order: Vec<u8> = (0..n).collect();
    match spec.policy {
        GatewayPolicy::Sticky => {}
        GatewayPolicy::NearestHealthy => {
            order.sort_by_key(|&k| (path_profile(user_zone, replica_zone(site_zone, k)).delay, k));
        }
        GatewayPolicy::LeastLoaded => {
            order.sort_by_key(|&k| (loads[usize::from(k)], k));
        }
    }
    GatewayPlan { order, loads }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(replicas: u8, policy: GatewayPolicy, capacity: u32) -> GatewaySpec {
        GatewaySpec {
            replicas,
            policy,
            capacity,
            seed: 7,
        }
    }

    #[test]
    fn sticky_keeps_plan_order() {
        let plan = route(&spec(4, GatewayPolicy::Sticky, 0), Zone::Na, Zone::Eu);
        assert_eq!(plan.order, vec![0, 1, 2, 3]);
        assert_eq!(plan.loads.len(), 4);
    }

    #[test]
    fn nearest_prefers_the_users_zone() {
        // US site, EU user: replica 1 of a Na site rotates into Eu, the
        // user's own zone, and must be tried first.
        let plan = route(
            &spec(2, GatewayPolicy::NearestHealthy, 0),
            Zone::Na,
            Zone::Eu,
        );
        assert_eq!(plan.order[0], 1);
    }

    #[test]
    fn least_loaded_sorts_by_load_then_index() {
        let plan = route(&spec(4, GatewayPolicy::LeastLoaded, 8), Zone::Na, Zone::Na);
        for pair in plan.order.windows(2) {
            let (a, b) = (usize::from(pair[0]), usize::from(pair[1]));
            assert!(
                plan.loads[a] < plan.loads[b]
                    || (plan.loads[a] == plan.loads[b] && pair[0] < pair[1])
            );
        }
    }

    #[test]
    fn loads_respect_the_capacity_band() {
        let plan = route(&spec(8, GatewayPolicy::Sticky, 3), Zone::As, Zone::As);
        assert!(plan.loads.iter().all(|&l| l <= 3));
        let plan = route(&spec(8, GatewayPolicy::Sticky, 0), Zone::As, Zone::As);
        assert!(plan.loads.iter().all(|&l| l < 4));
    }

    #[test]
    fn routing_is_deterministic_in_the_seed() {
        let a = route(&spec(4, GatewayPolicy::LeastLoaded, 6), Zone::Eu, Zone::Oc);
        let b = route(&spec(4, GatewayPolicy::LeastLoaded, 6), Zone::Eu, Zone::Oc);
        assert_eq!(a, b);
    }

    #[test]
    fn replica_zones_rotate_from_the_site_zone() {
        assert_eq!(replica_zone(Zone::Na, 0), Zone::Na);
        assert_eq!(replica_zone(Zone::Na, 1), Zone::Eu);
        assert_eq!(replica_zone(Zone::Sa, 1), Zone::Na);
    }
}
