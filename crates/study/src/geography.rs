//! Geography: countries, regions, and the inter-region path model.
//!
//! The paper groups servers into five regions (Figure 14) and users into
//! four (Figure 15). Paths between regions differ in propagation delay,
//! baseline loss, and congestion level — the 2001 Internet's transoceanic
//! links were the dominant quality differentiator on the user side.

use rv_net::CongestionParams;
use rv_sim::SimDuration;

/// Countries appearing in the study (12 user countries + 8 server countries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Country {
    Australia,
    Brazil,
    Canada,
    China,
    Egypt,
    France,
    Germany,
    India,
    Italy,
    Japan,
    NewZealand,
    Romania,
    Uae,
    Uk,
    Us,
}

impl Country {
    /// Display name used in figure output.
    pub fn name(self) -> &'static str {
        match self {
            Country::Australia => "Australia",
            Country::Brazil => "Brazil",
            Country::Canada => "Canada",
            Country::China => "China",
            Country::Egypt => "Egypt",
            Country::France => "France",
            Country::Germany => "Germany",
            Country::India => "India",
            Country::Italy => "Italy",
            Country::Japan => "Japan",
            Country::NewZealand => "New Zealand",
            Country::Romania => "Romania",
            Country::Uae => "UAE",
            Country::Uk => "UK",
            Country::Us => "US",
        }
    }
}

/// The paper's five server regions (Figure 14's grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServerRegion {
    /// China + Japan.
    Asia,
    /// Brazil.
    Brazil,
    /// US + Canada.
    UsCanada,
    /// Australia.
    Australia,
    /// UK + Italy.
    Europe,
}

impl ServerRegion {
    /// All server regions, figure order.
    pub const ALL: [ServerRegion; 5] = [
        ServerRegion::Asia,
        ServerRegion::Brazil,
        ServerRegion::UsCanada,
        ServerRegion::Australia,
        ServerRegion::Europe,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServerRegion::Asia => "Asia",
            ServerRegion::Brazil => "Brazil",
            ServerRegion::UsCanada => "US/Canada",
            ServerRegion::Australia => "Australia",
            ServerRegion::Europe => "Europe",
        }
    }
}

/// The paper's four user regions (Figure 15's grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UserRegion {
    /// Australia + New Zealand.
    AustraliaNz,
    /// US + Canada.
    UsCanada,
    /// China, India, UAE (and Egypt, grouped with the Middle East).
    Asia,
    /// UK, France, Germany, Romania.
    Europe,
}

impl UserRegion {
    /// All user regions, figure order.
    pub const ALL: [UserRegion; 4] = [
        UserRegion::AustraliaNz,
        UserRegion::UsCanada,
        UserRegion::Asia,
        UserRegion::Europe,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            UserRegion::AustraliaNz => "Australia/NewZealand",
            UserRegion::UsCanada => "US/Canada",
            UserRegion::Asia => "Asia",
            UserRegion::Europe => "Europe",
        }
    }
}

/// Maps a user's country to its figure region.
pub fn user_region(country: Country) -> UserRegion {
    match country {
        Country::Australia | Country::NewZealand => UserRegion::AustraliaNz,
        Country::Us | Country::Canada => UserRegion::UsCanada,
        Country::China | Country::India | Country::Uae | Country::Egypt => UserRegion::Asia,
        _ => UserRegion::Europe,
    }
}

/// Maps a server's country to its figure region.
pub fn server_region(country: Country) -> ServerRegion {
    match country {
        Country::China | Country::Japan => ServerRegion::Asia,
        Country::Brazil => ServerRegion::Brazil,
        Country::Us | Country::Canada => ServerRegion::UsCanada,
        Country::Australia => ServerRegion::Australia,
        _ => ServerRegion::Europe,
    }
}

/// A continental zone used for path computation (finer than the figure
/// regions: Japan routes differently from China, Egypt from the UK).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Zone {
    /// North America.
    Na,
    /// South America.
    Sa,
    /// Western + Eastern Europe.
    Eu,
    /// East + South Asia, Middle East.
    As,
    /// Australia + New Zealand.
    Oc,
}

/// The zone a country routes through.
pub fn zone(country: Country) -> Zone {
    match country {
        Country::Us | Country::Canada => Zone::Na,
        Country::Brazil => Zone::Sa,
        Country::Uk
        | Country::France
        | Country::Germany
        | Country::Italy
        | Country::Romania
        | Country::Egypt => Zone::Eu,
        Country::China | Country::India | Country::Japan | Country::Uae => Zone::As,
        Country::Australia | Country::NewZealand => Zone::Oc,
    }
}

/// Properties of the transit path between two zones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathProfile {
    /// One-way propagation delay of the transit leg.
    pub delay: SimDuration,
    /// Baseline (non-congestive) packet loss on the path.
    pub base_loss: f64,
    /// Background cross-traffic intensity.
    pub congestion: CongestionParams,
    /// Extra loss at full congestion.
    pub congestion_loss: f64,
}

/// The 2001-era path profile between two zones.
///
/// Delay values approximate great-circle + routing-inefficiency one-way
/// figures; loss and congestion encode the era's notoriously poor
/// transpacific and South-American transit and the relatively clean
/// intra-US and intra-European paths.
pub fn path_profile(a: Zone, b: Zone) -> PathProfile {
    use Zone::*;
    let (delay_ms, base_loss, congestion, congestion_loss) = match (a, b) {
        (Na, Na) => (25, 0.001, CongestionParams::light(), 0.01),
        (Eu, Eu) => (20, 0.002, CongestionParams::light(), 0.015),
        (As, As) => (45, 0.008, CongestionParams::moderate(), 0.03),
        (Oc, Oc) => (20, 0.003, CongestionParams::light(), 0.02),
        (Sa, Sa) => (25, 0.006, CongestionParams::moderate(), 0.03),
        (Na, Eu) | (Eu, Na) => (45, 0.004, CongestionParams::light(), 0.02),
        (Na, As) | (As, Na) => (85, 0.010, CongestionParams::moderate(), 0.04),
        (Na, Oc) | (Oc, Na) => (90, 0.008, CongestionParams::moderate(), 0.04),
        (Na, Sa) | (Sa, Na) => (70, 0.008, CongestionParams::moderate(), 0.04),
        (Eu, As) | (As, Eu) => (95, 0.012, CongestionParams::moderate(), 0.04),
        (Eu, Oc) | (Oc, Eu) => (150, 0.012, CongestionParams::moderate(), 0.05),
        (Eu, Sa) | (Sa, Eu) => (95, 0.010, CongestionParams::moderate(), 0.04),
        (As, Oc) | (Oc, As) => (80, 0.012, CongestionParams::heavy(), 0.05),
        (As, Sa) | (Sa, As) => (160, 0.015, CongestionParams::heavy(), 0.05),
        (Oc, Sa) | (Sa, Oc) => (160, 0.015, CongestionParams::heavy(), 0.06),
    };
    PathProfile {
        delay: SimDuration::from_millis(delay_ms),
        base_loss,
        congestion,
        congestion_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_user_country_has_a_region() {
        for c in [
            Country::Australia,
            Country::Canada,
            Country::China,
            Country::Egypt,
            Country::France,
            Country::Germany,
            Country::India,
            Country::NewZealand,
            Country::Romania,
            Country::Uae,
            Country::Uk,
            Country::Us,
        ] {
            let _ = user_region(c); // must not panic
        }
        assert_eq!(user_region(Country::NewZealand), UserRegion::AustraliaNz);
        assert_eq!(user_region(Country::Egypt), UserRegion::Asia);
        assert_eq!(user_region(Country::Romania), UserRegion::Europe);
    }

    #[test]
    fn server_regions_match_figure_14_grouping() {
        assert_eq!(server_region(Country::Japan), ServerRegion::Asia);
        assert_eq!(server_region(Country::China), ServerRegion::Asia);
        assert_eq!(server_region(Country::Brazil), ServerRegion::Brazil);
        assert_eq!(server_region(Country::Italy), ServerRegion::Europe);
        assert_eq!(server_region(Country::Canada), ServerRegion::UsCanada);
    }

    #[test]
    fn path_profile_is_symmetric() {
        for a in [Zone::Na, Zone::Sa, Zone::Eu, Zone::As, Zone::Oc] {
            for b in [Zone::Na, Zone::Sa, Zone::Eu, Zone::As, Zone::Oc] {
                assert_eq!(path_profile(a, b), path_profile(b, a));
            }
        }
    }

    #[test]
    fn transoceanic_paths_are_worse_than_domestic() {
        let domestic = path_profile(Zone::Na, Zone::Na);
        let transpacific = path_profile(Zone::Na, Zone::Oc);
        assert!(transpacific.delay > domestic.delay);
        assert!(transpacific.base_loss > domestic.base_loss);
    }

    #[test]
    fn intra_us_is_cleanest() {
        let na = path_profile(Zone::Na, Zone::Na);
        for (a, b) in [
            (Zone::As, Zone::As),
            (Zone::Eu, Zone::Oc),
            (Zone::Na, Zone::As),
        ] {
            let p = path_profile(a, b);
            assert!(p.base_loss >= na.base_loss);
        }
    }
}
