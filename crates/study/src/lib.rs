//! # rv-study — the world model and campaign runner
//!
//! Everything the 2001 measurement study needed that was not software:
//! geography and the era's inter-region path quality ([`geography`]), the
//! 63-participant population with its connection/PC/firewall mix
//! ([`build_population`]), the eleven-server roster ([`server_roster`]),
//! the 98-clip playlist ([`build_playlist`]), per-session world
//! construction ([`build_session_world`]), and the campaign runner that
//! replays the whole June 2001 study and yields the streaming
//! [`CampaignAggregates`] every figure is computed from. Campaigns run
//! in two phases: a pure plan pass ([`plan_campaign`]) fixes every
//! session as a [`SessionJob`] (lazily — plan memory is O(users)), and a
//! [`CampaignExecutor`] (serial or threaded) folds them into a
//! [`CampaignAccumulator`] — bit-identically, whatever the thread count.
//! [`run_campaign`] keeps aggregates only (constant memory in session
//! count); [`run_campaign_with_records`] also retains the
//! [`SessionRecord`]s for dumps and equivalence tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulate;
mod campaign;
mod error;
mod executor;
mod gateway;
pub mod geography;
mod plan;
mod playlist;
mod population;
mod report;
mod servers;
mod tracefile;
mod worldbuild;

pub use accumulate::{
    bandwidth_bucket, CampaignAccumulator, CampaignAggregates, FailureTallies, OutcomeTally,
    QualityMoments, RecordSink, BANDWIDTH_BINS,
};
pub use campaign::{
    run_campaign, run_campaign_with_records, CampaignSummary, SessionRecord, StudyData, StudyParams,
};
pub use error::CampaignError;
pub use executor::{
    gateway_spec, run_job, run_job_with, CampaignExecutor, Execution, Fold, SerialExecutor,
    ThreadedExecutor, WorkerProfile,
};
pub use gateway::{replica_zone, route as gateway_route, GatewayPlan, GatewayPolicy, GatewaySpec};
pub use geography::{
    path_profile, server_region, user_region, zone, Country, PathProfile, ServerRegion, UserRegion,
    Zone,
};
pub use plan::{plan_campaign, CampaignPlan, SessionJob};
pub use playlist::{build_playlist, PlaylistEntry, PLAYLIST_LEN};
pub use population::{
    build_population, ConnectionClass, PcClass, Population, UserProfile, COUNTRY_TARGETS,
    US_STATE_WEIGHTS,
};
pub use report::{FailureBreakdown, FailureReport};
pub use servers::{server_roster, ServerSite};
pub use tracefile::{trace_session, SessionTrace, TraceError};
pub use worldbuild::{build_session_world, build_session_world_gw, build_session_world_with};
