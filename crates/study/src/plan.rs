//! The plan phase: materializes a campaign as data before any packet flies.
//!
//! A [`CampaignPlan`] is a pure function of [`StudyParams`]: a serial pass
//! over the population that fixes, for every clip-play attempt, the
//! user/server/clip strata, the availability verdict, the rating-slot
//! assignment, and a self-contained session seed. Because each of those is
//! derived from `(seed, label, job key)` via [`SimRng::derive`] rather
//! than drawn from a shared mutated generator, the plan — and therefore
//! the campaign's output — is independent of the order in which jobs are
//! later executed. That is the property that lets the execute phase run
//! on any number of threads and still produce bit-identical results.
//!
//! Plans are also *prefix-stable across scale*: a job's availability and
//! seed depend only on `(seed, user id, clip sequence number)`, so a
//! scaled-down campaign (`scale < 1`) plans, for every user, an exact
//! prefix of the jobs the full campaign would plan for that user.
//!
//! The same derive-by-key property makes the plan *lazy*: because a job
//! is a pure function of `(params, user, clip_seq)`, the plan stores only
//! per-user job counts (a prefix-sum table) and regenerates each user's
//! jobs on demand via [`CampaignPlan::user_jobs`]. Plan memory is
//! O(users), not O(sessions) — at `--scale 100` the old materialized
//! job vector alone would dwarf the streaming aggregates it feeds.

use std::sync::Arc;

use rv_sim::{FaultPlan, SimRng, SimTime};

use crate::campaign::StudyParams;
use crate::playlist::{build_playlist, PlaylistEntry};
use crate::population::{build_population, Population};
use crate::servers::{server_roster, ServerSite};

/// One planned clip-play attempt: everything the execute phase needs to
/// simulate the session, with no shared mutable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionJob {
    /// Canonical position in plan order; records are reassembled by it.
    pub index: usize,
    /// Index into [`CampaignPlan::population`]'s participants.
    pub user: usize,
    /// The participant's stable id (also part of the seed derivation key).
    pub user_id: u32,
    /// Position of this attempt in the user's personal play sequence,
    /// starting at 0. Scale-independent, unlike `index`.
    pub clip_seq: u32,
    /// Index into [`CampaignPlan::playlist`].
    pub playlist_slot: usize,
    /// Index into [`CampaignPlan::roster`].
    pub server: usize,
    /// Availability verdict (Figure 10), fixed at plan time from this
    /// job's own derived stream.
    pub available: bool,
    /// Whether this attempt occupies one of the user's rating slots
    /// (the first `clips_to_rate` *available* attempts). The executor
    /// rates it only if the session actually plays.
    pub rating_slot: bool,
    /// Self-contained seed for the session world.
    pub session_seed: u64,
    /// The trouble scripted for this session: outages, bursts, crashes,
    /// a black-holed UDP path. Empty whenever [`StudyParams::faults`] is
    /// off, and derived from this job's own fault stream otherwise, so
    /// the faults a session suffers are independent of execution order.
    pub fault_plan: FaultPlan,
}

impl SessionJob {
    /// The derivation key for this job's RNG streams: user id in the high
    /// half, play-sequence number in the low half. `clip_seq` is bounded
    /// by the playlist-walk length (≤ a few thousand), so keys never
    /// collide across users.
    pub fn stream_key(user_id: u32, clip_seq: u32) -> u64 {
        (u64::from(user_id) << 32) | u64::from(clip_seq)
    }
}

/// A campaign ready to execute: the world model plus a lazy job table.
///
/// Jobs are not stored; only the per-user prefix-sum offsets are. Workers
/// regenerate each user's jobs on demand ([`CampaignPlan::user_jobs`]),
/// which keeps plan memory independent of session count.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// The parameters the plan was built from.
    pub params: StudyParams,
    /// The eleven-server roster.
    pub roster: Vec<ServerSite>,
    /// Participants and exclusions.
    pub population: Population,
    /// The 98-clip playlist.
    pub playlist: Vec<PlaylistEntry>,
    /// Interned clip names, one per playlist slot: records share these
    /// instead of cloning a `String` per session.
    pub clip_names: Vec<Arc<str>>,
    /// `job_offsets[u]` is the canonical plan index of participant `u`'s
    /// first job; the final entry is the campaign's total job count.
    job_offsets: Vec<usize>,
}

impl CampaignPlan {
    /// Total clip-play attempts the campaign will run.
    pub fn total_jobs(&self) -> usize {
        *self.job_offsets.last().expect("offsets never empty")
    }

    /// Number of participants with planned jobs.
    pub fn num_users(&self) -> usize {
        self.job_offsets.len() - 1
    }

    /// Regenerates participant `user_idx`'s jobs, in play order. Pure:
    /// every call returns bit-identical jobs, and the concatenation over
    /// users in index order is the canonical plan order.
    pub fn user_jobs(&self, user_idx: usize) -> Vec<SessionJob> {
        let user = &self.population.participants[user_idx];
        let base = self.job_offsets[user_idx];
        let fault_horizon = self.params.session_deadline.saturating_since(SimTime::ZERO);
        let offset = (user.id as usize * 7) % self.playlist.len();
        let mut rating_slots_left = user.clips_to_rate;
        let mut jobs = Vec::with_capacity(user.clips_to_play as usize);
        for clip_seq in 0..user.clips_to_play {
            let playlist_slot = (offset + clip_seq as usize) % self.playlist.len();
            let entry = &self.playlist[playlist_slot];
            let site = &self.roster[entry.server];
            let key = SessionJob::stream_key(user.id, clip_seq);
            // The availability draw comes from this job's own stream, not
            // a shared generator, so verdicts are order- and
            // scale-independent.
            let mut availability_rng = SimRng::derive(self.params.seed, "availability", key);
            let available = !site.clip_unavailable(&mut availability_rng);
            let rating_slot = available && rating_slots_left > 0;
            if rating_slot {
                rating_slots_left -= 1;
            }
            let mut fault_plan = FaultPlan::generate(
                &self.params.faults,
                SimRng::derive_seed(self.params.seed, "faults", key),
                fault_horizon,
            );
            // With a replica cluster, crashes spread across replicas from
            // this job's own gateway-crash stream — the fault stream above
            // is untouched, so the crash *schedule* matches replicas=1.
            if self.params.replicas > 1 {
                fault_plan.retarget_crashes(
                    self.params.replicas,
                    SimRng::derive_seed(self.params.seed, "gateway-crash", key),
                );
            }
            jobs.push(SessionJob {
                index: base + clip_seq as usize,
                user: user_idx,
                user_id: user.id,
                clip_seq,
                playlist_slot,
                server: entry.server,
                available,
                rating_slot,
                session_seed: SimRng::derive_seed(self.params.seed, "session", key),
                fault_plan,
            });
        }
        jobs
    }

    /// Materializes every job in canonical plan order. O(sessions)
    /// memory — for tests and small runs; the executor never calls it.
    pub fn collect_jobs(&self) -> Vec<SessionJob> {
        (0..self.num_users())
            .flat_map(|u| self.user_jobs(u))
            .collect()
    }

    /// Number of jobs whose clip was available at plan time.
    pub fn available_jobs(&self) -> usize {
        (0..self.num_users())
            .map(|u| self.user_jobs(u).iter().filter(|j| j.available).count())
            .sum()
    }
}

/// Plans a campaign. Pure and serial: same `params`, same plan, bit for
/// bit — and cheap, since nothing is simulated and no jobs are stored.
pub fn plan_campaign(params: StudyParams) -> CampaignPlan {
    let mut rng = SimRng::seed_from_u64(params.seed);
    let roster = server_roster();
    let population = build_population(&mut rng.fork(1), params.scale);
    let playlist = build_playlist(&roster, &mut rng.fork(2));
    let clip_names: Vec<Arc<str>> = playlist
        .iter()
        .map(|e| Arc::from(e.clip.name.as_str()))
        .collect();

    let mut job_offsets = Vec::with_capacity(population.participants.len() + 1);
    job_offsets.push(0);
    let mut total = 0usize;
    for user in &population.participants {
        total += user.clips_to_play as usize;
        job_offsets.push(total);
    }

    CampaignPlan {
        params,
        roster,
        population,
        playlist,
        clip_names,
        job_offsets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn full_scale() -> CampaignPlan {
        plan_campaign(StudyParams::default())
    }

    #[test]
    fn same_seed_identical_plan() {
        let a = plan_campaign(StudyParams::quick());
        let b = plan_campaign(StudyParams::quick());
        assert_eq!(a.collect_jobs(), b.collect_jobs());
        assert_eq!(a.clip_names, b.clip_names);
    }

    #[test]
    fn different_seeds_differ() {
        let a = plan_campaign(StudyParams::quick());
        let b = plan_campaign(StudyParams {
            seed: 7,
            ..StudyParams::quick()
        });
        assert_ne!(a.collect_jobs(), b.collect_jobs());
    }

    #[test]
    fn lazy_regeneration_is_stable_and_consistent() {
        let plan = plan_campaign(StudyParams::quick());
        // Regenerating a user's jobs is pure...
        for u in [0usize, 7, 31, 62] {
            assert_eq!(plan.user_jobs(u), plan.user_jobs(u));
        }
        // ...and the concatenation is dense in plan order.
        let jobs = plan.collect_jobs();
        assert_eq!(jobs.len(), plan.total_jobs());
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
        }
    }

    #[test]
    fn plan_covers_every_participant_in_canonical_order() {
        let plan = full_scale();
        assert_eq!(plan.population.participants.len(), 63);
        // Canonical order: jobs are grouped by user, sequence within each
        // user ascends from zero, and `index` equals position.
        let jobs = plan.collect_jobs();
        let mut expected_seq: HashMap<u32, u32> = HashMap::new();
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
            let seq = expected_seq.entry(job.user_id).or_insert(0);
            assert_eq!(job.clip_seq, *seq, "user {} out of sequence", job.user_id);
            *seq += 1;
        }
        assert_eq!(expected_seq.len(), 63);
        // Full scale plans the paper's ~2,900 sessions.
        assert!(
            (2_500..3_300).contains(&plan.total_jobs()),
            "{} jobs",
            plan.total_jobs()
        );
    }

    #[test]
    fn scaled_plan_is_a_prefix_per_user_of_the_full_plan() {
        let full = full_scale();
        let scaled = plan_campaign(StudyParams {
            scale: 0.25,
            ..StudyParams::default()
        });
        let full_jobs = full.collect_jobs();
        let scaled_jobs_all = scaled.collect_jobs();
        let mut full_by_user: HashMap<u32, Vec<&SessionJob>> = HashMap::new();
        for job in &full_jobs {
            full_by_user.entry(job.user_id).or_default().push(job);
        }
        let mut scaled_by_user: HashMap<u32, Vec<&SessionJob>> = HashMap::new();
        for job in &scaled_jobs_all {
            scaled_by_user.entry(job.user_id).or_default().push(job);
        }
        assert_eq!(full_by_user.len(), scaled_by_user.len());
        for (user_id, scaled_jobs) in &scaled_by_user {
            let full_jobs = &full_by_user[user_id];
            assert!(scaled_jobs.len() <= full_jobs.len());
            assert!(!scaled_jobs.is_empty());
            for (s, f) in scaled_jobs.iter().zip(full_jobs.iter()) {
                // Everything except the global plan index matches the
                // full-scale plan's corresponding job.
                assert_eq!(s.user_id, f.user_id);
                assert_eq!(s.clip_seq, f.clip_seq);
                assert_eq!(s.playlist_slot, f.playlist_slot);
                assert_eq!(s.server, f.server);
                assert_eq!(s.available, f.available);
                assert_eq!(s.rating_slot, f.rating_slot);
                assert_eq!(s.session_seed, f.session_seed);
                assert_eq!(s.fault_plan, f.fault_plan);
            }
        }
    }

    #[test]
    fn availability_fraction_in_figure_10_band() {
        let plan = full_scale();
        let unavailable = plan.total_jobs() - plan.available_jobs();
        let frac = unavailable as f64 / plan.total_jobs() as f64;
        // Figure 10: overall clip unavailability averaged ≈ 10 %.
        assert!((0.05..0.18).contains(&frac), "unavailable fraction {frac}");
    }

    #[test]
    fn session_seeds_unique_over_full_scale_job_set() {
        let plan = full_scale();
        let jobs = plan.collect_jobs();
        let mut seen = std::collections::HashSet::new();
        for job in &jobs {
            assert!(
                seen.insert(job.session_seed),
                "seed collision at user {} seq {}",
                job.user_id,
                job.clip_seq
            );
        }
        // And the seeds are well spread, not clustered in a few high or
        // low bits the way the old `wrapping_mul`/`<< 20` mixing was:
        // population-count over the whole set should straddle 32.
        let mean_ones: f64 = jobs
            .iter()
            .map(|j| f64::from(j.session_seed.count_ones()))
            .sum::<f64>()
            / jobs.len() as f64;
        assert!((30.0..34.0).contains(&mean_ones), "mean ones {mean_ones}");
    }

    #[test]
    fn fault_plans_empty_when_off_and_scheduled_when_on() {
        let off = plan_campaign(StudyParams::quick());
        assert!(off.collect_jobs().iter().all(|j| j.fault_plan.is_empty()));

        let on_jobs = plan_campaign(StudyParams {
            faults: rv_sim::FaultScenario::default_on(),
            ..StudyParams::quick()
        })
        .collect_jobs();
        let faulted = on_jobs.iter().filter(|j| !j.fault_plan.is_empty()).count();
        assert!(faulted > 0, "default-on scenario scheduled no faults");
        assert!(
            faulted * 2 < on_jobs.len(),
            "faults must stay the minority: {faulted}/{}",
            on_jobs.len()
        );
        // Fault plans ride the same derive-by-key scheme as session
        // seeds: replanning yields the identical trouble.
        let again = plan_campaign(StudyParams {
            faults: rv_sim::FaultScenario::default_on(),
            ..StudyParams::quick()
        });
        assert_eq!(on_jobs, again.collect_jobs());
    }

    #[test]
    fn rating_slots_respect_user_budgets() {
        let plan = full_scale();
        let mut slots: HashMap<u32, u32> = HashMap::new();
        for job in plan.collect_jobs() {
            if job.rating_slot {
                assert!(job.available, "rating slot on an unavailable job");
                *slots.entry(job.user_id).or_insert(0) += 1;
            }
        }
        for user in &plan.population.participants {
            let got = slots.get(&user.id).copied().unwrap_or(0);
            assert!(
                got <= user.clips_to_rate,
                "user {} has {got} slots, budget {}",
                user.id,
                user.clips_to_rate
            );
        }
    }
}
