//! The 98-clip playlist RealTracer shipped with.
//!
//! Clips are distributed across the eleven servers in proportion to
//! Figure 8's serving shares, with a per-site content mix (news sites serve
//! news and talk, entertainment sites more sports and music). Users play
//! the playlist sequentially from the top (RealTracer's default), so the
//! list is shuffled to make every prefix representative.

use rv_media::{Clip, ContentKind, SureStream};
use rv_sim::{SimDuration, SimRng};

use crate::servers::ServerSite;

/// A playlist entry: a clip hosted on a specific server.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaylistEntry {
    /// Index into the server roster.
    pub server: usize,
    /// The clip (name is unique across the playlist).
    pub clip: Clip,
}

/// The number of clips in the study playlist.
pub const PLAYLIST_LEN: usize = 98;

/// Content mix by site character: news outlets vs. general entertainment.
fn content_weights(site: &ServerSite) -> [f64; 4] {
    // [News, Sports, Music, Talk] — matches ContentKind::ALL order.
    if site.name.contains("CNN")
        || site.name.contains("BBC")
        || site.name.contains("ITN")
        || site.name.contains("CBC")
        || site.name.contains("ABC")
    {
        [0.55, 0.15, 0.05, 0.25]
    } else {
        [0.25, 0.30, 0.30, 0.15]
    }
}

/// Builds the playlist for a server roster, deterministically.
pub fn build_playlist(roster: &[ServerSite], rng: &mut SimRng) -> Vec<PlaylistEntry> {
    assert!(!roster.is_empty(), "empty server roster");
    // Apportion the 98 slots by serve weight, repairing rounding drift.
    let total_w: f64 = roster.iter().map(|s| s.serve_weight).sum();
    let mut slots: Vec<usize> = roster
        .iter()
        .map(|s| ((s.serve_weight / total_w) * PLAYLIST_LEN as f64).round() as usize)
        .collect();
    let mut drift = PLAYLIST_LEN as i64 - slots.iter().map(|s| *s as i64).sum::<i64>();
    let mut i = 0;
    while drift != 0 {
        let idx = i % slots.len();
        if drift > 0 {
            slots[idx] += 1;
            drift -= 1;
        } else if slots[idx] > 1 {
            slots[idx] -= 1;
            drift += 1;
        }
        i += 1;
    }

    let mut playlist = Vec::with_capacity(PLAYLIST_LEN);
    for (server_idx, (site, n)) in roster.iter().zip(&slots).enumerate() {
        let weights = content_weights(site);
        for k in 0..*n {
            let content = ContentKind::ALL[rng.weighted_index(&weights).expect("weights positive")];
            // "Even small clips lasting several minutes": 2–10 minutes.
            let minutes = rng.range(2.0..10.0);
            let name = format!(
                "{}-clip{:02}.rm",
                site.name.replace('/', "_").to_lowercase(),
                k
            );
            // Encoding practice varied wildly in 2001: half the content had
            // a full SureStream ladder, much of the rest was encoded for
            // broadband audiences only, and a sizable tail was single-rate.
            // Modem users hitting broadband-only clips is a major source of
            // the paper's slideshow-rate (<3 fps) modem sessions.
            let ladder = match rng
                .weighted_index(&[0.6, 0.25, 0.1, 0.05])
                .expect("weights")
            {
                0 => SureStream::standard(),
                1 => SureStream::broadband_only(),
                2 => SureStream::single(150_000),
                _ => SureStream::single(300_000),
            };
            playlist.push(PlaylistEntry {
                server: server_idx,
                clip: Clip::with_ladder(
                    &name,
                    SimDuration::from_secs_f64(minutes * 60.0),
                    content,
                    ladder,
                ),
            });
        }
    }
    rng.shuffle(&mut playlist);
    playlist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servers::server_roster;

    fn playlist(seed: u64) -> Vec<PlaylistEntry> {
        let roster = server_roster();
        let mut rng = SimRng::seed_from_u64(seed);
        build_playlist(&roster, &mut rng)
    }

    #[test]
    fn playlist_has_98_unique_clips() {
        let list = playlist(1);
        assert_eq!(list.len(), PLAYLIST_LEN);
        let names: std::collections::BTreeSet<&str> =
            list.iter().map(|e| e.clip.name.as_str()).collect();
        assert_eq!(names.len(), PLAYLIST_LEN, "clip names must be unique");
    }

    #[test]
    fn every_server_hosts_clips() {
        let roster = server_roster();
        let list = playlist(2);
        for (idx, site) in roster.iter().enumerate() {
            assert!(
                list.iter().any(|e| e.server == idx),
                "server {} hosts nothing",
                site.name
            );
        }
    }

    #[test]
    fn shares_follow_figure_8() {
        let roster = server_roster();
        let list = playlist(3);
        let total_w: f64 = roster.iter().map(|s| s.serve_weight).sum();
        for (idx, site) in roster.iter().enumerate() {
            let n = list.iter().filter(|e| e.server == idx).count();
            let expected = (site.serve_weight / total_w) * PLAYLIST_LEN as f64;
            assert!(
                (n as f64 - expected).abs() <= 2.0,
                "{}: {} clips, expected ~{expected:.1}",
                site.name,
                n
            );
        }
    }

    #[test]
    fn clip_durations_are_several_minutes() {
        for e in playlist(4) {
            let secs = e.clip.duration.as_secs_f64();
            assert!((120.0..=600.0).contains(&secs), "duration {secs}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(playlist(7), playlist(7));
    }

    #[test]
    fn shuffled_prefix_spans_servers() {
        // The first 20 entries (what a light user plays) must touch many
        // servers, or per-server breakdowns would be dominated by heavy
        // users.
        let list = playlist(8);
        let servers: std::collections::BTreeSet<usize> =
            list.iter().take(20).map(|e| e.server).collect();
        assert!(
            servers.len() >= 6,
            "only {} servers in prefix",
            servers.len()
        );
    }
}
