//! The user population: 63 volunteers in 12 countries.
//!
//! Per-country user counts and clip totals follow Figure 7; the
//! Massachusetts-heavy US state distribution follows Figure 9; connection
//! classes, PC classes, firewalls, and rating behavior are sampled from
//! era-calibrated distributions (see `params.rs` for the figure each knob
//! is calibrated against).

use rv_rtsp::{FirewallPolicy, TransportPreference};
use rv_sim::SimRng;
use rv_tracer::RaterProfile;

use crate::geography::{user_region, Country, UserRegion};

/// End-host network class (Figures 12, 13, 21, 27).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConnectionClass {
    /// 56k dial-up modem.
    Modem56k,
    /// DSL or cable modem.
    DslCable,
    /// Corporate T1 / campus LAN.
    T1Lan,
}

impl ConnectionClass {
    /// All classes, figure order.
    pub const ALL: [ConnectionClass; 3] = [
        ConnectionClass::Modem56k,
        ConnectionClass::DslCable,
        ConnectionClass::T1Lan,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ConnectionClass::Modem56k => "56k Modem",
            ConnectionClass::DslCable => "DSL/Cable",
            ConnectionClass::T1Lan => "T1/LAN",
        }
    }
}

/// End-host PC class (Figure 19's memory + CPU buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PcClass {
    /// Intel Pentium MMX, 24 MB — the paper's clearly-worst machines.
    PentiumMmx24,
    /// Pentium II, 32 MB.
    PentiumII32,
    /// Intel Celeron, 64–96 MB.
    Celeron64_96,
    /// Pentium II, 128–256 MB.
    PentiumII128_256,
    /// AMD, 320–512 MB.
    Amd320_512,
    /// Pentium III, 256–512 MB.
    PentiumIII256_512,
}

impl PcClass {
    /// All classes, roughly ascending power.
    pub const ALL: [PcClass; 6] = [
        PcClass::PentiumMmx24,
        PcClass::PentiumII32,
        PcClass::Celeron64_96,
        PcClass::PentiumII128_256,
        PcClass::Amd320_512,
        PcClass::PentiumIII256_512,
    ];

    /// Display name (as Figure 19 labels them).
    pub fn name(self) -> &'static str {
        match self {
            PcClass::PentiumMmx24 => "Pentium MMX / 24MB",
            PcClass::PentiumII32 => "Pentium II / 32MB",
            PcClass::Celeron64_96 => "Celeron / 64-96MB",
            PcClass::PentiumII128_256 => "Pentium II / 128-256MB",
            PcClass::Amd320_512 => "AMD / 320-512MB",
            PcClass::PentiumIII256_512 => "Pentium III / 256-512MB",
        }
    }

    /// Decode-speed factor for the player's CPU model. Only the MMX/24MB
    /// class is slow enough to bottleneck decoding (the paper's finding);
    /// the others differ modestly and non-monotonically.
    pub fn cpu_power(self) -> f64 {
        match self {
            PcClass::PentiumMmx24 => 0.10,
            PcClass::PentiumII32 => 0.55,
            PcClass::Celeron64_96 => 0.80,
            PcClass::PentiumII128_256 => 0.95,
            PcClass::Amd320_512 => 1.05,
            PcClass::PentiumIII256_512 => 1.10,
        }
    }
}

/// One study participant.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Stable user id.
    pub id: u32,
    /// Home country.
    pub country: Country,
    /// US state (two-letter) for US users, Figure 9.
    pub state: Option<&'static str>,
    /// Access network class.
    pub connection: ConnectionClass,
    /// PC class.
    pub pc: PcClass,
    /// Client-side firewall.
    pub firewall: FirewallPolicy,
    /// RealPlayer transport preference.
    pub transport_pref: TransportPreference,
    /// Downstream access rate, bits/second (the user's actual line).
    pub access_down_bps: f64,
    /// Upstream access rate, bits/second.
    pub access_up_bps: f64,
    /// Rating disposition.
    pub rater: RaterProfile,
    /// Number of clips this user plays (Figure 5).
    pub clips_to_play: u32,
    /// Number of clips this user rates (Figure 6).
    pub clips_to_rate: u32,
}

impl UserProfile {
    /// The user's figure region.
    pub fn region(&self) -> UserRegion {
        user_region(self.country)
    }
}

/// Per-country population targets: (country, users, total clips played).
/// Totals are Figure 7's bar labels; user counts apportion the paper's 63
/// participants in proportion.
pub const COUNTRY_TARGETS: [(Country, u32, u32); 12] = [
    (Country::Us, 45, 2100),
    (Country::China, 3, 142),
    (Country::Germany, 3, 131),
    (Country::France, 2, 115),
    (Country::Australia, 2, 98),
    (Country::Canada, 2, 84),
    (Country::Uk, 1, 59),
    (Country::Uae, 1, 55),
    (Country::Romania, 1, 47),
    (Country::NewZealand, 1, 32),
    (Country::India, 1, 16),
    (Country::Egypt, 1, 8),
];

/// US states and weights from Figure 9 (Massachusetts dominates).
pub const US_STATE_WEIGHTS: [(&str, f64); 17] = [
    ("VA", 8.0),
    ("WA", 12.0),
    ("ME", 16.0),
    ("TN", 22.0),
    ("CT", 30.0),
    ("NH", 40.0),
    ("CO", 50.0),
    ("IL", 60.0),
    ("TX", 75.0),
    ("CA", 90.0),
    ("WI", 100.0),
    ("DE", 110.0),
    ("MD", 120.0),
    ("MN", 140.0),
    ("NC", 200.0),
    ("FL", 320.0),
    ("MA", 1050.0),
];

/// Connection-class mix by region. The US/Canada and Europe samples skew
/// toward broadband and office LANs (the study was solicited through
/// computer-science colleagues); Australia/NZ and Asia volunteers were
/// mostly on modems — the mechanism behind Figure 15's orderings.
fn connection_weights(region: UserRegion) -> [f64; 3] {
    match region {
        UserRegion::UsCanada => [0.25, 0.40, 0.35],
        UserRegion::Europe => [0.30, 0.30, 0.40],
        UserRegion::Asia => [0.55, 0.15, 0.30],
        UserRegion::AustraliaNz => [0.85, 0.05, 0.10],
    }
}

/// PC-class mix (era-typical: mostly recent machines, a tail of relics).
/// Modem households skew old — people who had not upgraded their access
/// generally had not upgraded their PC either.
const PC_WEIGHTS_BROADBAND: [f64; 6] = [0.03, 0.07, 0.18, 0.30, 0.17, 0.25];
const PC_WEIGHTS_MODEM: [f64; 6] = [0.22, 0.22, 0.22, 0.18, 0.08, 0.08];

/// The study population: the 63 analyzable participants plus the
/// volunteers whose firewalls blocked RTSP entirely (the paper removed
/// them from every analysis but notes they existed).
#[derive(Debug, Clone)]
pub struct Population {
    /// Participants whose data enters the analysis.
    pub participants: Vec<UserProfile>,
    /// Volunteers excluded because RTSP was blocked.
    pub excluded: Vec<UserProfile>,
}

/// Builds the full participant roster, deterministically from `rng`.
///
/// `scale` in `(0, 1]` shrinks every user's clip count proportionally (for
/// fast test runs); 1.0 reproduces Figure 7's totals exactly. Above 1,
/// the population is replicated: the base 63-user roster is built at
/// per-replica fraction `scale / ceil(scale)` and cloned `ceil(scale)`
/// times with an id stride of 1,000,000, so total session count grows
/// ∝ `scale` while every stratum proportion (country, connection, PC,
/// firewall, rating mix) stays exactly identical — the scaling knob for
/// constant-memory campaign studies.
pub fn build_population(rng: &mut SimRng, scale: f64) -> Population {
    assert!(
        scale > 0.0 && scale.is_finite(),
        "scale must be positive and finite"
    );
    let replicas = if scale <= 1.0 { 1 } else { scale.ceil() as u32 };
    let scale = scale / f64::from(replicas);
    let mut users = Vec::new();
    let mut id = 0;
    for (country, n_users, total_clips) in COUNTRY_TARGETS {
        let clip_counts = apportion_clips(rng, n_users, total_clips);
        for clips in clip_counts {
            let region = user_region(country);
            let cw = connection_weights(region);
            let connection =
                ConnectionClass::ALL[rng.weighted_index(&cw).expect("weights positive")];
            let pc_weights = if connection == ConnectionClass::Modem56k {
                PC_WEIGHTS_MODEM
            } else {
                PC_WEIGHTS_BROADBAND
            };
            let pc = PcClass::ALL[rng.weighted_index(&pc_weights).expect("weights positive")];
            // Corporate LANs sit behind firewalls that often block UDP
            // (RTSP-blocking volunteers are generated separately below —
            // the paper excluded them from all analysis).
            // Corporate firewalls blocked UDP most often, but home NAT
            // gateways and ISP filters did too — the paper's TCP share is
            // spread across all connection classes (its Figure 17 finds
            // TCP and UDP frame-rate distributions nearly identical, which
            // requires the two populations to look alike).
            let block_udp_prob = match connection {
                ConnectionClass::T1Lan => 0.40,
                ConnectionClass::DslCable => 0.08,
                ConnectionClass::Modem56k => 0.20,
            };
            let firewall = if rng.chance(block_udp_prob) {
                FirewallPolicy::BlockUdp
            } else {
                FirewallPolicy::Open
            };
            let (access_down_bps, access_up_bps) = match connection {
                // Many 2001 dial-up users still connected at 28.8–33.6k, and
                // line quality degraded nominal 56k modems well below 50k.
                // Long rural loops made Australian/NZ and Asian dialup
                // worse still.
                ConnectionClass::Modem56k => {
                    let (lo, hi) = match region {
                        UserRegion::AustraliaNz => (18_000.0, 33_600.0),
                        UserRegion::Asia => (20_000.0, 38_000.0),
                        _ => (24_000.0, 48_000.0),
                    };
                    (rng.range(lo..hi), 28_800.0)
                }
                ConnectionClass::DslCable => (rng.range(256_000.0..512_000.0), 128_000.0),
                ConnectionClass::T1Lan => (1_544_000.0, 1_544_000.0),
            };
            let transport_pref = if rng.chance(0.05) {
                TransportPreference::ForceTcp
            } else {
                TransportPreference::Auto
            };
            let state = (country == Country::Us).then(|| {
                let weights: Vec<f64> = US_STATE_WEIGHTS.iter().map(|(_, w)| *w).collect();
                US_STATE_WEIGHTS[rng.weighted_index(&weights).expect("positive")].0
            });
            let clips_to_play = ((f64::from(clips) * scale).round() as u32).max(1);
            // Figure 6: half the users rated ~3 clips, some none, a few many.
            let clips_to_rate = if rng.chance(0.18) {
                0
            } else if rng.chance(0.55) {
                3
            } else {
                rng.range(4..=20u32).min(clips_to_play)
            };
            users.push(UserProfile {
                id,
                country,
                state,
                connection,
                pc,
                firewall,
                transport_pref,
                access_down_bps,
                access_up_bps,
                rater: RaterProfile::sample(rng),
                clips_to_play,
                clips_to_rate: clips_to_rate.min(clips_to_play),
            });
            id += 1;
        }
    }
    // "Several users that tried to participate were behind firewalls that
    // did not allow RTSP packets through" — model them as a handful of
    // extra volunteers the analysis drops.
    let excluded = (0..4)
        .map(|i| {
            let mut u = users[rng.range(0..users.len())].clone();
            u.id = 1000 + i;
            u.firewall = FirewallPolicy::BlockRtsp;
            u.connection = ConnectionClass::T1Lan;
            u
        })
        .collect();
    // Replication happens after every RNG draw, so a replicated
    // population is the base population (at the per-replica fraction)
    // repeated verbatim: identical strata, disjoint user ids (the base
    // roster and the excluded volunteers all sit far below the stride).
    if replicas > 1 {
        let base = users.clone();
        for r in 1..replicas {
            users.extend(base.iter().map(|u| {
                let mut c = u.clone();
                c.id = u.id + r * 1_000_000;
                c
            }));
        }
    }
    Population {
        participants: users,
        excluded,
    }
}

/// Splits `total` clips among `n` users with a Figure 5-like spread
/// (median ≈ 40, max 98, a tail of small counts), preserving the total.
fn apportion_clips(rng: &mut SimRng, n: u32, total: u32) -> Vec<u32> {
    if n == 1 {
        return vec![total.min(98)];
    }
    // Log-normal weights create the long-tail spread.
    let weights: Vec<f64> = (0..n).map(|_| rng.log_normal(0.0, 0.55)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut counts: Vec<u32> = weights
        .iter()
        .map(|w| ((w / wsum) * f64::from(total)).round().clamp(2.0, 98.0) as u32)
        .collect();
    // Repair rounding / clamping drift toward the exact total.
    let mut diff = i64::from(total) - counts.iter().map(|c| i64::from(*c)).sum::<i64>();
    let mut i = 0;
    while diff != 0 && i < 10_000 {
        let idx = i % counts.len();
        if diff > 0 && counts[idx] < 98 {
            counts[idx] += 1;
            diff -= 1;
        } else if diff < 0 && counts[idx] > 2 {
            counts[idx] -= 1;
            diff += 1;
        }
        i += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(seed: u64) -> Vec<UserProfile> {
        let mut rng = SimRng::seed_from_u64(seed);
        build_population(&mut rng, 1.0).participants
    }

    #[test]
    fn sixty_three_users_twelve_countries() {
        let users = population(1);
        assert_eq!(users.len(), 63);
        let mut rng = SimRng::seed_from_u64(1);
        let pop = build_population(&mut rng, 1.0);
        assert!(!pop.excluded.is_empty());
        assert!(pop
            .excluded
            .iter()
            .all(|u| u.firewall == FirewallPolicy::BlockRtsp));
        let countries: std::collections::BTreeSet<Country> =
            users.iter().map(|u| u.country).collect();
        assert_eq!(countries.len(), 12);
    }

    #[test]
    fn clip_totals_match_figure_7() {
        let users = population(2);
        for (country, _, total) in COUNTRY_TARGETS {
            let got: u32 = users
                .iter()
                .filter(|u| u.country == country)
                .map(|u| u.clips_to_play)
                .sum();
            assert_eq!(got, total, "country {country:?}");
        }
    }

    #[test]
    fn us_users_have_states_others_do_not() {
        let users = population(3);
        for u in &users {
            assert_eq!(u.state.is_some(), u.country == Country::Us);
        }
        // Massachusetts dominates.
        let ma = users.iter().filter(|u| u.state == Some("MA")).count();
        let us = users.iter().filter(|u| u.country == Country::Us).count();
        assert!(ma * 2 >= us / 2, "MA users {ma} of {us}");
    }

    #[test]
    fn clips_per_user_in_figure_5_range() {
        let users = population(4);
        for u in &users {
            assert!((1..=98).contains(&u.clips_to_play), "{}", u.clips_to_play);
            assert!(u.clips_to_rate <= u.clips_to_play);
        }
        // Median near 40 (Figure 5: half the users played 40+).
        let mut counts: Vec<u32> = users.iter().map(|u| u.clips_to_play).collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        assert!((25..=60).contains(&median), "median {median}");
    }

    #[test]
    fn aus_nz_users_mostly_modems() {
        // Aggregate over many seeds: the regional skew must be visible.
        let mut aus_modem = 0;
        let mut aus_total = 0;
        for seed in 0..30 {
            for u in population(seed) {
                if u.region() == UserRegion::AustraliaNz {
                    aus_total += 1;
                    if u.connection == ConnectionClass::Modem56k {
                        aus_modem += 1;
                    }
                }
            }
        }
        let frac = f64::from(aus_modem) / f64::from(aus_total);
        assert!(frac > 0.55, "AU/NZ modem fraction {frac}");
    }

    #[test]
    fn scale_shrinks_counts() {
        let mut rng = SimRng::seed_from_u64(5);
        let full = build_population(&mut rng, 1.0).participants;
        let mut rng = SimRng::seed_from_u64(5);
        let small = build_population(&mut rng, 0.1).participants;
        let full_total: u32 = full.iter().map(|u| u.clips_to_play).sum();
        let small_total: u32 = small.iter().map(|u| u.clips_to_play).sum();
        assert!(small_total < full_total / 5);
        assert!(small.iter().all(|u| u.clips_to_play >= 1));
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        let mut rng = SimRng::seed_from_u64(6);
        build_population(&mut rng, 0.0);
    }

    #[test]
    fn scale_above_one_replicates_with_identical_strata() {
        let mut rng = SimRng::seed_from_u64(7);
        let base = build_population(&mut rng, 1.0);
        let mut rng = SimRng::seed_from_u64(7);
        let big = build_population(&mut rng, 3.0);
        assert_eq!(big.participants.len(), base.participants.len() * 3);
        // Exactly the base roster, repeated with an id stride.
        for (i, u) in big.participants.iter().enumerate() {
            let b = &base.participants[i % base.participants.len()];
            let replica = (i / base.participants.len()) as u32;
            assert_eq!(u.id, b.id + replica * 1_000_000);
            assert_eq!(u.country, b.country);
            assert_eq!(u.connection, b.connection);
            assert_eq!(u.pc, b.pc);
            assert_eq!(u.clips_to_play, b.clips_to_play);
            assert_eq!(u.clips_to_rate, b.clips_to_rate);
        }
        // Exclusions are not replicated.
        assert_eq!(big.excluded.len(), base.excluded.len());
        // Ids never collide.
        let ids: std::collections::BTreeSet<u32> = big.participants.iter().map(|u| u.id).collect();
        assert_eq!(ids.len(), big.participants.len());
    }

    #[test]
    fn fractional_scale_above_one_grows_sessions_proportionally() {
        let mut rng = SimRng::seed_from_u64(8);
        let full: u32 = build_population(&mut rng, 1.0)
            .participants
            .iter()
            .map(|u| u.clips_to_play)
            .sum();
        let mut rng = SimRng::seed_from_u64(8);
        let grown: u32 = build_population(&mut rng, 2.5)
            .participants
            .iter()
            .map(|u| u.clips_to_play)
            .sum();
        // 2.5× the sessions, within per-user rounding slack.
        let ratio = f64::from(grown) / f64::from(full);
        assert!((2.2..=2.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_population() {
        let a = population(9);
        let b = population(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.country, y.country);
            assert_eq!(x.clips_to_play, y.clips_to_play);
            assert_eq!(x.connection, y.connection);
        }
    }
}
