//! The campaign-level failure report.
//!
//! The paper's Section IV leads with the fraction of clip plays that were
//! *unsuccessful* — never connected, died mid-stream, or came back
//! unusable — before any quality figure is computed over the survivors.
//! [`FailureReport`] is that accounting for a simulated campaign: every
//! attempt bucketed by its [`SessionOutcome`](rv_tracer::SessionOutcome)
//! label, with failure rates broken down by server, server country, and
//! negotiated transport, plus the resilience ledger (sessions that
//! retried, sessions that fell back from UDP to TCP).

use std::collections::BTreeMap;

use rv_rtsp::TransportKind;

use crate::accumulate::{FailureTallies, OutcomeTally};
use crate::campaign::SessionRecord;

/// Outcome counts for one group of attempts (a server, a country, a
/// transport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureBreakdown {
    /// Group label (server name, country, transport).
    pub label: String,
    /// Attempts in the group.
    pub attempts: usize,
    /// Clean plays.
    pub played: usize,
    /// Plays that limped home (retries, rebuffer storms, TCP fallback).
    pub degraded: usize,
    /// Everything else: unavailable, blocked, timed out, server down,
    /// starved, aborted, failed.
    pub unsuccessful: usize,
}

impl FailureBreakdown {
    fn new(label: String) -> Self {
        FailureBreakdown {
            label,
            attempts: 0,
            played: 0,
            degraded: 0,
            unsuccessful: 0,
        }
    }

    fn add(&mut self, r: &SessionRecord) {
        self.attempts += 1;
        if !r.played() {
            self.unsuccessful += 1;
        } else if r.metrics.outcome == rv_tracer::SessionOutcome::Played {
            self.played += 1;
        } else {
            self.degraded += 1;
        }
    }

    /// Unsuccessful attempts as a fraction of all attempts.
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.unsuccessful as f64 / self.attempts as f64
        }
    }
}

/// The failure taxonomy of a whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// Total clip-play attempts.
    pub attempts: usize,
    /// Count per outcome label, alphabetical (deterministic).
    pub outcomes: Vec<(&'static str, usize)>,
    /// Sessions that played only after at least one connection retry.
    pub retried: usize,
    /// Sessions that renegotiated UDP down to TCP mid-stream.
    pub fallbacks: usize,
    /// Per-server breakdown, in roster-name order.
    pub by_server: Vec<FailureBreakdown>,
    /// Per-server-country breakdown.
    pub by_country: Vec<FailureBreakdown>,
    /// Per-negotiated-transport breakdown. Attempts that never reached
    /// transport negotiation (unavailable clips) are excluded here; they
    /// still count in every other table.
    pub by_transport: Vec<FailureBreakdown>,
}

impl FailureReport {
    /// Builds the report from streaming [`FailureTallies`] — the one-pass
    /// path: the executor folded every attempt into the tallies as it
    /// finished, so no record scan happens here. The tallies' `BTreeMap`s
    /// carry the same orderings the record scan produced, so both
    /// constructors yield identical reports.
    pub fn from_tallies(tallies: &FailureTallies) -> Self {
        let breakdown = |label: String, t: &OutcomeTally| FailureBreakdown {
            label,
            attempts: t.attempts as usize,
            played: t.played as usize,
            degraded: t.degraded as usize,
            unsuccessful: t.unsuccessful as usize,
        };
        FailureReport {
            attempts: tallies.outcomes.values().map(|n| *n as usize).sum(),
            outcomes: tallies
                .outcomes
                .iter()
                .map(|(label, n)| (*label, *n as usize))
                .collect(),
            retried: tallies.retried as usize,
            fallbacks: tallies.fallbacks as usize,
            by_server: tallies
                .by_server
                .iter()
                .map(|(name, t)| breakdown(name.to_string(), t))
                .collect(),
            by_country: tallies
                .by_country
                .iter()
                .map(|(name, t)| breakdown(name.clone(), t))
                .collect(),
            by_transport: tallies
                .by_transport
                .iter()
                .map(|(name, t)| breakdown(name.to_string(), t))
                .collect(),
        }
    }

    /// Tallies `records` into the report. Grouping maps are ordered, so
    /// the report is as deterministic as the records themselves.
    pub fn from_records(records: &[SessionRecord]) -> Self {
        let mut outcomes: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut retried = 0;
        let mut fallbacks = 0;
        let mut by_server: BTreeMap<&str, FailureBreakdown> = BTreeMap::new();
        let mut by_country: BTreeMap<String, FailureBreakdown> = BTreeMap::new();
        let mut by_transport: BTreeMap<&'static str, FailureBreakdown> = BTreeMap::new();

        for r in records {
            *outcomes.entry(r.metrics.outcome.label()).or_insert(0) += 1;
            if let rv_tracer::SessionOutcome::PlayedDegraded {
                retries, fell_back, ..
            } = r.metrics.outcome
            {
                retried += usize::from(retries > 0);
                fallbacks += usize::from(fell_back);
            }
            by_server
                .entry(r.server_name)
                .or_insert_with(|| FailureBreakdown::new(r.server_name.to_string()))
                .add(r);
            by_country
                .entry(format!("{:?}", r.server_country))
                .or_insert_with(|| FailureBreakdown::new(format!("{:?}", r.server_country)))
                .add(r);
            if r.available {
                let proto = match r.metrics.protocol {
                    TransportKind::Udp => "udp",
                    TransportKind::Tcp => "tcp",
                };
                by_transport
                    .entry(proto)
                    .or_insert_with(|| FailureBreakdown::new(proto.to_string()))
                    .add(r);
            }
        }

        FailureReport {
            attempts: records.len(),
            outcomes: outcomes.into_iter().collect(),
            retried,
            fallbacks,
            by_server: by_server.into_values().collect(),
            by_country: by_country.into_values().collect(),
            by_transport: by_transport.into_values().collect(),
        }
    }

    /// Total unsuccessful attempts.
    pub fn unsuccessful(&self) -> usize {
        self.by_server.iter().map(|b| b.unsuccessful).sum()
    }

    /// Campaign-wide unsuccessful fraction — the number the paper
    /// reports before any figure.
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.unsuccessful() as f64 / self.attempts as f64
        }
    }
}

fn breakdown_table(
    f: &mut std::fmt::Formatter<'_>,
    heading: &str,
    rows: &[FailureBreakdown],
) -> std::fmt::Result {
    writeln!(
        f,
        "{heading:<24} {:>8} {:>7} {:>9} {:>7} {:>7}",
        "attempts", "played", "degraded", "failed", "rate"
    )?;
    for b in rows {
        writeln!(
            f,
            "{:<24} {:>8} {:>7} {:>9} {:>7} {:>6.1}%",
            b.label,
            b.attempts,
            b.played,
            b.degraded,
            b.unsuccessful,
            b.failure_rate() * 100.0,
        )?;
    }
    Ok(())
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "failure report: {} attempts, {} unsuccessful ({:.1}%), {} retried, {} fell back to TCP",
            self.attempts,
            self.unsuccessful(),
            self.failure_rate() * 100.0,
            self.retried,
            self.fallbacks,
        )?;
        writeln!(f)?;
        writeln!(f, "{:<24} {:>8} {:>7}", "outcome", "count", "share")?;
        for (label, count) in &self.outcomes {
            writeln!(
                f,
                "{label:<24} {count:>8} {:>6.1}%",
                *count as f64 / self.attempts.max(1) as f64 * 100.0
            )?;
        }
        writeln!(f)?;
        breakdown_table(f, "by server", &self.by_server)?;
        writeln!(f)?;
        breakdown_table(f, "by server country", &self.by_country)?;
        writeln!(f)?;
        breakdown_table(f, "by transport", &self.by_transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, run_campaign_with_records, StudyParams};
    use rv_sim::FaultScenario;

    #[test]
    fn report_accounts_for_every_attempt() {
        let data = run_campaign_with_records(StudyParams {
            scale: 0.04,
            ..StudyParams::default()
        })
        .unwrap();
        let report = FailureReport::from_records(data.records());
        assert_eq!(report.attempts, data.records().len());
        let outcome_total: usize = report.outcomes.iter().map(|(_, c)| c).sum();
        assert_eq!(outcome_total, report.attempts);
        let server_total: usize = report.by_server.iter().map(|b| b.attempts).sum();
        assert_eq!(server_total, report.attempts);
        // Fault-free campaigns still fail some attempts (unavailable
        // clips, firewalled users), never via the fault taxonomy.
        assert!(report.unsuccessful() > 0);
        assert_eq!(report.retried, 0);
        assert_eq!(report.fallbacks, 0);
        let line = report.to_string();
        assert!(line.contains("by server"), "{line}");
        assert!(line.contains("by transport"), "{line}");
    }

    #[test]
    fn tallies_and_records_build_identical_reports() {
        for faults in [FaultScenario::off(), FaultScenario::default_on()] {
            let data = run_campaign_with_records(StudyParams {
                scale: 0.04,
                faults,
                ..StudyParams::default()
            })
            .unwrap();
            let from_records = FailureReport::from_records(data.records());
            let from_tallies = FailureReport::from_tallies(&data.aggregates.failures);
            assert_eq!(from_records, from_tallies);
        }
    }

    #[test]
    fn faults_raise_the_failure_rate() {
        let base = StudyParams {
            scale: 0.08,
            ..StudyParams::default()
        };
        let clean = run_campaign(base).unwrap();
        let faulted = run_campaign(StudyParams {
            faults: FaultScenario::default_on(),
            ..base
        })
        .unwrap();
        // Streaming path: reports come straight off the tallies.
        let clean_report = clean.failure_report();
        let fault_report = faulted.failure_report();
        assert!(
            fault_report.failure_rate() > clean_report.failure_rate(),
            "faults {:.3} vs clean {:.3}",
            fault_report.failure_rate(),
            clean_report.failure_rate()
        );
        // The taxonomy's fault-only labels appear.
        let labels: Vec<&str> = fault_report.outcomes.iter().map(|(l, _)| *l).collect();
        assert!(
            labels.iter().any(|l| *l == "served-down-or-timed-out"
                || *l == "timed-out"
                || *l == "server-down"
                || *l == "starved"),
            "{labels:?}"
        );
    }
}
