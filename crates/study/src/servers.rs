//! The eleven RealServer sites of the study.
//!
//! Names, countries, and per-server clip-unavailability rates follow
//! Figure 10; the serving shares follow Figure 8. Capacity and load model
//! the paper's finding that high-bandwidth users increasingly see the
//! *server side* as the bottleneck: popular sites run their access links at
//! higher utilization.

use rv_net::CongestionParams;
use rv_sim::{SimDuration, SimRng};

use crate::geography::{server_region, Country, ServerRegion};

/// One RealServer site.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSite {
    /// Site label as the paper prints it (Figure 10).
    pub name: &'static str,
    /// Hosting country.
    pub country: Country,
    /// Fraction of requests to this site that find the clip unavailable
    /// (Figure 10; overall mean ≈ 10 %).
    pub unavailability: f64,
    /// Relative share of all clips served (Figure 8, by country).
    pub serve_weight: f64,
    /// Server access-link rate, bits/second.
    pub access_bps: f64,
    /// Mean utilization of the access link by *other* sessions: the
    /// server-side bottleneck.
    pub load: f64,
    /// Whether this server's operators enabled UDP delivery (most did).
    pub prefers_udp: bool,
}

impl ServerSite {
    /// The site's figure region.
    pub fn region(&self) -> ServerRegion {
        server_region(self.country)
    }

    /// The access-link cross-traffic model implied by `load`.
    pub fn access_congestion(&self) -> CongestionParams {
        CongestionParams {
            mean_level: self.load,
            variability: 0.12,
            mean_epoch: SimDuration::from_secs(3),
            burst_prob: 0.04 + self.load * 0.08,
        }
    }

    /// Samples whether a clip request finds the clip unavailable.
    pub fn clip_unavailable(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.unavailability)
    }
}

/// The full server roster.
///
/// Figure 10 labels ten sites; the paper's text counts eleven servers in
/// eight countries, so a second US entertainment site (US/MSNBC) completes
/// the roster — its share is folded into the US total of Figure 8.
pub fn server_roster() -> Vec<ServerSite> {
    vec![
        ServerSite {
            name: "AUS/ABC",
            country: Country::Australia,
            unavailability: 0.10,
            serve_weight: 294.0,
            access_bps: 4_000_000.0,
            load: 0.25,
            prefers_udp: true,
        },
        ServerSite {
            name: "BRZ/UOL",
            country: Country::Brazil,
            unavailability: 0.22,
            serve_weight: 297.0,
            access_bps: 3_000_000.0,
            load: 0.35,
            prefers_udp: true,
        },
        ServerSite {
            name: "CAN/CBC",
            country: Country::Canada,
            unavailability: 0.03,
            serve_weight: 126.0,
            access_bps: 6_000_000.0,
            load: 0.20,
            prefers_udp: true,
        },
        ServerSite {
            name: "CHI/CCTV",
            country: Country::China,
            unavailability: 0.22,
            serve_weight: 260.0,
            access_bps: 2_000_000.0,
            load: 0.45,
            prefers_udp: true,
        },
        ServerSite {
            name: "ITA/Kwvideo",
            country: Country::Italy,
            unavailability: 0.05,
            serve_weight: 240.0,
            access_bps: 4_000_000.0,
            load: 0.25,
            prefers_udp: false,
        },
        ServerSite {
            name: "JAP/FUJITV",
            country: Country::Japan,
            unavailability: 0.08,
            serve_weight: 184.0,
            access_bps: 4_000_000.0,
            load: 0.35,
            prefers_udp: true,
        },
        ServerSite {
            name: "UK/BBC",
            country: Country::Uk,
            unavailability: 0.05,
            serve_weight: 280.0,
            access_bps: 8_000_000.0,
            load: 0.25,
            prefers_udp: true,
        },
        ServerSite {
            name: "UK/ITN",
            country: Country::Uk,
            unavailability: 0.17,
            serve_weight: 136.0,
            access_bps: 4_000_000.0,
            load: 0.30,
            prefers_udp: false,
        },
        ServerSite {
            name: "US/ABC",
            country: Country::Us,
            unavailability: 0.04,
            serve_weight: 430.0,
            access_bps: 10_000_000.0,
            load: 0.30,
            prefers_udp: true,
        },
        ServerSite {
            name: "US/CNN",
            country: Country::Us,
            unavailability: 0.02,
            serve_weight: 430.0,
            access_bps: 10_000_000.0,
            load: 0.35,
            prefers_udp: true,
        },
        ServerSite {
            name: "US/MSNBC",
            country: Country::Us,
            unavailability: 0.06,
            serve_weight: 215.0,
            access_bps: 8_000_000.0,
            load: 0.30,
            prefers_udp: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn roster_has_eleven_servers_in_eight_countries() {
        let roster = server_roster();
        assert_eq!(roster.len(), 11);
        let countries: BTreeSet<Country> = roster.iter().map(|s| s.country).collect();
        assert_eq!(countries.len(), 8);
    }

    #[test]
    fn mean_unavailability_is_about_ten_percent() {
        let roster = server_roster();
        let mean: f64 = roster.iter().map(|s| s.unavailability).sum::<f64>() / roster.len() as f64;
        assert!((mean - 0.10).abs() < 0.03, "mean unavailability {mean}");
    }

    #[test]
    fn us_dominates_serve_share() {
        let roster = server_roster();
        let total: f64 = roster.iter().map(|s| s.serve_weight).sum();
        let us: f64 = roster
            .iter()
            .filter(|s| s.country == Country::Us)
            .map(|s| s.serve_weight)
            .sum();
        // Figure 8: US served 1075 of ~2892 clips.
        assert!((us / total - 0.37).abs() < 0.05, "us share {}", us / total);
    }

    #[test]
    fn all_figure_regions_are_covered() {
        let roster = server_roster();
        let regions: BTreeSet<ServerRegion> = roster.iter().map(|s| s.region()).collect();
        assert_eq!(regions.len(), ServerRegion::ALL.len());
    }

    #[test]
    fn unavailability_sampling_matches_rate() {
        let roster = server_roster();
        let brz = roster.iter().find(|s| s.name == "BRZ/UOL").unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let unavailable = (0..n).filter(|_| brz.clip_unavailable(&mut rng)).count();
        let frac = unavailable as f64 / n as f64;
        assert!((frac - 0.22).abs() < 0.01, "frac {frac}");
    }
}
