//! Single-session flight recording: replays one planned session with the
//! [`rv_sim::trace`] recorder armed and returns the captured timeline.
//!
//! This is the engine behind `repro trace`. It runs strictly serially on
//! the calling thread (the recorder's sink is thread-local) and replays
//! the *exact* session the campaign would run: same plan, same derived
//! seed, same fault plan — so a trace is a faithful zoom-in on one row of
//! the campaign's output, not a reconstruction.

use rv_sim::trace::{self, TraceEvent, TraceRecord};
use rv_sim::{CounterSet, SimTime};
use rv_tracer::{SessionMetrics, WorldScratch};

use crate::campaign::StudyParams;
use crate::executor::gateway_spec;
use crate::plan::plan_campaign;
use crate::worldbuild::build_session_world_gw;

/// One traced session: the event timeline plus the session's record-level
/// results, for cross-checking the trace against the campaign output.
#[derive(Debug)]
pub struct SessionTrace {
    /// Participant id the session was traced for.
    pub user_id: u32,
    /// Clip name requested.
    pub clip: String,
    /// Whether the planned attempt found the clip available. Unavailable
    /// attempts simulate nothing; their trace is begin/end only.
    pub available: bool,
    /// `true` when the traced job carried a non-empty fault plan.
    pub faulted: bool,
    /// The captured timeline, time-sorted.
    pub records: Vec<TraceRecord>,
    /// The session's measured statistics.
    pub metrics: SessionMetrics,
    /// The session's deterministic counters — identical to the values
    /// this session contributes to the campaign totals.
    pub counters: CounterSet,
}

impl SessionTrace {
    /// The timeline as JSONL, one event object per line.
    pub fn to_jsonl(&self) -> String {
        trace::to_jsonl(&self.records)
    }

    /// The timeline as a Chrome `trace_event` JSON document.
    pub fn to_chrome_trace(&self) -> String {
        trace::to_chrome_trace(&self.records)
    }
}

/// Why a trace request could not be satisfied. Carries the valid nearby
/// keys so the caller can print an actionable message instead of writing
/// an empty trace.
#[derive(Debug)]
pub enum TraceError {
    /// No participant has the requested id.
    UnknownUser {
        /// The id that was requested.
        requested: u32,
        /// Valid participant ids closest to the request.
        nearby: Vec<u32>,
    },
    /// The participant exists but never plays the requested clip.
    UnknownClip {
        /// The participant whose playlist was searched.
        user_id: u32,
        /// The clip name that was requested.
        requested: String,
        /// Clip names the participant actually plays, in play order.
        available: Vec<String>,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UnknownUser { requested, nearby } => {
                write!(f, "no participant with id {requested}; nearby valid ids: ")?;
                for (i, id) in nearby.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{id}")?;
                }
                Ok(())
            }
            TraceError::UnknownClip {
                user_id,
                requested,
                available,
            } => {
                write!(
                    f,
                    "user {user_id} never plays \"{requested}\"; their clips: "
                )?;
                for (i, name) in available.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Replays the planned session `(user_id, clip)` under `params` with the
/// flight recorder armed and returns the captured timeline.
///
/// The campaign's worker count is irrelevant here — the session runs on
/// the calling thread, whose thread-local recorder captures it. An
/// unknown user or clip is a typed [`TraceError`] listing nearby valid
/// keys; no trace is produced.
pub fn trace_session(
    params: StudyParams,
    user_id: u32,
    clip: &str,
) -> Result<SessionTrace, TraceError> {
    let plan = plan_campaign(params);
    let Some(user_idx) = plan
        .population
        .participants
        .iter()
        .position(|u| u.id == user_id)
    else {
        // Closest valid ids by numeric distance, ties toward the smaller.
        let mut ids: Vec<u32> = plan.population.participants.iter().map(|u| u.id).collect();
        ids.sort_by_key(|id| (id.abs_diff(user_id), *id));
        ids.truncate(8);
        ids.sort_unstable();
        return Err(TraceError::UnknownUser {
            requested: user_id,
            nearby: ids,
        });
    };

    let jobs = plan.user_jobs(user_idx);
    let Some(job) = jobs
        .iter()
        .find(|j| plan.clip_names[j.playlist_slot].as_ref() == clip)
    else {
        let mut available: Vec<String> = Vec::new();
        for j in &jobs {
            let name = plan.clip_names[j.playlist_slot].as_ref();
            if !available.iter().any(|n| n == name) {
                available.push(name.to_string());
            }
        }
        return Err(TraceError::UnknownClip {
            user_id,
            requested: clip.to_string(),
            available,
        });
    };

    let user = &plan.population.participants[job.user];
    let site = &plan.roster[job.server];
    let entry = &plan.playlist[job.playlist_slot];

    trace::start();
    trace::emit(SimTime::ZERO, || TraceEvent::SessionBegin {
        user: user_id,
        clip: clip.to_string(),
    });
    let (metrics, counters) = if job.available {
        let mut scratch = WorldScratch::default();
        // Same gateway decision the campaign executor would make, so the
        // trace stays a faithful zoom-in at any replica count.
        let gateway = gateway_spec(&params, job);
        let mut world = build_session_world_gw(
            user,
            site,
            &entry.clip,
            params.watch_limit,
            job.session_seed,
            &job.fault_plan,
            gateway.as_ref(),
            &mut scratch,
        );
        let metrics = world.run(params.session_deadline);
        (metrics, world.counters())
    } else {
        // The clip was unavailable at request time: nothing simulated.
        trace::emit(SimTime::ZERO, || TraceEvent::SessionEnd {
            outcome: "unavailable",
        });
        (
            SessionMetrics::failed(
                rv_tracer::SessionOutcome::Unavailable,
                rv_rtsp::TransportKind::Tcp,
            ),
            CounterSet::new(),
        )
    };
    let records = trace::finish();

    Ok(SessionTrace {
        user_id,
        clip: clip.to_string(),
        available: job.available,
        faulted: !job.fault_plan.is_empty(),
        records,
        metrics,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_user_lists_nearby_ids() {
        let err = trace_session(StudyParams::quick(), 9_999, "whatever").unwrap_err();
        match err {
            TraceError::UnknownUser { requested, nearby } => {
                assert_eq!(requested, 9_999);
                assert!(!nearby.is_empty() && nearby.len() <= 8);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn unknown_clip_lists_the_users_playlist() {
        let params = StudyParams::quick();
        let plan = plan_campaign(params);
        let user_id = plan.population.participants[0].id;
        let err = trace_session(params, user_id, "no-such-clip.rm").unwrap_err();
        match err {
            TraceError::UnknownClip { available, .. } => {
                assert!(!available.is_empty());
                // The listed keys are themselves valid.
                let trace = trace_session(params, user_id, &available[0]).unwrap();
                assert_eq!(trace.user_id, user_id);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn traced_session_matches_the_campaign_record() {
        let params = StudyParams::quick();
        let plan = plan_campaign(params);
        let jobs = plan.user_jobs(0);
        let job = jobs.iter().find(|j| j.available).expect("available job");
        let clip = plan.clip_names[job.playlist_slot].to_string();
        let trace = trace_session(params, job.user_id, &clip).unwrap();
        // The trace replays the exact planned session.
        let record = crate::executor::run_job(&plan, job);
        assert_eq!(trace.metrics, record.metrics);
        assert_eq!(trace.counters, record.counters);
        // Begin and end frame the timeline. (End may not be the literal
        // last record: stacks settle at the finish instant after the
        // client is done, and the sort is stable within an instant.)
        assert_eq!(trace.records.first().unwrap().ev.name(), "session_begin");
        assert!(trace.records.iter().any(|r| r.ev.name() == "session_end"));
        // And the recorder is disarmed again.
        assert!(!rv_sim::trace::active());
    }
}
