//! Builds the simulated world for one streaming session.
//!
//! Topology: `client — access link — cloud A — transit — cloud B — server
//! access — server`. The user's access class sets the first hop, the
//! zone pair sets the transit leg, and the server's capacity and load set
//! the last hop — the three candidate bottlenecks whose interplay the
//! paper's Figures 12–15 dissect.

use rv_media::Clip;
use rv_net::{Addr, CongestionParams, HostId, LinkId, LinkParams, NetBuilder};
use rv_server::{Catalog, RealServer, ServerConfig};
use rv_sim::{FaultPlan, SimDuration, SimRng};
use rv_tracer::{
    client_data_tcp_config, ports, ClientConfig, FaultLinkMap, GatewayEndpoint, SessionWorld,
    TracerClient, WorldScratch,
};
use rv_transport::{Stack, TcpConfig};

use crate::gateway::{route as gateway_route, GatewaySpec};
use crate::geography::{path_profile, zone};
use crate::population::{ConnectionClass, UserProfile};
use crate::servers::ServerSite;

/// Access-link parameters for a user's connection class.
fn access_links(user: &UserProfile) -> (LinkParams, LinkParams) {
    match user.connection {
        ConnectionClass::Modem56k => {
            // Modems add ~60 ms of latency each way and have deep buffers
            // relative to their rate — the jitter machine of Figure 21.
            // Phone-line retrains and shared ISP dial-up backhaul appear
            // as heavy-tailed throughput dips with correlated loss.
            let line_noise = CongestionParams {
                mean_level: 0.08,
                variability: 0.10,
                mean_epoch: SimDuration::from_secs(4),
                burst_prob: 0.045,
            };
            let down = LinkParams::lan()
                .rate(user.access_down_bps)
                .delay(SimDuration::from_millis(60))
                .queue(10 * 1024)
                .loss(0.003)
                .cross_traffic(line_noise, 0.025);
            let up = LinkParams::lan()
                .rate(user.access_up_bps)
                .delay(SimDuration::from_millis(60))
                .queue(8 * 1024)
                .loss(0.003)
                .cross_traffic(line_noise, 0.025);
            (down, up)
        }
        ConnectionClass::DslCable => {
            let down = LinkParams::lan()
                .rate(user.access_down_bps)
                .delay(SimDuration::from_millis(8))
                .queue(48 * 1024)
                .loss(0.0005);
            let up = LinkParams::lan()
                .rate(user.access_up_bps)
                .delay(SimDuration::from_millis(8))
                .queue(16 * 1024)
                .loss(0.0005);
            (down, up)
        }
        ConnectionClass::T1Lan => {
            // Shared office uplink: fast but contended — slightly more
            // variance than a dedicated DSL line (the paper's explanation
            // for DSL's better jitter, Figure 21).
            let contention = CongestionParams {
                mean_level: 0.28,
                variability: 0.20,
                mean_epoch: SimDuration::from_secs(2),
                burst_prob: 0.07,
            };
            let link = LinkParams::lan()
                .rate(user.access_down_bps)
                .delay(SimDuration::from_millis(3))
                .queue(96 * 1024)
                .cross_traffic(contention, 0.01);
            (link, link)
        }
    }
}

/// Which concrete links realize each abstract fault segment in the
/// study topology. Link ids follow construction order below: the access
/// pair first (down, up), then the transit duplex, then server access.
fn study_fault_links() -> FaultLinkMap {
    FaultLinkMap {
        client_access: vec![LinkId(0), LinkId(1)],
        transit: vec![LinkId(2), LinkId(3)],
        server_access: vec![LinkId(4), LinkId(5)],
    }
}

/// Builds the complete [`SessionWorld`] for `user` fetching `clip` from
/// `site`. `session_seed` isolates this session's randomness;
/// `fault_plan` scripts this session's trouble (pass
/// [`FaultPlan::none`] for a healthy world — arming an empty plan is
/// free).
pub fn build_session_world(
    user: &UserProfile,
    site: &ServerSite,
    clip: &Clip,
    watch_limit: SimDuration,
    session_seed: u64,
    fault_plan: &FaultPlan,
) -> SessionWorld {
    let mut scratch = WorldScratch::default();
    build_session_world_with(
        user,
        site,
        clip,
        watch_limit,
        session_seed,
        fault_plan,
        &mut scratch,
    )
}

/// As [`build_session_world`] but recycling storage harvested from a
/// previously retired world. Executors thread one [`WorldScratch`] per
/// worker through consecutive sessions; the worlds built are
/// bit-identical to fresh ones, they just reuse warm allocations.
#[allow(clippy::too_many_arguments)]
pub fn build_session_world_with(
    user: &UserProfile,
    site: &ServerSite,
    clip: &Clip,
    watch_limit: SimDuration,
    session_seed: u64,
    fault_plan: &FaultPlan,
    scratch: &mut WorldScratch,
) -> SessionWorld {
    build_session_world_gw(
        user,
        site,
        clip,
        watch_limit,
        session_seed,
        fault_plan,
        None,
        scratch,
    )
}

/// As [`build_session_world_with`] but with an optional gateway tier:
/// `Some(spec)` stands up `spec.replicas` servers for the site (replica 0
/// is the classic server; replicas 1.. get their own hosts behind cloud
/// B), seeds each with a standing load, arms admission control, and hands
/// the client the gateway's replica order to walk on busy/crash. `None`
/// — and any spec with `replicas <= 1` and `capacity == 0` — builds the
/// single-server world bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn build_session_world_gw(
    user: &UserProfile,
    site: &ServerSite,
    clip: &Clip,
    watch_limit: SimDuration,
    session_seed: u64,
    fault_plan: &FaultPlan,
    gateway: Option<&GatewaySpec>,
    scratch: &mut WorldScratch,
) -> SessionWorld {
    let mut rng = SimRng::seed_from_u64(session_seed);

    // --- topology ---
    let mut b = NetBuilder::new();
    let client = b.host(); // host 0
    let server = b.host(); // host 1
    let cloud_a = b.router();
    let cloud_b = b.router();

    let (down, up) = access_links(user);
    // Access: client <-> cloud A (down = toward client).
    b.link(cloud_a, client, down);
    b.link(client, cloud_a, up);

    // Transit: cloud A <-> cloud B.
    let path = path_profile(zone(user.country), zone(site.country));
    let transit = LinkParams::lan()
        .rate(45_000_000.0) // T3 backbone
        .delay(path.delay)
        .queue(256 * 1024)
        .loss(path.base_loss)
        .cross_traffic(path.congestion, path.congestion_loss);
    b.duplex(cloud_a, cloud_b, transit);

    // Server access: cloud B <-> server.
    let server_access = LinkParams::lan()
        .rate(site.access_bps)
        .delay(SimDuration::from_millis(2))
        .queue(128 * 1024)
        .cross_traffic(site.access_congestion(), 0.02);
    b.duplex(cloud_b, server, server_access);

    // Replicas 1..N sit behind cloud B over clones of the site's access
    // link, declared after the classic six links so the replica-free
    // topology — node ids, link ids, per-link RNG forks — is unchanged.
    // Hosts get `HostId` in declaration order: replica k is HostId(1+k).
    let n_replicas = gateway.map_or(1, |g| g.replicas.max(1));
    for _ in 1..n_replicas {
        let replica = b.host();
        b.duplex(cloud_b, replica, server_access);
    }
    let gw_plan = gateway.map(|g| gateway_route(g, zone(site.country), zone(user.country)));

    // Routing for this shape is computed once per worker and replayed
    // into every session (`TopologyPrototype` asserts the structural
    // match, so a cache hit is bit-identical to a fresh BFS by
    // construction). Link parameters and per-link RNG forks stay fully
    // per-session — only the route derivation is shared.
    let proto = scratch.topo.get_or_build(&b);
    let old = scratch.net.take().unwrap_or_default();
    let net = b.build_from_prototype_into(&mut rng.fork(1), old, &proto);

    // --- stacks & sockets ---
    let mut client_stack = Stack::new(HostId(0));
    let mut server_stack = Stack::new(HostId(1));
    // Dialup-era TCP used a 536-byte MSS and small windows: a full-size
    // 1460-byte MSS slow-start burst overruns a modem's ~10 KB buffer
    // several segments per window, which Reno cannot repair without RTO
    // storms. (In reality MSS is negotiated at SYN time; the builder knows
    // the client's class and configures both ends directly.)
    let dialup = user.connection == ConnectionClass::Modem56k;
    let data_mss = if dialup {
        536
    } else {
        rv_transport::DEFAULT_MSS
    };
    let s_data_cfg = TcpConfig {
        mss: data_mss,
        ..TcpConfig::default()
    };
    let c_data_cfg = TcpConfig {
        mss: data_mss,
        recv_capacity: if dialup { 8 * 1024 } else { 32 * 1024 },
        ..client_data_tcp_config()
    };
    let s_ctrl = server_stack.tcp_socket(ports::CTRL, TcpConfig::default());
    let s_data = server_stack.tcp_socket(ports::DATA_TCP, s_data_cfg);
    let s_udp = server_stack.udp_socket(ports::DATA_UDP);
    server_stack.tcp(s_ctrl).listen();
    server_stack.tcp(s_data).listen();
    let c_ctrl = client_stack.tcp_socket(ports::CLIENT_CTRL, TcpConfig::default());
    let c_data = client_stack.tcp_socket(ports::CLIENT_DATA, c_data_cfg);
    let c_udp = client_stack.udp_socket(ports::CLIENT_UDP);

    // --- server ---
    let mut catalog = Catalog::new();
    catalog.add(clip.clone());
    let server_cfg = ServerConfig {
        prefers_udp: site.prefers_udp,
        capacity: gateway.map_or(0, |g| g.capacity),
        background_sessions: gw_plan.as_ref().map_or(0, |p| p.loads[0]),
        ..ServerConfig::default()
    };
    let real_server = RealServer::with_scratch(
        server_cfg,
        catalog,
        s_ctrl,
        s_data,
        s_udp,
        session_seed ^ 0x5EED,
        scratch.server.take().unwrap_or_default(),
    );

    // Replica servers: same site, same clip, own stack and RNG stream,
    // seeded standing load from the gateway plan.
    let mut replicas = Vec::new();
    if let (Some(g), Some(plan)) = (gateway, gw_plan.as_ref()) {
        for k in 1..n_replicas {
            let mut stack = Stack::new(HostId(1 + u32::from(k)));
            let r_ctrl = stack.tcp_socket(ports::CTRL, TcpConfig::default());
            let r_data = stack.tcp_socket(ports::DATA_TCP, s_data_cfg);
            let r_udp = stack.udp_socket(ports::DATA_UDP);
            stack.tcp(r_ctrl).listen();
            stack.tcp(r_data).listen();
            let mut cat = Catalog::new();
            cat.add(clip.clone());
            let cfg = ServerConfig {
                prefers_udp: site.prefers_udp,
                capacity: g.capacity,
                background_sessions: plan.loads[usize::from(k)],
                ..ServerConfig::default()
            };
            let mut srv = RealServer::new(
                cfg,
                cat,
                r_ctrl,
                r_data,
                r_udp,
                session_seed ^ 0x5EED ^ (u64::from(k) << 32),
            );
            // Replicas generate under their own seeds, so sharing the
            // worker-wide cache is behavior-neutral (exact-input keys);
            // it just lets a failover re-stream hit warm schedules.
            srv.share_schedule_cache(real_server.schedule_cache());
            replicas.push((stack, srv));
        }
    }

    // --- client ---
    let url = format!("rtsp://{}/{}", site.name.replace('/', "."), clip.name);
    let mut client_cfg = ClientConfig::new(
        &url,
        Addr::new(HostId(1), ports::CTRL),
        Addr::new(HostId(1), ports::DATA_TCP),
    );
    client_cfg.transport_pref = user.transport_pref;
    client_cfg.firewall = user.firewall;
    // Users picked a RealPlayer connection-speed *preset*, not their true
    // line rate: "56k modem" regardless of how degraded the phone line
    // was, "DSL/cable 384k", "LAN". Servers therefore overdrive weak
    // lines — a major source of the paper's poor modem results.
    client_cfg.max_bandwidth_bps = match user.connection {
        ConnectionClass::Modem56k => 42_000,
        // DSL/cable users picked the preset below their tier
        // (RealPlayer offered 256k, 384k, and 512k broadband presets).
        ConnectionClass::DslCable => {
            if user.access_down_bps < 384_000.0 {
                256_000
            } else if user.access_down_bps < 512_000.0 {
                384_000
            } else {
                512_000
            }
        }
        ConnectionClass::T1Lan => 1_544_000,
    };
    client_cfg.cpu_power = user.pc.cpu_power();
    client_cfg.watch_limit = watch_limit;
    // The gateway's routing decision, as the ordered endpoint list the
    // client walks: first entry is the chosen replica, the rest are the
    // failover chain for busy/crashed destinations.
    if let Some(plan) = gw_plan.as_ref() {
        client_cfg.gateway = plan
            .order
            .iter()
            .map(|&k| GatewayEndpoint {
                replica: k,
                ctrl: Addr::new(HostId(1 + u32::from(k)), ports::CTRL),
                data: Addr::new(HostId(1 + u32::from(k)), ports::DATA_TCP),
            })
            .collect();
    }
    let tracer = TracerClient::with_scratch(
        client_cfg,
        c_ctrl,
        c_data,
        c_udp,
        scratch.client.take().unwrap_or_default(),
    );

    let mut world = SessionWorld::new(net, client_stack, server_stack, real_server, tracer);
    for (stack, srv) in replicas {
        world.add_replica(stack, srv);
    }
    world.set_faults(fault_plan, &study_fault_links());
    world
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::build_population;
    use crate::servers::server_roster;
    use rv_media::ContentKind;
    use rv_sim::SimTime;
    use rv_tracer::SessionOutcome;

    #[test]
    fn built_world_plays_a_session() {
        let mut rng = SimRng::seed_from_u64(1);
        let pop = build_population(&mut rng, 1.0);
        let user = pop
            .participants
            .iter()
            .find(|u| u.connection == ConnectionClass::DslCable)
            .expect("some DSL user");
        let roster = server_roster();
        let site = &roster[9]; // US/CNN
        let clip = Clip::new("t.rm", SimDuration::from_secs(240), ContentKind::News);
        let mut world = build_session_world(
            user,
            site,
            &clip,
            SimDuration::from_secs(30),
            42,
            &FaultPlan::none(),
        );
        let m = world.run(SimTime::from_secs(120));
        assert_eq!(m.outcome, SessionOutcome::Played);
        assert!(m.frames_played > 30, "played {}", m.frames_played);
    }

    #[test]
    fn scripted_faults_fail_the_study_session() {
        let mut rng = SimRng::seed_from_u64(1);
        let pop = build_population(&mut rng, 1.0);
        let user = pop
            .participants
            .iter()
            .find(|u| u.connection == ConnectionClass::DslCable)
            .expect("some DSL user");
        let roster = server_roster();
        let site = &roster[9];
        let clip = Clip::new("t.rm", SimDuration::from_secs(240), ContentKind::News);

        // Server dead before the first SYN: refused until retries run out.
        let down = FaultPlan {
            server_crashes: vec![rv_sim::ServerCrash {
                at: SimTime::ZERO,
                restart_after: None,
                replica: 0,
            }],
            ..FaultPlan::none()
        };
        let m = build_session_world(user, site, &clip, SimDuration::from_secs(30), 42, &down)
            .run(SimTime::from_secs(150));
        assert_eq!(m.outcome, SessionOutcome::ServerDown);

        // Transit dark mid-stream for longer than the stall budget: the
        // session starts, then starves.
        let cut = FaultPlan {
            link_outages: vec![rv_sim::LinkOutage {
                segment: rv_sim::FaultSegment::Transit,
                start: SimTime::from_secs(8),
                end: SimTime::from_secs(120),
                policy: rv_sim::OutagePolicy::DropInFlight,
            }],
            ..FaultPlan::none()
        };
        let m = build_session_world(user, site, &clip, SimDuration::from_secs(30), 42, &cut)
            .run(SimTime::from_secs(150));
        assert!(!m.outcome.is_played(), "outcome {:?}", m.outcome);
    }

    #[test]
    fn modem_user_slower_than_lan_user() {
        let mut rng = SimRng::seed_from_u64(2);
        let pop = build_population(&mut rng, 1.0);
        let modem = pop
            .participants
            .iter()
            .find(|u| u.connection == ConnectionClass::Modem56k)
            .unwrap();
        let lan = pop
            .participants
            .iter()
            .find(|u| {
                u.connection == ConnectionClass::T1Lan
                    && u.pc.cpu_power() > 0.5
                    && u.firewall == rv_rtsp::FirewallPolicy::Open
            })
            .unwrap();
        let roster = server_roster();
        let site = &roster[9];
        let clip = Clip::new("t.rm", SimDuration::from_secs(240), ContentKind::News);

        let mut w1 = build_session_world(
            modem,
            site,
            &clip,
            SimDuration::from_secs(40),
            7,
            &FaultPlan::none(),
        );
        let m1 = w1.run(SimTime::from_secs(150));
        let mut w2 = build_session_world(
            lan,
            site,
            &clip,
            SimDuration::from_secs(40),
            7,
            &FaultPlan::none(),
        );
        let m2 = w2.run(SimTime::from_secs(150));
        assert!(
            m1.bandwidth_kbps < m2.bandwidth_kbps,
            "modem {} vs lan {}",
            m1.bandwidth_kbps,
            m2.bandwidth_kbps
        );
    }
}
