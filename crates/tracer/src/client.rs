//! The instrumented streaming client (the RealTracer equivalent).
//!
//! Drives one clip session end to end: control-connection setup, DESCRIBE
//! with the player's bandwidth setting, transport negotiation (honoring the
//! user's preference and firewall), PLAY, data reception through the
//! [`rv_player::Player`], periodic receiver reports on UDP sessions, and
//! TEARDOWN after the watch limit — recording the per-clip statistics the
//! study analyzes.

use rv_media::{Clip, MediaPacket, StreamDepacketizer};
use rv_net::Addr;
use rv_player::{Player, PlayoutConfig, PlayoutEvent, PlayoutState};
use rv_rtsp::{
    ClientEvent, ClientSession, Decoder, FirewallPolicy, TransportKind, TransportPreference,
    TransportSpec,
};
use rv_server::{ReceiverReport, REPORT_PARAM};
use rv_sim::{SimDuration, SimTime};
use rv_transport::{Stack, TcpHandle, UdpHandle};

use crate::metrics::{finalize, SessionMetrics, SessionOutcome};

/// Client-side configuration for one session.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The clip URL, e.g. `rtsp://server/news1.rm`.
    pub url: String,
    /// The user's transport preference (RealPlayer default: Auto).
    pub transport_pref: TransportPreference,
    /// The client-side firewall.
    pub firewall: FirewallPolicy,
    /// The RealPlayer "connection speed" setting, bits/second.
    pub max_bandwidth_bps: u32,
    /// Decode-speed factor of the user's PC (1.0 = typical new PC).
    pub cpu_power: f64,
    /// How long to watch before moving on (RealTracer default: 1 minute).
    pub watch_limit: SimDuration,
    /// Abort a session that has not finished by this wall age.
    pub session_timeout: SimDuration,
    /// Playout engine parameters.
    pub playout: PlayoutConfig,
    /// Local UDP data port.
    pub udp_port: u16,
    /// Server control endpoint.
    pub server_ctrl: Addr,
    /// Server TCP data endpoint.
    pub server_data: Addr,
    /// Receiver-report interval for UDP sessions.
    pub report_interval: SimDuration,
}

impl ClientConfig {
    /// Sensible defaults given the two server endpoints.
    pub fn new(url: &str, server_ctrl: Addr, server_data: Addr) -> Self {
        ClientConfig {
            url: url.to_string(),
            transport_pref: TransportPreference::Auto,
            firewall: FirewallPolicy::Open,
            max_bandwidth_bps: 300_000,
            cpu_power: 1.0,
            watch_limit: SimDuration::from_secs(60),
            session_timeout: SimDuration::from_secs(120),
            playout: PlayoutConfig::default(),
            udp_port: 5002,
            server_ctrl,
            server_data,
            report_interval: SimDuration::from_secs(1),
        }
    }
}

/// Where the client is in its session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Connecting,
    Describing,
    SettingUp,
    ConnectingData,
    Starting,
    Playing,
    TearingDown,
    Done,
}

/// The instrumented client.
#[derive(Debug)]
pub struct TracerClient {
    cfg: ClientConfig,
    session: ClientSession,
    decoder: Decoder,
    ctrl: TcpHandle,
    data_tcp: TcpHandle,
    udp: UdpHandle,
    player: Player,
    depkt: StreamDepacketizer,
    phase: Phase,
    transport: Option<TransportKind>,
    clip: Option<Clip>,
    start_time: Option<SimTime>,
    play_start: Option<SimTime>,
    last_report: SimTime,
    events: Vec<PlayoutEvent>,
    last_rung: u8,
    outcome: Option<SessionOutcome>,
    metrics: Option<SessionMetrics>,
}

impl TracerClient {
    /// Creates a client over pre-created sockets (`ctrl` and `data_tcp`
    /// unconnected TCP sockets, `udp` bound to `cfg.udp_port`).
    pub fn new(cfg: ClientConfig, ctrl: TcpHandle, data_tcp: TcpHandle, udp: UdpHandle) -> Self {
        let player = Player::new(cfg.playout, cfg.cpu_power);
        TracerClient {
            session: ClientSession::new(&cfg.url),
            cfg,
            decoder: Decoder::new(),
            ctrl,
            data_tcp,
            udp,
            player,
            depkt: StreamDepacketizer::new(),
            phase: Phase::Idle,
            transport: None,
            clip: None,
            start_time: None,
            play_start: None,
            last_report: SimTime::ZERO,
            events: Vec::new(),
            last_rung: 0,
            outcome: None,
            metrics: None,
        }
    }

    /// `true` when the session has fully finished.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The finished session's record (once done).
    pub fn metrics(&self) -> Option<&SessionMetrics> {
        self.metrics.as_ref()
    }

    /// The playout events recorded so far (played and dropped frames).
    pub fn events(&self) -> &[PlayoutEvent] {
        &self.events
    }

    /// The negotiated data transport, once known.
    pub fn transport(&self) -> Option<TransportKind> {
        self.transport
    }

    /// Advances the client at `now`. Returns how many units of work it
    /// performed (control messages handled, phase transitions, media
    /// packets consumed, playout events) so drivers can feed client
    /// progress into their settle fixed point uniformly with the stacks
    /// and the network.
    pub fn poll(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        if self.phase == Phase::Done {
            return 0;
        }
        let mut work = 0;
        if self.phase == Phase::Idle {
            self.start(now, stack);
            work += 1;
        }
        // Safety timeout: a wedged session still yields a record.
        if let Some(start) = self.start_time {
            if now.saturating_since(start) >= self.cfg.session_timeout {
                self.finish(now, self.outcome.unwrap_or(SessionOutcome::Failed));
                return work + 1;
            }
        }

        work += self.pump_control(now, stack);
        if self.phase == Phase::Connecting && stack.tcp(self.ctrl).is_established() {
            let msg = self
                .session
                .describe()
                .with_header("Bandwidth", &self.cfg.max_bandwidth_bps.to_string());
            stack.tcp(self.ctrl).send(&msg.encode());
            self.phase = Phase::Describing;
            work += 1;
        }
        if self.phase == Phase::ConnectingData && stack.tcp(self.data_tcp).is_established() {
            let msg = self.session.play();
            stack.tcp(self.ctrl).send(&msg.encode());
            self.phase = Phase::Starting;
            work += 1;
        }
        if self.phase == Phase::Playing {
            work += self.pump_data(now, stack);
        }
        work
    }

    fn start(&mut self, now: SimTime, stack: &mut Stack) {
        self.start_time = Some(now);
        if self.cfg.firewall == FirewallPolicy::BlockRtsp {
            // The paper excluded these users; the record says why.
            self.finish(now, SessionOutcome::Blocked);
            return;
        }
        stack.tcp(self.ctrl).connect(self.cfg.server_ctrl, now);
        self.phase = Phase::Connecting;
    }

    fn pump_control(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        let mut handled = 0;
        let bytes = stack.tcp(self.ctrl).recv(usize::MAX);
        if !bytes.is_empty() {
            self.decoder.feed(&bytes);
        }
        loop {
            let msg = match self.decoder.next_message() {
                Ok(Some(msg)) => msg,
                Ok(None) => break,
                Err(_) => {
                    // A malformed control message cannot be resynchronized;
                    // end the session rather than stalling to the timeout.
                    self.finish(now, SessionOutcome::Failed);
                    return handled + 1;
                }
            };
            handled += 1;
            // Replies to SET_PARAMETER reports are CSeq-mismatched by
            // design; on_response classifies them as ProtocolError and the
            // session state is unaffected.
            match self.session.on_response(&msg) {
                ClientEvent::Described(body) => {
                    let name = self.cfg.url.rsplit('/').next().unwrap_or("clip");
                    self.clip = Clip::parse_description(name, &body);
                    let spec = self.pick_transport();
                    let msg = self.session.setup(spec);
                    stack.tcp(self.ctrl).send(&msg.encode());
                    self.phase = Phase::SettingUp;
                }
                ClientEvent::Unavailable(_) => {
                    self.finish(now, SessionOutcome::Unavailable);
                    return handled;
                }
                ClientEvent::SetUp(spec) => {
                    self.transport = Some(spec.kind);
                    match spec.kind {
                        TransportKind::Tcp => {
                            stack.tcp(self.data_tcp).connect(self.cfg.server_data, now);
                            self.phase = Phase::ConnectingData;
                        }
                        TransportKind::Udp => {
                            let msg = self.session.play();
                            stack.tcp(self.ctrl).send(&msg.encode());
                            self.phase = Phase::Starting;
                        }
                    }
                }
                ClientEvent::Started => {
                    self.play_start = Some(now);
                    self.last_report = now;
                    self.phase = Phase::Playing;
                }
                ClientEvent::TornDown => {
                    self.finish(now, self.outcome.unwrap_or(SessionOutcome::Played));
                    return handled;
                }
                ClientEvent::ProtocolError(_) => {
                    // Tolerated: report replies and stale responses.
                }
            }
        }
        handled
    }

    fn pick_transport(&self) -> TransportSpec {
        let want_udp = match self.cfg.transport_pref {
            TransportPreference::ForceUdp => true,
            TransportPreference::ForceTcp => false,
            TransportPreference::Auto => self.cfg.firewall != FirewallPolicy::BlockUdp,
        };
        if want_udp {
            TransportSpec::udp(self.cfg.udp_port)
        } else {
            TransportSpec::tcp()
        }
    }

    fn pump_data(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        let mut work = 0;
        // UDP datagrams: one media packet each.
        while let Some((_, data)) = stack.udp(self.udp).recv() {
            work += 1;
            if let Some((pkt, _)) = MediaPacket::decode(&data) {
                self.last_rung = pkt.rung;
                self.player.on_packet(now, pkt);
            }
        }
        // TCP stream: depacketize.
        let bytes = stack.tcp(self.data_tcp).recv(usize::MAX);
        if !bytes.is_empty() {
            self.depkt.feed(&bytes);
            while let Some(pkt) = self.depkt.next_packet() {
                work += 1;
                self.last_rung = pkt.rung;
                self.player.on_packet(now, pkt);
            }
        }

        let before = self.events.len();
        self.events.extend(self.player.poll(now));
        work += self.events.len() - before;

        // Receiver reports keep the server's UDP rate control fed.
        if self.transport == Some(TransportKind::Udp)
            && now.saturating_since(self.last_report) >= self.cfg.report_interval
        {
            let interval = now.saturating_since(self.last_report).as_secs_f64();
            self.last_report = now;
            let (loss, bytes) = self.player.take_interval();
            let report = ReceiverReport {
                loss_rate: loss,
                recv_rate_bps: bytes as f64 * 8.0 / interval.max(0.1),
            };
            let msg = self.session.set_parameter(REPORT_PARAM, &report.encode());
            stack.tcp(self.ctrl).send(&msg.encode());
            work += 1;
        }

        // Watch limit reached or the clip ran out: tear down.
        let watched_out = self
            .play_start
            .is_some_and(|s| now.saturating_since(s) >= self.cfg.watch_limit);
        if watched_out || self.player.state() == PlayoutState::Ended {
            self.outcome = Some(SessionOutcome::Played);
            let msg = self.session.teardown();
            stack.tcp(self.ctrl).send(&msg.encode());
            self.phase = Phase::TearingDown;
            work += 1;
        }
        work
    }

    fn finish(&mut self, now: SimTime, outcome: SessionOutcome) {
        let protocol = self.transport.unwrap_or(TransportKind::Tcp);
        let (encoded_fps, encoded_bps) = match &self.clip {
            Some(clip) => {
                let rung = (usize::from(self.last_rung)).min(clip.ladder.len() - 1);
                let enc = &clip.ladder.rungs()[rung];
                (enc.frame_rate, enc.total_bps)
            }
            None => (0.0, 0),
        };
        self.metrics = Some(finalize(
            outcome,
            protocol,
            encoded_fps,
            encoded_bps,
            &self.events,
            self.player.playout_stats(),
            self.player.reassembly_stats(),
            self.start_time.unwrap_or(now),
            now,
        ));
        self.phase = Phase::Done;
    }

    /// When the client next needs polling.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        match self.phase {
            Phase::Done => None,
            // Steady tick: cheap, and robust against missed edges.
            _ => Some(now + SimDuration::from_millis(20)),
        }
    }
}
