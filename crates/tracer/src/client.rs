//! The instrumented streaming client (the RealTracer equivalent).
//!
//! Drives one clip session end to end: control-connection setup, DESCRIBE
//! with the player's bandwidth setting, transport negotiation (honoring the
//! user's preference and firewall), PLAY, data reception through the
//! [`rv_player::Player`], periodic receiver reports on UDP sessions, and
//! TEARDOWN after the watch limit — recording the per-clip statistics the
//! study analyzes.

use rv_media::{Clip, MediaPacket, StreamDepacketizer};
use rv_net::Addr;
use rv_player::{Player, PlayoutConfig, PlayoutEvent, PlayoutState};
use rv_rtsp::{
    ClientEvent, ClientSession, Decoder, FirewallPolicy, Message, Status, TransportKind,
    TransportPreference, TransportSpec,
};
use rv_server::{ReceiverReport, REPORT_PARAM};
use rv_sim::trace::{self, TraceEvent};
use rv_sim::{SimDuration, SimTime};
use rv_transport::{Stack, TcpError, TcpHandle, UdpHandle};

use crate::metrics::{finalize, SessionMetrics, SessionOutcome};

/// One server replica the gateway can route a session to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayEndpoint {
    /// Replica index at the site (0 = the primary).
    pub replica: u8,
    /// RTSP control endpoint.
    pub ctrl: Addr,
    /// TCP data endpoint.
    pub data: Addr,
}

/// Client-side configuration for one session.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The clip URL, e.g. `rtsp://server/news1.rm`.
    pub url: String,
    /// The user's transport preference (RealPlayer default: Auto).
    pub transport_pref: TransportPreference,
    /// The client-side firewall.
    pub firewall: FirewallPolicy,
    /// The RealPlayer "connection speed" setting, bits/second.
    pub max_bandwidth_bps: u32,
    /// Decode-speed factor of the user's PC (1.0 = typical new PC).
    pub cpu_power: f64,
    /// How long to watch before moving on (RealTracer default: 1 minute).
    pub watch_limit: SimDuration,
    /// Abort a session that has not finished by this wall age.
    pub session_timeout: SimDuration,
    /// Playout engine parameters.
    pub playout: PlayoutConfig,
    /// Local UDP data port.
    pub udp_port: u16,
    /// Server control endpoint.
    pub server_ctrl: Addr,
    /// Server TCP data endpoint.
    pub server_data: Addr,
    /// Receiver-report interval for UDP sessions.
    pub report_interval: SimDuration,
    /// Give up on a TCP connect (control or data) after this long. Far
    /// beyond any fault-free handshake (worst case a few lost SYNs retry
    /// at 3/9/21 s) but well inside the session deadline.
    pub connect_timeout: SimDuration,
    /// Give up waiting for an RTSP response after this long. TCP keeps
    /// retransmitting the request, so fault-free silence this long would
    /// need several consecutive RTO losses.
    pub response_timeout: SimDuration,
    /// After PLAY on UDP: if *nothing at all* arrives for this long, the
    /// path black-holes datagrams — fall back to TCP.
    pub data_timeout: SimDuration,
    /// After data has flowed: a stream silent for this long is dead; the
    /// user gives up (the paper's abandoned-rebuffer behavior).
    pub stall_limit: SimDuration,
    /// Full-session retry budget after connection failures.
    pub max_retries: u8,
    /// First retry backoff; doubles per retry.
    pub retry_backoff: SimDuration,
    /// Backoff ceiling.
    pub retry_backoff_cap: SimDuration,
    /// The gateway's routing plan: replica endpoints in preference
    /// order. Empty (the default) disables gateway behavior entirely —
    /// the client speaks only to `server_ctrl`/`server_data`, the
    /// legacy single-server path.
    pub gateway: Vec<GatewayEndpoint>,
    /// Maximum gateway redirects (replica hops) per session.
    pub max_hops: u8,
}

impl ClientConfig {
    /// Sensible defaults given the two server endpoints.
    pub fn new(url: &str, server_ctrl: Addr, server_data: Addr) -> Self {
        ClientConfig {
            url: url.to_string(),
            transport_pref: TransportPreference::Auto,
            firewall: FirewallPolicy::Open,
            max_bandwidth_bps: 300_000,
            cpu_power: 1.0,
            watch_limit: SimDuration::from_secs(60),
            session_timeout: SimDuration::from_secs(120),
            playout: PlayoutConfig::default(),
            udp_port: 5002,
            server_ctrl,
            server_data,
            report_interval: SimDuration::from_secs(1),
            connect_timeout: SimDuration::from_secs(45),
            response_timeout: SimDuration::from_secs(20),
            data_timeout: SimDuration::from_secs(6),
            stall_limit: SimDuration::from_secs(20),
            max_retries: 3,
            retry_backoff: SimDuration::from_secs(1),
            retry_backoff_cap: SimDuration::from_secs(8),
            gateway: Vec::new(),
            max_hops: 4,
        }
    }
}

/// Where the client is in its session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Connecting,
    Describing,
    SettingUp,
    ConnectingData,
    Starting,
    Playing,
    TearingDown,
    /// Backing off before a retry attempt.
    Waiting,
    Done,
}

impl Phase {
    /// Stable phase name used by the `client_phase` trace event.
    fn label(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Connecting => "connecting",
            Phase::Describing => "describing",
            Phase::SettingUp => "setting_up",
            Phase::ConnectingData => "connecting_data",
            Phase::Starting => "starting",
            Phase::Playing => "playing",
            Phase::TearingDown => "tearing_down",
            Phase::Waiting => "waiting",
            Phase::Done => "done",
        }
    }
}

/// Capacity-only scratch harvested from a retired [`TracerClient`],
/// ready to seed the next one. Holds no session state — only warmed
/// buffers — so a client built from scratch storage behaves
/// bit-identically to one built fresh.
#[derive(Debug, Default)]
pub struct ClientScratch {
    decoder: Decoder,
    events: Vec<PlayoutEvent>,
    encode_buf: Vec<u8>,
}

/// The instrumented client.
#[derive(Debug)]
pub struct TracerClient {
    cfg: ClientConfig,
    session: ClientSession,
    decoder: Decoder,
    ctrl: TcpHandle,
    data_tcp: TcpHandle,
    udp: UdpHandle,
    player: Player,
    depkt: StreamDepacketizer,
    phase: Phase,
    transport: Option<TransportKind>,
    clip: Option<Clip>,
    start_time: Option<SimTime>,
    play_start: Option<SimTime>,
    last_report: SimTime,
    events: Vec<PlayoutEvent>,
    last_rung: u8,
    /// Last rung observed by the flight recorder this attempt; `None`
    /// until the first media packet, so the initial rung is not reported
    /// as a switch. Pure observation — never read by session logic.
    rung_seen: Option<u8>,
    outcome: Option<SessionOutcome>,
    metrics: Option<SessionMetrics>,
    /// When the current phase was entered (drives connect/response timers).
    phase_entered: SimTime,
    /// When the last media packet arrived in the current attempt.
    last_data: Option<SimTime>,
    /// Full-session retry attempts consumed.
    retries: u8,
    /// Current retry backoff (doubles per retry up to the cap).
    backoff: SimDuration,
    /// When the next retry attempt may launch.
    next_retry_at: Option<SimTime>,
    /// Whether the session renegotiated UDP down to TCP.
    fell_back: bool,
    /// Index into `cfg.gateway` of the replica currently targeted.
    hop: usize,
    /// Gateway redirects consumed (bounded by `cfg.max_hops`).
    hops_used: u8,
    /// Gateway redirects, any reason (busy, crash, dead).
    gateway_redirects: u64,
    /// Redirects caused by a crashed or dead replica (subset of
    /// `gateway_redirects`).
    failovers: u64,
    /// 453 admission rejections this client was handed at SETUP.
    admission_rejects: u64,
    /// When the first crash-driven redirect happened; anchors the
    /// failover recovery-time measurement.
    first_failover_at: Option<SimTime>,
    /// Time from the first crash-driven redirect to the first media
    /// packet of a later attempt — how long failover took to heal.
    failover_recovery: Option<SimDuration>,
    /// Whether the resilient FSM (timeouts, retries, stall detection,
    /// transport fallback) is armed. Off by default: an unhardened
    /// client rides out any trouble to its watch limit, which is
    /// exactly the legacy behavior fault-free campaigns are
    /// bit-compatible with. The harness hardens the client when it arms
    /// a non-empty fault plan.
    hardened: bool,
    /// Reused staging buffer for outgoing control messages.
    encode_buf: Vec<u8>,
}

impl TracerClient {
    /// Creates a client over pre-created sockets (`ctrl` and `data_tcp`
    /// unconnected TCP sockets, `udp` bound to `cfg.udp_port`).
    pub fn new(cfg: ClientConfig, ctrl: TcpHandle, data_tcp: TcpHandle, udp: UdpHandle) -> Self {
        Self::with_scratch(cfg, ctrl, data_tcp, udp, ClientScratch::default())
    }

    /// As [`TracerClient::new`] but seeded with buffers recycled from a
    /// retired client.
    pub fn with_scratch(
        cfg: ClientConfig,
        ctrl: TcpHandle,
        data_tcp: TcpHandle,
        udp: UdpHandle,
        scratch: ClientScratch,
    ) -> Self {
        let player = Player::new(cfg.playout, cfg.cpu_power);
        let backoff = cfg.retry_backoff;
        TracerClient {
            session: ClientSession::new(&cfg.url),
            cfg,
            decoder: scratch.decoder,
            ctrl,
            data_tcp,
            udp,
            player,
            depkt: StreamDepacketizer::new(),
            phase: Phase::Idle,
            transport: None,
            clip: None,
            start_time: None,
            play_start: None,
            last_report: SimTime::ZERO,
            events: scratch.events,
            last_rung: 0,
            rung_seen: None,
            outcome: None,
            metrics: None,
            phase_entered: SimTime::ZERO,
            last_data: None,
            retries: 0,
            backoff,
            next_retry_at: None,
            fell_back: false,
            hop: 0,
            hops_used: 0,
            gateway_redirects: 0,
            failovers: 0,
            admission_rejects: 0,
            first_failover_at: None,
            failover_recovery: None,
            hardened: false,
            encode_buf: scratch.encode_buf,
        }
    }

    /// Retires this client, harvesting its buffers (emptied, capacity
    /// kept) for the next session's client.
    pub fn into_scratch(mut self) -> ClientScratch {
        self.decoder.reset();
        self.events.clear();
        self.encode_buf.clear();
        ClientScratch {
            decoder: self.decoder,
            events: self.events,
            encode_buf: self.encode_buf,
        }
    }

    /// Arms the resilient FSM: connect/response timeouts, bounded
    /// retries with backoff, stall detection, and UDP→TCP fallback.
    ///
    /// Sessions with a scheduled fault plan run hardened; fault-free
    /// sessions stay unhardened and reproduce the legacy client's
    /// behavior (watch to the limit, whatever the path does) bit for
    /// bit.
    pub fn harden(&mut self) {
        self.hardened = true;
    }

    /// How many full-session retries this client has consumed.
    pub fn retries(&self) -> u8 {
        self.retries
    }

    /// Whether the session fell back from UDP to TCP.
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Gateway redirects this session performed, for any reason.
    pub fn gateway_redirects(&self) -> u64 {
        self.gateway_redirects
    }

    /// Redirects caused by a crashed or dead replica.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// 453 admission rejections this client received at SETUP.
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects
    }

    /// The replica currently targeted plus its control and data
    /// endpoints. Without a gateway plan this is the configured
    /// single server, reported as replica 0.
    fn current_endpoint(&self) -> (u8, Addr, Addr) {
        match self.cfg.gateway.get(self.hop) {
            Some(e) => (e.replica, e.ctrl, e.data),
            None => (0, self.cfg.server_ctrl, self.cfg.server_data),
        }
    }

    /// `true` when the session has fully finished.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The finished session's record (once done).
    pub fn metrics(&self) -> Option<&SessionMetrics> {
        self.metrics.as_ref()
    }

    /// The playout events recorded so far (played and dropped frames).
    pub fn events(&self) -> &[PlayoutEvent] {
        &self.events
    }

    /// The negotiated data transport, once known.
    pub fn transport(&self) -> Option<TransportKind> {
        self.transport
    }

    /// Advances the client at `now`. Returns how many units of work it
    /// performed (control messages handled, phase transitions, media
    /// packets consumed, playout events) so drivers can feed client
    /// progress into their settle fixed point uniformly with the stacks
    /// and the network.
    pub fn poll(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        if self.phase == Phase::Done {
            return 0;
        }
        let mut work = 0;
        if self.phase == Phase::Idle {
            self.start(now, stack);
            work += 1;
        }
        // Safety timeout: a wedged session still yields a record,
        // classified by where it wedged — silence after PLAY is data
        // starvation, silence before it is a control-channel failure.
        if let Some(start) = self.start_time {
            if now.saturating_since(start) >= self.cfg.session_timeout {
                let outcome = self.outcome.unwrap_or(match self.phase {
                    Phase::Playing => SessionOutcome::Starved,
                    _ => SessionOutcome::TimedOut,
                });
                self.finish(now, outcome);
                return work + 1;
            }
        }
        if self.phase == Phase::Waiting {
            if self.next_retry_at.is_some_and(|t| now >= t) {
                self.next_retry_at = None;
                let (_, ctrl_addr, _) = self.current_endpoint();
                stack.tcp(self.ctrl).connect(ctrl_addr, now);
                self.set_phase(Phase::Connecting, now);
                work += 1;
            }
            return work;
        }
        work += self.watch_faults(now, stack);
        if matches!(self.phase, Phase::Done | Phase::Waiting) {
            return work;
        }

        work += self.pump_control(now, stack);
        if self.phase == Phase::Connecting && stack.tcp(self.ctrl).is_established() {
            let msg = self
                .session
                .describe()
                .with_header_display("Bandwidth", self.cfg.max_bandwidth_bps);
            self.send_control(stack, &msg);
            self.set_phase(Phase::Describing, now);
            work += 1;
        }
        if self.phase == Phase::ConnectingData && stack.tcp(self.data_tcp).is_established() {
            let msg = self.session.play();
            self.send_control(stack, &msg);
            self.set_phase(Phase::Starting, now);
            work += 1;
        }
        if self.phase == Phase::Playing {
            work += self.pump_data(now, stack);
        }
        work
    }

    fn set_phase(&mut self, phase: Phase, now: SimTime) {
        trace::emit(now, || TraceEvent::ClientPhase {
            phase: phase.label(),
        });
        self.phase = phase;
        self.phase_entered = now;
    }

    /// Flight-recorder hook: reports rung *changes* in the media stream
    /// (the first packet of an attempt establishes the baseline).
    #[inline]
    fn note_rung(&mut self, now: SimTime, rung: u8) {
        if let Some(prev) = self.rung_seen {
            if prev != rung {
                trace::emit(now, || TraceEvent::RungSwitch {
                    from: prev,
                    to: rung,
                });
            }
        }
        self.rung_seen = Some(rung);
    }

    /// Serializes `msg` into the reused staging buffer and queues it on
    /// the control connection — no per-message allocation.
    fn send_control(&mut self, stack: &mut Stack, msg: &Message) {
        self.encode_buf.clear();
        msg.encode_into(&mut self.encode_buf);
        stack.tcp(self.ctrl).send(&self.encode_buf);
    }

    /// Detects connection errors and silent stalls; classifies them into
    /// an outcome and either retries or ends the session. Armed only on
    /// hardened clients: an unhardened session keeps the legacy
    /// never-give-up behavior, so campaigns without fault plans are
    /// bit-identical to builds that predate this machinery (the worst
    /// fault-free paths *do* stall past these thresholds naturally).
    fn watch_faults(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        if !self.hardened {
            return 0;
        }
        if let Some(err) = stack.tcp(self.ctrl).take_error() {
            return self.fail_or_reroute(now, stack, err);
        }
        if self.transport == Some(TransportKind::Tcp)
            && matches!(
                self.phase,
                Phase::ConnectingData | Phase::Starting | Phase::Playing
            )
        {
            if let Some(err) = stack.tcp(self.data_tcp).take_error() {
                return self.fail_or_reroute(now, stack, err);
            }
        }
        let waited = now.saturating_since(self.phase_entered);
        match self.phase {
            Phase::Connecting | Phase::ConnectingData if waited >= self.cfg.connect_timeout => {
                self.retry_or_finish(now, stack, SessionOutcome::TimedOut)
            }
            Phase::Describing | Phase::SettingUp | Phase::Starting
                if waited >= self.cfg.response_timeout =>
            {
                self.retry_or_finish(now, stack, SessionOutcome::TimedOut)
            }
            Phase::TearingDown if waited >= self.cfg.response_timeout => {
                // The clip already played; a lost TEARDOWN reply costs
                // nothing.
                self.finish(now, self.outcome.unwrap_or(SessionOutcome::Played));
                1
            }
            Phase::Playing => {
                let quiet_since = self.last_data.or(self.play_start).unwrap_or(now);
                let quiet = now.saturating_since(quiet_since);
                if self.transport == Some(TransportKind::Udp)
                    && !self.fell_back
                    && self.last_data.is_none()
                    && quiet >= self.cfg.data_timeout
                {
                    // Nothing at all ever arrived on UDP: the path
                    // black-holes datagrams (NAT/firewall). Renegotiate
                    // TCP over the still-live control connection.
                    let msg = self.session.resetup(TransportSpec::tcp());
                    self.send_control(stack, &msg);
                    trace::emit(now, || TraceEvent::TransportFallback);
                    self.fell_back = true;
                    self.transport = None;
                    self.set_phase(Phase::SettingUp, now);
                    return 1;
                }
                if quiet >= self.cfg.stall_limit {
                    self.finish(now, SessionOutcome::Starved);
                    return 1;
                }
                0
            }
            _ => 0,
        }
    }

    /// Consumes one retry (with exponential backoff) or, with the budget
    /// exhausted, ends the session with `reason`.
    fn retry_or_finish(
        &mut self,
        now: SimTime,
        stack: &mut Stack,
        reason: SessionOutcome,
    ) -> usize {
        if self.retries >= self.cfg.max_retries {
            self.finish(now, reason);
            return 1;
        }
        self.retries += 1;
        trace::emit(now, || TraceEvent::ClientRetry {
            attempt: u32::from(self.retries),
        });
        self.relaunch(now, stack);
        1
    }

    /// A transport-level connection error. With a gateway plan, errors
    /// that mean "this replica's server process is gone" (RST to a SYN,
    /// an established connection reset under us) fail over to the
    /// gateway's next choice while the hop budget lasts; anything else —
    /// or a client without a gateway — takes the legacy retry path
    /// against the same endpoint.
    fn fail_or_reroute(&mut self, now: SimTime, stack: &mut Stack, err: TcpError) -> usize {
        let reason = classify(err);
        if self.can_hop() {
            let tag = match err {
                TcpError::Refused => "dead",
                TcpError::Reset => "crash",
                // Silence is a path property, not a replica verdict.
                TcpError::ConnectTimeout => "",
            };
            if !tag.is_empty() {
                return self.redirect(now, stack, tag);
            }
        }
        self.retry_or_finish(now, stack, reason)
    }

    /// Whether the gateway plan has another replica to offer.
    fn can_hop(&self) -> bool {
        self.hops_used < self.cfg.max_hops && self.hop + 1 < self.cfg.gateway.len()
    }

    /// Redirects the session to the gateway's next choice: counts the
    /// hop, tears this attempt down, and relaunches after the standing
    /// backoff. Callers must check [`TracerClient::can_hop`] first.
    fn redirect(&mut self, now: SimTime, stack: &mut Stack, reason: &'static str) -> usize {
        let from = self.current_endpoint().0;
        self.hop += 1;
        self.hops_used += 1;
        self.gateway_redirects += 1;
        if reason != "busy" {
            self.failovers += 1;
            if self.first_failover_at.is_none() {
                self.first_failover_at = Some(now);
            }
        }
        let to = self.current_endpoint().0;
        trace::emit(now, || TraceEvent::GatewayRedirect { from, to, reason });
        self.relaunch(now, stack);
        1
    }

    /// Tears down the current attempt's connections and schedules a
    /// fresh attempt — against whatever [`TracerClient::current_endpoint`]
    /// now says — after the standing backoff.
    fn relaunch(&mut self, now: SimTime, stack: &mut Stack) {
        // Tear down this attempt's connections (RSTs tell a live server
        // to recycle its session) and flush any stale datagrams.
        stack.tcp(self.ctrl).abort();
        stack.tcp(self.data_tcp).abort();
        while stack.udp(self.udp).recv().is_some() {}
        // A fresh protocol stack for the next attempt; the wall clock
        // (start_time) and the retry/hop ledgers carry over.
        self.session = ClientSession::new(&self.cfg.url);
        self.decoder = Decoder::new();
        self.depkt = StreamDepacketizer::new();
        self.player = Player::new(self.cfg.playout, self.cfg.cpu_power);
        self.events.clear();
        self.transport = None;
        self.rung_seen = None;
        self.clip = None;
        self.play_start = None;
        self.last_data = None;
        self.outcome = None;
        self.next_retry_at = Some(now + self.backoff);
        self.backoff = (self.backoff + self.backoff).min(self.cfg.retry_backoff_cap);
        self.set_phase(Phase::Waiting, now);
    }

    fn start(&mut self, now: SimTime, stack: &mut Stack) {
        self.start_time = Some(now);
        if self.cfg.firewall == FirewallPolicy::BlockRtsp {
            // The paper excluded these users; the record says why.
            self.finish(now, SessionOutcome::Blocked);
            return;
        }
        let (replica, ctrl_addr, _) = self.current_endpoint();
        if !self.cfg.gateway.is_empty() {
            trace::emit(now, || TraceEvent::GatewayRoute { replica });
        }
        stack.tcp(self.ctrl).connect(ctrl_addr, now);
        self.set_phase(Phase::Connecting, now);
    }

    fn pump_control(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        let mut handled = 0;
        let decoder = &mut self.decoder;
        stack
            .tcp(self.ctrl)
            .recv_with(usize::MAX, &mut |chunk| decoder.feed(chunk));
        loop {
            let msg = match self.decoder.next_message() {
                Ok(Some(msg)) => msg,
                Ok(None) => break,
                Err(_) => {
                    // A malformed control message cannot be resynchronized;
                    // end the session rather than stalling to the timeout.
                    self.finish(now, SessionOutcome::Failed);
                    return handled + 1;
                }
            };
            handled += 1;
            // Replies to SET_PARAMETER reports are CSeq-mismatched by
            // design; on_response classifies them as ProtocolError and the
            // session state is unaffected.
            match self.session.on_response(&msg) {
                ClientEvent::Described(body) => {
                    let name = self.cfg.url.rsplit('/').next().unwrap_or("clip");
                    self.clip = Clip::parse_description(name, &body);
                    let spec = self.pick_transport();
                    let msg = self.session.setup(spec);
                    self.send_control(stack, &msg);
                    self.set_phase(Phase::SettingUp, now);
                }
                ClientEvent::Unavailable(status) => {
                    if status == Status::NOT_ENOUGH_BANDWIDTH {
                        // 453 from SETUP: the replica is at capacity,
                        // not missing the clip. Ask the gateway for its
                        // next choice; with the plan exhausted, the
                        // cluster is up but full — a typed rejection.
                        let replica = self.current_endpoint().0;
                        trace::emit(now, || TraceEvent::AdmissionReject { replica });
                        self.admission_rejects += 1;
                        if self.can_hop() {
                            self.redirect(now, stack, "busy");
                        } else {
                            self.finish(now, SessionOutcome::Rejected);
                        }
                        return handled;
                    }
                    self.finish(now, SessionOutcome::Unavailable);
                    return handled;
                }
                ClientEvent::SetUp(spec) => {
                    self.transport = Some(spec.kind);
                    match spec.kind {
                        TransportKind::Tcp => {
                            let (_, _, data_addr) = self.current_endpoint();
                            stack.tcp(self.data_tcp).connect(data_addr, now);
                            self.set_phase(Phase::ConnectingData, now);
                        }
                        TransportKind::Udp => {
                            let msg = self.session.play();
                            self.send_control(stack, &msg);
                            self.set_phase(Phase::Starting, now);
                        }
                    }
                }
                ClientEvent::Started => {
                    self.play_start = Some(now);
                    self.last_report = now;
                    self.set_phase(Phase::Playing, now);
                }
                ClientEvent::TornDown => {
                    self.finish(now, self.outcome.unwrap_or(SessionOutcome::Played));
                    return handled;
                }
                ClientEvent::ProtocolError(_) => {
                    // Tolerated: report replies and stale responses.
                }
            }
        }
        handled
    }

    fn pick_transport(&self) -> TransportSpec {
        let want_udp = match self.cfg.transport_pref {
            TransportPreference::ForceUdp => true,
            TransportPreference::ForceTcp => false,
            TransportPreference::Auto => self.cfg.firewall != FirewallPolicy::BlockUdp,
        };
        if want_udp {
            TransportSpec::udp(self.cfg.udp_port)
        } else {
            TransportSpec::tcp()
        }
    }

    /// Records a media-packet arrival: feeds the stall detector and, on
    /// the first packet after a crash-driven redirect, closes the
    /// failover recovery-time measurement.
    fn note_media(&mut self, now: SimTime) {
        self.last_data = Some(now);
        if self.failover_recovery.is_none() {
            if let Some(at) = self.first_failover_at {
                self.failover_recovery = Some(now.saturating_since(at));
            }
        }
    }

    fn pump_data(&mut self, now: SimTime, stack: &mut Stack) -> usize {
        let mut work = 0;
        // UDP datagrams: one media packet each.
        while let Some((_, data)) = stack.udp(self.udp).recv() {
            work += 1;
            if let Some((pkt, _)) = MediaPacket::decode(&data) {
                self.note_rung(now, pkt.rung);
                self.last_rung = pkt.rung;
                self.note_media(now);
                self.player.on_packet(now, pkt);
            }
        }
        // TCP stream: depacketize straight out of the receive rope —
        // no intermediate `Vec` between the socket and the depacketizer.
        let depkt = &mut self.depkt;
        let fed = stack
            .tcp(self.data_tcp)
            .recv_with(usize::MAX, &mut |chunk| depkt.feed(chunk));
        if fed > 0 {
            while let Some(pkt) = self.depkt.next_packet() {
                work += 1;
                self.note_rung(now, pkt.rung);
                self.last_rung = pkt.rung;
                self.note_media(now);
                self.player.on_packet(now, pkt);
            }
        }

        let before = self.events.len();
        self.player.poll_into(now, &mut self.events);
        work += self.events.len() - before;

        // Receiver reports keep the server's UDP rate control fed.
        if self.transport == Some(TransportKind::Udp)
            && now.saturating_since(self.last_report) >= self.cfg.report_interval
        {
            let interval = now.saturating_since(self.last_report).as_secs_f64();
            self.last_report = now;
            let (loss, bytes) = self.player.take_interval();
            let report = ReceiverReport {
                loss_rate: loss,
                recv_rate_bps: bytes as f64 * 8.0 / interval.max(0.1),
            };
            let msg = self.session.set_parameter(REPORT_PARAM, &report.encode());
            self.send_control(stack, &msg);
            work += 1;
        }

        // Watch limit reached or the clip ran out: tear down.
        let watched_out = self
            .play_start
            .is_some_and(|s| now.saturating_since(s) >= self.cfg.watch_limit);
        if watched_out || self.player.state() == PlayoutState::Ended {
            self.outcome = Some(SessionOutcome::Played);
            let msg = self.session.teardown();
            self.send_control(stack, &msg);
            self.set_phase(Phase::TearingDown, now);
            work += 1;
        }
        work
    }

    fn finish(&mut self, now: SimTime, outcome: SessionOutcome) {
        // A clean playthrough that needed retries, replica hops, or a
        // transport fallback is a recovery, not a first-try success:
        // record it as degraded. Hops count into the retry tally — each
        // one was a failed attempt the user sat through.
        let outcome = match outcome {
            SessionOutcome::Played if self.retries > 0 || self.hops_used > 0 || self.fell_back => {
                SessionOutcome::PlayedDegraded {
                    retries: self.retries.saturating_add(self.hops_used),
                    rebuffers: self.player.playout_stats().rebuffer_events.min(255) as u8,
                    fell_back: self.fell_back,
                }
            }
            other => other,
        };
        let protocol = self.transport.unwrap_or(TransportKind::Tcp);
        let (encoded_fps, encoded_bps) = match &self.clip {
            Some(clip) => {
                let rung = (usize::from(self.last_rung)).min(clip.ladder.len() - 1);
                let enc = &clip.ladder.rungs()[rung];
                (enc.frame_rate, enc.total_bps)
            }
            None => (0.0, 0),
        };
        let mut metrics = finalize(
            outcome,
            protocol,
            encoded_fps,
            encoded_bps,
            &self.events,
            self.player.playout_stats(),
            self.player.reassembly_stats(),
            self.start_time.unwrap_or(now),
            now,
        );
        metrics.served_replica = self.current_endpoint().0;
        metrics.failover_recovery = self.failover_recovery;
        self.metrics = Some(metrics);
        trace::emit(now, || TraceEvent::SessionEnd {
            outcome: outcome.label(),
        });
        self.phase = Phase::Done;
    }

    /// The player's playout statistics for the current (final) attempt.
    /// Retried sessions rebuild the player per attempt, so this reflects
    /// the attempt that produced the session's record.
    pub fn playout_stats(&self) -> rv_player::PlayoutStats {
        self.player.playout_stats()
    }

    /// When the client next needs polling.
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        match self.phase {
            Phase::Done => None,
            // Sleep out the backoff; the 20 ms floor keeps the contract
            // that a live client always reports a wake.
            Phase::Waiting => Some(
                self.next_retry_at
                    .map_or(now + SimDuration::from_millis(20), |t| {
                        t.max(now + SimDuration::from_millis(20))
                    }),
            ),
            // Steady tick: cheap, and robust against missed edges.
            _ => Some(now + SimDuration::from_millis(20)),
        }
    }
}

/// Maps a transport-level connection error to a session outcome.
fn classify(err: TcpError) -> SessionOutcome {
    match err {
        // RST to our SYN: no process listening — the server is down.
        TcpError::Refused => SessionOutcome::ServerDown,
        // SYN retries exhausted into silence.
        TcpError::ConnectTimeout => SessionOutcome::TimedOut,
        // An established connection torn down under us mid-session.
        TcpError::Reset => SessionOutcome::Aborted,
    }
}
