//! Replays a [`FaultPlan`] into a running session world.
//!
//! The plan is abstract (segments, times, policies); this module grounds
//! it: a [`FaultLinkMap`] names the concrete links realizing each path
//! segment, and the [`FaultInjector`] fires the plan's events — link
//! down/up, loss-burst on/off, server crash/restart — at their scheduled
//! instants as the harness drives the world. A world with no injector
//! (every fault-free campaign) pays nothing: the harness skips the whole
//! machinery on a `None`.

use rv_net::LinkId;
use rv_sim::{FaultPlan, FaultSegment, OutagePolicy, SimTime};

/// Which concrete links realize each abstract fault segment in this
/// world's topology. Both directions of a duplex leg belong in its list:
/// an access-link outage severs upstream and downstream alike.
#[derive(Debug, Clone, Default)]
pub struct FaultLinkMap {
    /// The user's access leg.
    pub client_access: Vec<LinkId>,
    /// The inter-cloud transit leg.
    pub transit: Vec<LinkId>,
    /// The server's access leg.
    pub server_access: Vec<LinkId>,
}

impl FaultLinkMap {
    fn links(&self, seg: FaultSegment) -> &[LinkId] {
        match seg {
            FaultSegment::ClientAccess => &self.client_access,
            FaultSegment::Transit => &self.transit,
            FaultSegment::ServerAccess => &self.server_access,
        }
    }
}

/// One grounded fault event, ready to apply.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultAction {
    LinkDown(LinkId, OutagePolicy),
    LinkUp(LinkId),
    BurstOn(LinkId, u32),
    BurstOff(LinkId),
    ServerCrash(u8),
    ServerRestart(u8),
}

/// A time-ordered queue of grounded fault events.
#[derive(Debug, Default)]
pub struct FaultInjector {
    events: Vec<(SimTime, FaultAction)>,
    next: usize,
}

impl FaultInjector {
    /// Grounds `plan` against `map`. Events at equal times apply in plan
    /// order (the sort is stable), so injection is deterministic.
    pub fn new(plan: &FaultPlan, map: &FaultLinkMap) -> Self {
        let mut events = Vec::new();
        for o in &plan.link_outages {
            for &l in map.links(o.segment) {
                events.push((o.start, FaultAction::LinkDown(l, o.policy)));
                events.push((o.end, FaultAction::LinkUp(l)));
            }
        }
        for b in &plan.loss_bursts {
            for &l in map.links(b.segment) {
                events.push((b.start, FaultAction::BurstOn(l, b.loss_ppm)));
                events.push((b.end, FaultAction::BurstOff(l)));
            }
        }
        for c in &plan.server_crashes {
            events.push((c.at, FaultAction::ServerCrash(c.replica)));
            if let Some(d) = c.restart_after {
                events.push((c.at + d, FaultAction::ServerRestart(c.replica)));
            }
        }
        events.sort_by_key(|(t, _)| *t);
        FaultInjector { events, next: 0 }
    }

    /// When the next unapplied event fires, if any remain.
    pub fn next_wake(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|(t, _)| *t)
    }

    /// Pops the next event due at or before `now`.
    pub(crate) fn pop_due(&mut self, now: SimTime) -> Option<FaultAction> {
        match self.events.get(self.next) {
            Some(&(t, a)) if t <= now => {
                self.next += 1;
                Some(a)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rv_sim::{LinkOutage, ServerCrash, SimDuration};

    #[test]
    fn injector_orders_and_drains_events() {
        let plan = FaultPlan {
            link_outages: vec![LinkOutage {
                segment: FaultSegment::ClientAccess,
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(9),
                policy: OutagePolicy::DropInFlight,
            }],
            loss_bursts: vec![],
            server_crashes: vec![ServerCrash {
                at: SimTime::from_secs(2),
                restart_after: Some(SimDuration::from_secs(4)),
                replica: 0,
            }],
            udp_blackhole: false,
        };
        let map = FaultLinkMap {
            client_access: vec![LinkId(0), LinkId(1)],
            ..FaultLinkMap::default()
        };
        let mut inj = FaultInjector::new(&plan, &map);
        // crash@2, restart@6 interleave with down@5 ×2 links and up@9 ×2.
        assert_eq!(inj.next_wake(), Some(SimTime::from_secs(2)));
        assert!(matches!(
            inj.pop_due(SimTime::from_secs(2)),
            Some(FaultAction::ServerCrash(0))
        ));
        assert!(inj.pop_due(SimTime::from_secs(2)).is_none());
        assert!(matches!(
            inj.pop_due(SimTime::from_secs(5)),
            Some(FaultAction::LinkDown(LinkId(0), OutagePolicy::DropInFlight))
        ));
        assert!(matches!(
            inj.pop_due(SimTime::from_secs(5)),
            Some(FaultAction::LinkDown(LinkId(1), _))
        ));
        assert!(matches!(
            inj.pop_due(SimTime::from_secs(6)),
            Some(FaultAction::ServerRestart(0))
        ));
        assert!(matches!(
            inj.pop_due(SimTime::from_secs(100)),
            Some(FaultAction::LinkUp(LinkId(0)))
        ));
        assert!(matches!(
            inj.pop_due(SimTime::from_secs(100)),
            Some(FaultAction::LinkUp(LinkId(1)))
        ));
        assert!(inj.pop_due(SimTime::from_secs(100)).is_none());
        assert_eq!(inj.next_wake(), None);
    }

    #[test]
    fn empty_plan_builds_an_idle_injector() {
        let inj = FaultInjector::new(&FaultPlan::none(), &FaultLinkMap::default());
        assert_eq!(inj.next_wake(), None);
    }
}
