//! Session harness: wires a server and a client into a simulated network
//! and drives the whole world to completion.
//!
//! The study crate builds the topology (it knows geography and access-link
//! classes); this harness owns the driver loop that both the study and the
//! examples reuse.

use rv_media::Clip;
use rv_net::{Addr, HostId, LinkParams, NetBuilder, Network};
use rv_server::{Catalog, RealServer, ServerConfig};
use rv_sim::trace::{self, TraceEvent};
use rv_sim::{earliest, Counter, CounterSet, SimDuration, SimRng, SimTime};
use rv_transport::{Segment, Stack, TcpConfig};

use rv_sim::FaultPlan;

use rv_server::ServerScratch;

use crate::client::{ClientConfig, ClientScratch, TracerClient};
use crate::faults::{FaultAction, FaultInjector, FaultLinkMap};
use crate::metrics::SessionMetrics;

/// Standard port assignments for a session world.
pub mod ports {
    /// Server RTSP control port.
    pub const CTRL: u16 = 554;
    /// Server TCP data port.
    pub const DATA_TCP: u16 = 555;
    /// Server UDP data port.
    pub const DATA_UDP: u16 = 6970;
    /// Client UDP data port.
    pub const CLIENT_UDP: u16 = 5002;
    /// Client control source port.
    pub const CLIENT_CTRL: u16 = 2000;
    /// Client TCP data source port.
    pub const CLIENT_DATA: u16 = 2001;
}

/// The receive-buffer configuration RealPlayer-era clients used for the
/// data connection. The 32 KiB window matters: it bounds the in-flight
/// data below typical bottleneck queue sizes, so a Reno sender fills the
/// pipe without overflowing the queue several segments per window (which
/// fast recovery cannot repair and which would otherwise collapse into
/// RTO storms).
pub fn client_data_tcp_config() -> TcpConfig {
    TcpConfig {
        recv_capacity: 32 * 1024,
        ..TcpConfig::default()
    }
}

/// Builds the canonical two-host streaming world: client and server joined
/// by a symmetric duplex link, sockets on the standard [`ports`], one clip
/// in the catalog, and a watch-for-a-minute client. `cfg_fn` customizes the
/// client and server configurations before construction.
///
/// Tests, examples, and benches all build their worlds through this one
/// function; richer topologies (the study's access/transit/server-access
/// chains) are assembled in `rv-study`.
pub fn two_host_world(
    params: LinkParams,
    clip: Clip,
    seed: u64,
    cfg_fn: impl FnOnce(&mut ClientConfig, &mut ServerConfig),
) -> SessionWorld {
    let mut b = NetBuilder::new();
    let c = b.host();
    let s = b.host();
    b.duplex(c, s, params);
    let mut rng = SimRng::seed_from_u64(seed);
    let net = b.build_with_payload::<Segment>(&mut rng);

    let mut client_stack = Stack::new(HostId(0));
    let mut server_stack = Stack::new(HostId(1));
    let s_ctrl = server_stack.tcp_socket(ports::CTRL, TcpConfig::default());
    let s_data = server_stack.tcp_socket(ports::DATA_TCP, TcpConfig::default());
    let s_udp = server_stack.udp_socket(ports::DATA_UDP);
    server_stack.tcp(s_ctrl).listen();
    server_stack.tcp(s_data).listen();
    let c_ctrl = client_stack.tcp_socket(ports::CLIENT_CTRL, TcpConfig::default());
    let c_data = client_stack.tcp_socket(ports::CLIENT_DATA, client_data_tcp_config());
    let c_udp = client_stack.udp_socket(ports::CLIENT_UDP);

    let mut catalog = Catalog::new();
    let url = format!("rtsp://server/{}", clip.name);
    catalog.add(clip);
    let mut server_cfg = ServerConfig::default();
    let mut client_cfg = ClientConfig::new(
        &url,
        Addr::new(HostId(1), ports::CTRL),
        Addr::new(HostId(1), ports::DATA_TCP),
    );
    cfg_fn(&mut client_cfg, &mut server_cfg);
    let server = RealServer::new(server_cfg, catalog, s_ctrl, s_data, s_udp, seed);
    let client = TracerClient::new(client_cfg, c_ctrl, c_data, c_udp);
    SessionWorld::new(net, client_stack, server_stack, server, client)
}

/// Recycled storage carried from one retired [`SessionWorld`] to the
/// next. Everything inside is capacity-only — retired worlds are
/// scrubbed of session state before harvesting — so worlds built from
/// scratch storage are bit-identical to worlds built fresh. Executors
/// keep one of these per worker and thread it through consecutive
/// sessions.
#[derive(Debug, Default)]
pub struct WorldScratch {
    /// A retired network whose wheels/inboxes/tables keep their capacity.
    pub net: Option<Network<Segment>>,
    /// Buffers harvested from the retired server.
    pub server: Option<ServerScratch>,
    /// Buffers harvested from the retired client.
    pub client: Option<ClientScratch>,
    /// Worker-lifetime topology prototypes: each distinct graph shape's
    /// BFS route set, computed once and cloned into every session that
    /// builds it. Unlike the fields above this is a read-shared cache,
    /// not recycled capacity — but the same bit-identity rule holds
    /// (routes are a pure function of structure; see
    /// [`rv_net::TopologyPrototype`]).
    pub topo: rv_net::PrototypeCache,
}

/// One complete streaming world: network, two stacks, server, client.
#[derive(Debug)]
pub struct SessionWorld {
    /// The simulated network (client = host 0, server = host 1 by the
    /// conventions of the topology builders in rv-study).
    pub net: Network<Segment>,
    /// Client host's transport stack.
    pub client_stack: Stack,
    /// Server host's transport stack.
    pub server_stack: Stack,
    /// The streaming server (replica 0 — the only one in the classic
    /// single-server world).
    pub server: RealServer,
    /// The instrumented client.
    pub client: TracerClient,
    /// Additional server replicas (1..N) with their own stacks. Empty in
    /// the classic world; populated by [`SessionWorld::add_replica`].
    pub replicas: Vec<(Stack, RealServer)>,
    /// The world's clock: persists across `run` calls so a world can be
    /// driven in increments.
    pub now: SimTime,
    /// Scheduled faults, if this session has any.
    faults: Option<FaultInjector>,
    /// Per-replica settle-loop scheduling flags `(app_ran, poll_app)`,
    /// kept across `run` calls so their capacity is allocated once.
    replica_flags: Vec<(bool, bool)>,
}

impl SessionWorld {
    /// Creates a world with its clock at zero.
    pub fn new(
        net: Network<Segment>,
        client_stack: Stack,
        server_stack: Stack,
        server: RealServer,
        client: TracerClient,
    ) -> Self {
        SessionWorld {
            net,
            client_stack,
            server_stack,
            server,
            client,
            replicas: Vec::new(),
            now: SimTime::ZERO,
            faults: None,
            replica_flags: Vec::new(),
        }
    }

    /// Adds a server replica (index `1 + replicas.len()` from the
    /// client's point of view; the primary is replica 0). The replica
    /// participates in the drive loop, fault routing, and the counter
    /// snapshot exactly like the primary.
    pub fn add_replica(&mut self, stack: Stack, server: RealServer) {
        self.replicas.push((stack, server));
        self.replica_flags.push((false, true));
    }

    /// Arms this world with a fault plan. `map` grounds the plan's
    /// abstract segments in this world's links. A black-holed UDP path
    /// takes effect immediately (the client stack silently eats inbound
    /// datagrams); scheduled events fire as the clock reaches them.
    pub fn set_faults(&mut self, plan: &FaultPlan, map: &FaultLinkMap) {
        if plan.udp_blackhole {
            self.client_stack.set_udp_blackhole(true);
        }
        if plan.is_empty() {
            return;
        }
        // Trouble is scheduled: arm the client's resilient FSM. Sessions
        // with an empty plan keep the legacy client behavior, which is
        // what keeps fault-free campaigns bit-identical to pre-fault
        // builds.
        self.client.harden();
        self.faults = Some(FaultInjector::new(plan, map));
    }

    /// Applies every fault event due at `now`. Returns applied count.
    fn apply_faults(&mut self, now: SimTime) -> usize {
        let Some(injector) = &mut self.faults else {
            return 0;
        };
        let mut applied = 0;
        while let Some(action) = injector.pop_due(now) {
            applied += 1;
            // Fault events are traced here rather than in the components:
            // this is the one place that has both the simulated clock and
            // the decoded action.
            match action {
                FaultAction::LinkDown(l, policy) => {
                    trace::emit(now, || TraceEvent::LinkDown { link: l.0 });
                    self.net.set_link_down(l, policy);
                }
                FaultAction::LinkUp(l) => {
                    trace::emit(now, || TraceEvent::LinkUp { link: l.0 });
                    self.net.set_link_up(now, l);
                }
                FaultAction::BurstOn(l, ppm) => self.net.set_link_extra_loss(l, ppm),
                FaultAction::BurstOff(l) => self.net.set_link_extra_loss(l, 0),
                FaultAction::ServerCrash(r) => {
                    trace::emit(now, || TraceEvent::ServerCrash);
                    if r == 0 {
                        self.server.crash(&mut self.server_stack);
                    } else if let Some((stack, server)) = self.replicas.get_mut(usize::from(r) - 1)
                    {
                        server.crash(stack);
                    }
                }
                FaultAction::ServerRestart(r) => {
                    trace::emit(now, || TraceEvent::ServerRestart);
                    if r == 0 {
                        self.server.restart(&mut self.server_stack);
                    } else if let Some((stack, server)) = self.replicas.get_mut(usize::from(r) - 1)
                    {
                        server.restart(stack);
                    }
                }
            }
        }
        applied
    }

    /// Drives everything until the client finishes or `deadline` passes.
    /// Returns the session record. May be called repeatedly with growing
    /// deadlines; the clock picks up where it left off.
    pub fn run(&mut self, deadline: SimTime) -> SessionMetrics {
        let mut now = self.now;
        loop {
            self.apply_faults(now);
            // Settle all work at the current instant. The guard bounds
            // pathological ping-pong at one instant.
            //
            // Components are wake-scheduled: a stack is polled only when it
            // has observable work (`needs_poll`: inbound packets, deferred
            // output, a due timer) or its application has run since the
            // stack was last flushed. Applications run once per instant
            // unconditionally (their time-based triggers — pacing, reports,
            // timeouts — fire on the first poll of an instant) and again
            // only after their stack delivered or flushed something. All
            // poll results, the applications' included, feed the `moved`
            // fixed-point counter uniformly.
            let mut client_app_ran = false;
            let mut server_app_ran = false;
            let mut poll_client_app = true;
            let mut poll_server_app = true;
            for flags in &mut self.replica_flags {
                *flags = (false, true);
            }
            for _ in 0..64 {
                let mut moved = self.net.poll(now);
                if self.client_stack.needs_poll(&self.net, now) || client_app_ran {
                    let handled = self.client_stack.poll(now, &mut self.net);
                    client_app_ran = false;
                    poll_client_app |= handled > 0;
                    moved += handled;
                }
                if self.server_stack.needs_poll(&self.net, now) || server_app_ran {
                    let handled = self.server_stack.poll(now, &mut self.net);
                    server_app_ran = false;
                    poll_server_app |= handled > 0;
                    moved += handled;
                }
                if poll_server_app {
                    poll_server_app = false;
                    let worked = self.server.poll(now, &mut self.server_stack);
                    server_app_ran |= worked > 0;
                    moved += worked;
                }
                if poll_client_app {
                    poll_client_app = false;
                    let worked = self.client.poll(now, &mut self.client_stack);
                    client_app_ran |= worked > 0;
                    moved += worked;
                }
                // Replica servers ride the same wake-scheduling contract
                // as the primary: stack when it has observable work, app
                // once per instant and again after stack progress.
                for ((stack, server), (app_ran, poll_app)) in
                    self.replicas.iter_mut().zip(&mut self.replica_flags)
                {
                    if stack.needs_poll(&self.net, now) || *app_ran {
                        let handled = stack.poll(now, &mut self.net);
                        *app_ran = false;
                        *poll_app |= handled > 0;
                        moved += handled;
                    }
                    if *poll_app {
                        *poll_app = false;
                        let worked = server.poll(now, stack);
                        *app_ran |= worked > 0;
                        moved += worked;
                    }
                    if stack.needs_poll(&self.net, now) || *app_ran {
                        let handled = stack.poll(now, &mut self.net);
                        *app_ran = false;
                        *poll_app |= handled > 0;
                        moved += handled;
                    }
                }
                if self.client_stack.needs_poll(&self.net, now) || client_app_ran {
                    let handled = self.client_stack.poll(now, &mut self.net);
                    client_app_ran = false;
                    poll_client_app |= handled > 0;
                    moved += handled;
                }
                if self.server_stack.needs_poll(&self.net, now) || server_app_ran {
                    let handled = self.server_stack.poll(now, &mut self.net);
                    server_app_ran = false;
                    poll_server_app |= handled > 0;
                    moved += handled;
                }
                if moved == 0 {
                    break;
                }
            }
            if self.client.is_done() || now >= deadline {
                self.now = now;
                break;
            }
            let mut next = earliest([
                self.net.next_wake(),
                self.client_stack.next_wake(),
                self.server_stack.next_wake(),
                self.server.next_wake(now),
                self.client.next_wake(now),
                self.faults.as_ref().and_then(FaultInjector::next_wake),
            ]);
            for (stack, server) in &self.replicas {
                next = earliest([next, stack.next_wake(), server.next_wake(now)]);
            }
            let step_floor = now + SimDuration::from_micros(1);
            now = next.unwrap_or(deadline).min(deadline).max(step_floor);
        }
        self.client.metrics().cloned().unwrap_or_else(|| {
            // Deadline hit before the client finished (should be rare: the
            // client has its own session timeout). Preserve the negotiated
            // transport if it got that far.
            SessionMetrics::failed(
                crate::metrics::SessionOutcome::Failed,
                self.client
                    .transport()
                    .unwrap_or(rv_rtsp::TransportKind::Tcp),
            )
        })
    }

    /// Snapshots this world's deterministic counters. Collected from the
    /// components' own statistics (never from trace events, which may be
    /// off), so the values are identical whether or not the flight
    /// recorder ran. Call after [`SessionWorld::run`] finishes.
    pub fn counters(&self) -> CounterSet {
        let mut c = CounterSet::new();
        let links = self.net.total_link_stats();
        c.add(Counter::DropsLoss, links.dropped_loss);
        c.add(Counter::DropsQueue, links.dropped_queue);
        c.add(Counter::DropsOutage, links.dropped_outage);
        c.add(Counter::PacketsDelivered, links.delivered);
        c.add(Counter::WheelCascades, self.net.wheel_cascades());
        let (head_updates, bypass) = self.net.delayline_stats();
        c.add(Counter::DelaylineHeadUpdates, head_updates);
        c.add(Counter::DelaylineBypassPackets, bypass);
        let tcp_c = self.client_stack.total_tcp_stats();
        let mut tcp_s = self.server_stack.total_tcp_stats();
        for (stack, _) in &self.replicas {
            let t = stack.total_tcp_stats();
            tcp_s.retransmits += t.retransmits;
            tcp_s.timeouts += t.timeouts;
            tcp_s.fast_retransmits += t.fast_retransmits;
        }
        c.add(
            Counter::TcpRetransmits,
            tcp_c.retransmits + tcp_s.retransmits,
        );
        c.add(Counter::TcpRtoTimeouts, tcp_c.timeouts + tcp_s.timeouts);
        c.add(
            Counter::TcpFastRetransmits,
            tcp_c.fast_retransmits + tcp_s.fast_retransmits,
        );
        let playout = self.client.playout_stats();
        c.add(Counter::RebufferEvents, playout.rebuffer_events);
        c.add(Counter::RebufferMicros, playout.rebuffer_time.as_micros());
        c.add(Counter::SessionRetries, u64::from(self.client.retries()));
        c.add(
            Counter::TransportFallbacks,
            u64::from(self.client.fell_back()),
        );
        let mut server = self.server.stats();
        for (_, replica) in &self.replicas {
            let s = replica.stats();
            server.switches_up += s.switches_up;
            server.switches_down += s.switches_down;
            server.frames_thinned += s.frames_thinned;
            server.crashes += s.crashes;
            server.admission_rejects += s.admission_rejects;
        }
        c.add(Counter::RungSwitchesUp, server.switches_up);
        c.add(Counter::RungSwitchesDown, server.switches_down);
        c.add(Counter::FramesThinned, server.frames_thinned);
        c.add(Counter::ServerCrashes, server.crashes);
        c.add(Counter::GatewayRedirects, self.client.gateway_redirects());
        c.add(Counter::Failovers, self.client.failovers());
        c.add(Counter::AdmissionRejects, server.admission_rejects);
        c
    }

    /// Retires this world, harvesting its recyclable storage into
    /// `scratch` for the next session. The network is scrubbed here (not
    /// at rebuild) so in-flight payload `Arc`s drop now and their pool
    /// chunks are free for reuse by the time the next server copies
    /// packets in.
    pub fn retire(mut self, scratch: &mut WorldScratch) {
        self.net.reset_for_rebuild();
        scratch.net = Some(self.net);
        scratch.server = Some(self.server.into_scratch());
        scratch.client = Some(self.client.into_scratch());
    }

    /// Convenience: host ids for the conventional two-host layout.
    pub fn client_host() -> HostId {
        HostId(0)
    }

    /// The server's host id in the conventional layout.
    pub fn server_host() -> HostId {
        HostId(1)
    }
}
