//! # rv-tracer — the RealTracer equivalent
//!
//! The instrumented client at the heart of the study: [`TracerClient`]
//! plays one clip end to end over the simulated network, recording the
//! statistics RealTracer recorded (frame rate, jitter, bandwidth,
//! transport, drops, rebuffers, CPU), summarized as [`SessionMetrics`].
//! The [`rate`] model produces the 0–10 user quality ratings of Section
//! V.C, and [`SessionWorld`] drives a complete server+network+client
//! world to completion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod faults;
mod harness;
mod metrics;
mod rating;

pub use client::{ClientConfig, ClientScratch, GatewayEndpoint, TracerClient};
pub use faults::{FaultInjector, FaultLinkMap};
pub use harness::{client_data_tcp_config, ports, two_host_world, SessionWorld, WorldScratch};
pub use metrics::{finalize, jitter_ms, SessionMetrics, SessionOutcome};
pub use rating::{rate, system_score, RaterProfile};
